"""Unit tests for repro.graph.bipartite (double cover of Definition 6.3)."""

from repro.graph.graph import Graph
from repro.graph.bipartite import BipartiteDoubleCover, bipartition, is_bipartite
from repro.graph.generators import cycle_graph, erdos_renyi, random_bipartite
from repro.matching.matching import Matching


class TestBipartitenessChecks:
    def test_even_cycle_bipartite(self):
        assert is_bipartite(cycle_graph(6))
        assert bipartition(cycle_graph(6)) is not None

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(5))
        assert bipartition(cycle_graph(5)) is None

    def test_bipartition_is_proper(self):
        g, left, right = random_bipartite(6, 7, 0.4, seed=1)
        parts = bipartition(g)
        assert parts is not None
        l, r = map(set, parts)
        for u, v in g.edges():
            assert (u in l) != (v in l)

    def test_empty_graph_bipartite(self):
        assert is_bipartite(Graph(4))


class TestDoubleCover:
    def test_vertex_mapping(self):
        g = Graph(3, [(0, 1)])
        cover = BipartiteDoubleCover(g)
        assert cover.n == 6
        assert cover.outer_copy(2) == 2
        assert cover.inner_copy(2) == 5
        assert cover.base_vertex(5) == 2
        assert cover.is_outer_copy(1) and not cover.is_outer_copy(4)

    def test_edges_cross_only(self):
        g = Graph(3, [(0, 1), (1, 2)])
        cover = BipartiteDoubleCover(g)
        assert cover.has_edge(cover.outer_copy(0), cover.inner_copy(1))
        assert cover.has_edge(cover.outer_copy(1), cover.inner_copy(0))
        # no outer-outer or inner-inner edges
        assert not cover.has_edge(cover.outer_copy(0), cover.outer_copy(1))
        assert not cover.has_edge(cover.inner_copy(0), cover.inner_copy(1))
        # non-adjacent base vertices stay non-adjacent
        assert not cover.has_edge(cover.outer_copy(0), cover.inner_copy(2))

    def test_cover_tracks_graph_mutations(self):
        g = Graph(3)
        cover = BipartiteDoubleCover(g)
        assert not cover.has_edge(0, cover.inner_copy(1))
        g.add_edge(0, 1)
        assert cover.has_edge(0, cover.inner_copy(1))

    def test_induced_subgraph_is_bipartite_and_correct(self):
        g = erdos_renyi(10, 0.3, seed=2)
        cover = BipartiteDoubleCover(g)
        subset = [cover.outer_copy(v) for v in range(5)] + \
                 [cover.inner_copy(v) for v in range(5, 10)]
        sub, back = cover.induced_subgraph(subset)
        assert is_bipartite(sub)
        for x, y in sub.edges():
            bx, by = back[x], back[y]
            u, v = cover.base_vertex(bx), cover.base_vertex(by)
            assert g.has_edge(u, v)
            assert cover.is_outer_copy(bx) != cover.is_outer_copy(by)

    def test_cover_matching_at_least_graph_matching(self):
        # mu(B) >= mu(G) (Lemma 7.8 direction 1): any matching of G lifts.
        g = erdos_renyi(12, 0.3, seed=5)
        from repro.matching.blossom import maximum_matching
        mg = maximum_matching(g)
        cover = BipartiteDoubleCover(g)
        lifted = [(cover.outer_copy(u), cover.inner_copy(v)) for u, v in mg.edges()]
        seen = set()
        for x, y in lifted:
            assert cover.has_edge(x, y)
            assert x not in seen and y not in seen
            seen.add(x)
            seen.add(y)

    def test_project_matching_is_matching(self):
        # Lemma 7.8 direction 2: projecting a B-matching yields a valid
        # G-matching of comparable size.
        g = erdos_renyi(14, 0.25, seed=9)
        cover = BipartiteDoubleCover(g)
        b_matching = []
        used = set()
        for u, v in g.edges():
            x, y = cover.outer_copy(u), cover.inner_copy(v)
            if x not in used and y not in used:
                used.add(x)
                used.add(y)
                b_matching.append((x, y))
        projected = cover.project_matching(b_matching)
        m = Matching(g.n, projected)
        m.validate(g)
        assert m.size >= len(b_matching) / 6  # paper's factor-6 bound
