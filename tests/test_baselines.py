"""Tests for the prior-framework comparators (McGregor-style, FMU22-style)."""

import pytest

from repro.graph.generators import disjoint_paths, erdos_renyi, random_bipartite
from repro.matching.blossom import maximum_matching_size
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.baselines.fmu22 import fmu22_boost, fmu22_scheduled_calls
from repro.baselines.mcgregor import mcgregor_boost, mcgregor_scheduled_calls


class TestMcGregor:
    def test_improves_over_greedy_on_bipartite(self):
        g, _, _ = random_bipartite(20, 20, 0.15, seed=1)
        counters = Counters()
        m = mcgregor_boost(g, 0.25, counters=counters, seed=1)
        m.validate(g)
        opt = maximum_matching_size(g)
        assert 2 * m.size >= opt            # never worse than maximal
        assert counters.get("oracle_calls") > 0
        assert counters.get("mcgregor_repetitions") > 0

    def test_quality_on_paths(self):
        g = disjoint_paths(5, 5)
        m = mcgregor_boost(g, 0.25, seed=2)
        m.validate(g)
        ok, ratio = certify_approximation(g, m, 0.34)
        assert ok, ratio

    def test_scheduled_calls_exponential(self):
        c1 = mcgregor_scheduled_calls(0.25)
        c2 = mcgregor_scheduled_calls(0.125)
        assert c2 / c1 > 100  # far super-polynomial growth
        with pytest.raises(ValueError):
            mcgregor_scheduled_calls(0)


class TestFMU22:
    def test_quality_matches_new_framework(self, medium_graphs):
        eps = 0.25
        for name, g in medium_graphs[:4]:
            m = fmu22_boost(g, eps, seed=3)
            m.validate(g)
            ok, ratio = certify_approximation(g, m, eps)
            assert ok, f"{name}: {ratio}"

    def test_scheduled_calls_table1(self):
        assert fmu22_scheduled_calls(0.25, "mpc") == pytest.approx(4 ** 52)
        assert fmu22_scheduled_calls(0.25, "congest") == pytest.approx(4 ** 63)
        assert fmu22_scheduled_calls(0.25, "mpc+mmss25") == pytest.approx(4 ** 39)
        with pytest.raises(ValueError):
            fmu22_scheduled_calls(0.25, "bogus")

    def test_counts_oracle_calls(self):
        g = erdos_renyi(40, 0.1, seed=4)
        counters = Counters()
        fmu22_boost(g, 0.25, seed=4, counters=counters)
        assert counters.get("oracle_calls") > 0
