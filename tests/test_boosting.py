"""Tests for the static boosting framework (Section 5 / Theorem 1.1)."""

import pytest

from repro.graph.generators import blossom_gadget, disjoint_paths, erdos_renyi
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.core.boosting import (
    BoostingFramework,
    boost_matching,
    build_stage_graph,
    build_structure_graph,
)
from repro.core.config import ParameterProfile
from repro.core.oracles import ExactMatchingOracle, GreedyMatchingOracle, RandomGreedyMatchingOracle
from repro.core.operations import overtake_op
from repro.core.structures import PhaseState


class TestInitialMatching:
    def test_lemma53_constant_approximation(self):
        counters = Counters()
        framework = BoostingFramework(0.25, counters=counters, seed=0)
        for seed in range(3):
            g = erdos_renyi(40, 0.1, seed=seed)
            m = framework.initial_matching(g)
            m.validate(g)
            assert 4 * m.size >= maximum_matching_size(g)

    def test_lemma53_call_budget(self):
        counters = Counters()
        framework = BoostingFramework(0.25, counters=counters, seed=0)
        g = erdos_renyi(40, 0.1, seed=9)
        framework.initial_matching(g)
        # at most 2c + 1 calls with the greedy (c = 2) oracle
        assert counters.get("oracle_calls") <= 2 * 2 + 1

    def test_empty_graph(self):
        framework = BoostingFramework(0.25, seed=0)
        assert framework.initial_matching(Graph(4)).size == 0


class TestDerivedGraphs:
    def _grown_state(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 5)])
        m = Matching(6, [(1, 2), (3, 4)])
        state = PhaseState(g, m, ell_max=8)
        state.init_structures()
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 5, 4, 1)
        return state

    def test_structure_graph_h_prime(self):
        state = self._grown_state()
        hprime, witness = build_structure_graph(state)
        assert hprime.n == 2           # two structures
        assert hprime.m == 1           # connected by the type-2 arc (2, 3)
        ((key, (u, v)),) = witness.items()
        assert state.arc_type(u, v) == 2

    def test_stage_graph_h_s(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        m = Matching(4, [(1, 2)])
        state = PhaseState(g, m, ell_max=8)
        state.init_structures()
        hs, witness, num_left = build_stage_graph(state, stage=0)
        # left: the two singleton structures 0 and 3; right: vertices 1 and 2
        assert num_left == 2
        assert hs.m == 2  # (0,1) and (3,2) are both 0-feasible
        for key, (x, y) in witness.items():
            assert state.arc_type(x, y) == 3

    def test_stage_graph_excludes_wrong_stage(self):
        state = self._grown_state()
        hs, witness, num_left = build_stage_graph(state, stage=5)
        assert hs.m == 0


class TestEndToEnd:
    def test_quality_with_greedy_oracle(self, medium_graphs):
        eps = 0.25
        for name, g in medium_graphs:
            counters = Counters()
            m = boost_matching(g, eps, seed=1, counters=counters)
            m.validate(g)
            ok, ratio = certify_approximation(g, m, eps)
            assert ok, f"{name}: ratio {ratio}"
            assert counters.get("oracle_calls") > 0

    def test_quality_with_exact_oracle(self):
        g = disjoint_paths(5, 9)
        m = boost_matching(g, 1 / 8, oracle=ExactMatchingOracle(), seed=2)
        ok, ratio = certify_approximation(g, m, 1 / 8)
        assert ok, ratio

    def test_quality_with_random_greedy_oracle(self):
        g = blossom_gadget(6, 4)
        m = boost_matching(g, 1 / 8, oracle=RandomGreedyMatchingOracle(seed=5), seed=2)
        ok, ratio = certify_approximation(g, m, 1 / 8)
        assert ok, ratio

    def test_oracle_calls_grow_with_precision(self):
        g = disjoint_paths(6, 9)
        calls = []
        for eps in (0.5, 0.25, 0.125):
            counters = Counters()
            boost_matching(g, eps, seed=3, counters=counters)
            calls.append(counters.get("oracle_calls"))
        assert calls[0] <= calls[-1]

    def test_warm_start_from_given_matching(self):
        g = erdos_renyi(40, 0.1, seed=4)
        framework = BoostingFramework(0.25, seed=0)
        initial = framework.initial_matching(g)
        m = framework.run(g, initial=initial)
        assert m.size >= initial.size
        m.validate(g)

    def test_invariants_hold_throughout(self):
        g = erdos_renyi(30, 0.15, seed=5)
        m = boost_matching(g, 0.25, seed=6, check_invariants=True)
        m.validate(g)

    def test_counters_record_schedule(self):
        g = erdos_renyi(30, 0.1, seed=6)
        counters = Counters()
        boost_matching(g, 0.25, seed=7, counters=counters)
        assert counters.get("phases") >= 1
        assert counters.get("stages") >= 1
        assert counters.get("oracle_vertices_seen") >= 0
