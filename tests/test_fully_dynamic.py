"""Tests for the fully dynamic maintainer (Theorem 7.1 framework)."""

import pytest

from repro.graph.dynamic_graph import Update
from repro.workloads import insertion_only, planted_matching_churn, sliding_window
from repro.matching.blossom import maximum_matching_size
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.weak_oracles import ExactInducedWeakOracle, OMvWeakOracle


EPS = 0.25


class TestMaintenance:
    def test_matching_always_valid(self):
        updates = planted_matching_churn(10, rounds=3, seed=1)
        alg = FullyDynamicMatching(updates.n, EPS, seed=1)
        for upd in updates:
            alg.update(upd)
            alg.current_matching().validate(alg.graph)

    def test_approximation_at_checkpoints(self):
        updates = planted_matching_churn(12, rounds=4, seed=2)
        alg = FullyDynamicMatching(updates.n, EPS, seed=2)
        for idx, upd in enumerate(updates):
            alg.update(upd)
            if idx % 25 == 0 or idx == updates.length - 1:
                m = alg.current_matching()
                ok, ratio = certify_approximation(alg.graph, m, EPS)
                assert ok, f"update {idx}: ratio {ratio}"

    def test_insertion_only_reaches_near_optimum(self):
        updates = insertion_only(30, 80, seed=3)
        alg = FullyDynamicMatching(30, EPS, seed=3)
        for upd in updates:
            alg.update(upd)
        ok, ratio = certify_approximation(alg.graph, alg.current_matching(), EPS)
        assert ok, ratio

    def test_sliding_window(self):
        updates = sliding_window(24, 150, window=30, seed=4)
        alg = FullyDynamicMatching(24, EPS, seed=4)
        for upd in updates:
            alg.update(upd)
            alg.current_matching().validate(alg.graph)
        ok, ratio = certify_approximation(alg.graph, alg.current_matching(), EPS)
        assert ok, ratio

    def test_deleting_matched_edge_is_handled(self):
        alg = FullyDynamicMatching(4, EPS, seed=5)
        alg.insert(0, 1)
        assert alg.current_matching().contains_edge(0, 1)
        alg.delete(0, 1)
        assert alg.current_matching().size == 0
        alg.current_matching().validate(alg.graph)

    def test_empty_updates_are_cheap(self):
        alg = FullyDynamicMatching(4, EPS, seed=6)
        rebuilds_before = alg.counters.get("dyn_rebuilds")
        for _ in range(10):
            alg.update(Update.empty())
        assert alg.counters.get("dyn_rebuilds") == rebuilds_before


class TestWarmStartEdgeCases:
    """Regression tests for warm-start rebuilds in degenerate regimes.

    A rebuild with ``_size_at_rebuild > 0`` skips the coarse scales
    (``warm_start``); these pin that the skipped-scales path survives the
    graph emptying out completely and delete-only streams that cross a
    rebuild (epoch) boundary -- in both repair modes, with identical results.
    """

    def _profiles(self):
        import dataclasses

        rebuild = ParameterProfile.practical(EPS)
        return (rebuild, dataclasses.replace(rebuild, repair="incremental"))

    def test_rebuild_after_graph_empties(self):
        for profile in self._profiles():
            alg = FullyDynamicMatching(12, EPS, profile=profile, seed=7)
            edges = [(i, i + 6) for i in range(6)]
            for u, v in edges:
                alg.insert(u, v)
            assert alg.counters.get("dyn_rebuilds") > 0  # warm start armed
            for u, v in edges:
                alg.delete(u, v)
            assert alg.graph.m == 0
            # the deletes crossed rebuild boundaries, so warm-start rebuilds
            # already ran against a shrinking -- eventually empty -- graph
            alg.rebuild()  # explicit warm rebuild on the fully empty graph
            assert alg.current_matching().size == 0
            alg.current_matching().validate(alg.graph)
            alg.insert(0, 1)  # the maintainer must still be serviceable
            assert alg.current_matching().size == 1

    def test_delete_only_stream_crosses_rebuild_boundary(self):
        results = []
        for profile in self._profiles():
            counters = Counters()
            alg = FullyDynamicMatching(20, EPS, profile=profile,
                                       counters=counters, seed=8,
                                       rebuild_slack=1e9)
            edges = [(i, i + 10) for i in range(10)]
            for u, v in edges:
                alg.insert(u, v)
            alg.rebuild_slack = 0.125
            alg.rebuild()
            rebuilds_before = counters.get("dyn_rebuilds")
            for u, v in edges:  # delete-only tail, no compensating inserts
                alg.delete(u, v)
                alg.current_matching().validate(alg.graph)
            assert counters.get("dyn_rebuilds") > rebuilds_before
            assert alg.current_matching().size == 0
            results.append([alg.current_matching().mate(v)
                            for v in range(20)] + [counters.as_dict()])
        assert results[0] == results[1]  # repair-mode parity on the edge case


class TestAccounting:
    def test_empty_and_noop_accounting_invariant(self):
        """EMPTY padding is excluded from *both* sides of the amortization.

        The Table 2 convention: EMPTY updates charge nothing and do not
        advance the rebuild schedule (they are tallied as
        ``dyn_empty_updates``), while non-empty no-ops are charged and
        scheduled like any other update.  The invariant tying the two sides
        together: every counted update charges exactly one ``update_work``
        unit plus ``n`` per rebuild.
        """
        n = 8
        counters = Counters()
        alg = FullyDynamicMatching(n, EPS, counters=counters, seed=10)
        updates = [Update.insert(0, 1), Update.empty(), Update.insert(2, 3),
                   Update.empty(), Update.insert(0, 1),  # a no-op re-insert
                   Update.delete(4, 5)]                  # a no-op delete
        for upd in updates:
            alg.update(upd)
        assert counters.get("dyn_updates") == 4       # no-ops count...
        assert counters.get("dyn_empty_updates") == 2  # ...EMPTY does not
        assert counters.get("update_work") == (
            counters.get("dyn_updates")
            + counters.get("dyn_rebuilds") * n)

        # EMPTY padding changes neither the work nor the amortized quotient
        work_before = counters.get("update_work")
        amortized_before = alg.amortized_update_work()
        for _ in range(50):
            alg.update(Update.empty())
        assert counters.get("update_work") == work_before
        assert counters.get("dyn_updates") == 4
        assert alg.amortized_update_work() == amortized_before

    def test_counters_and_amortized_work(self):
        updates = planted_matching_churn(8, rounds=2, seed=7)
        counters = Counters()
        alg = FullyDynamicMatching(updates.n, EPS, counters=counters, seed=7)
        for upd in updates:
            alg.update(upd)
        assert counters.get("dyn_updates") == updates.length
        assert counters.get("dyn_rebuilds") >= 1
        assert counters.get("weak_oracle_calls") > 0
        assert alg.amortized_update_work() > 0

    def test_exact_oracle_factory(self):
        updates = insertion_only(16, 40, seed=8)
        alg = FullyDynamicMatching(16, EPS, seed=8,
                                   oracle_factory=lambda g: ExactInducedWeakOracle(g))
        for upd in updates:
            alg.update(upd)
        ok, ratio = certify_approximation(alg.graph, alg.current_matching(), EPS)
        assert ok, ratio

    def test_omv_oracle_factory_counts_queries(self):
        counters = Counters()
        updates = insertion_only(16, 30, seed=9)
        alg = FullyDynamicMatching(
            16, EPS, counters=counters, seed=9,
            oracle_factory=lambda g: OMvWeakOracle(g, counters=counters))
        for upd in updates:
            alg.update(upd)
        alg.current_matching().validate(alg.graph)
        assert counters.get("omv_updates") > 0
