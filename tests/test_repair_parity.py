"""Parity suite: incremental epoch repair vs the rebuild path.

``repair="incremental"`` (persistent :class:`~repro.core.repair.RepairContext`
state, patched frozen views, in-place warm starts) must be *byte-identical*
to ``repair="rebuild"``: same matchings, same counters, same epoch
boundaries, same rng stream.  These tests pin that equivalence across both
graph backends and both phase engines on the Table 2 workload families,
mirroring ``tests/test_engine_parity.py`` (the seam this one is modelled
on).  The view-patching property tests drive :meth:`RepairContext.verify_views`
through randomized insert/delete mixes, including the wholesale-recompile
fallback at tiny ``repair_patch_cap``.
"""

import dataclasses
import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import ParameterProfile
from repro.core.repair import RepairContext
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.offline import OfflineDynamicMatching
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.workloads import planted_matching_churn, sliding_window

EPS = 0.25

REBUILD = ParameterProfile.practical(EPS)
INCREMENTAL = dataclasses.replace(REBUILD, repair="incremental")
PROFILES = (REBUILD, INCREMENTAL)

BACKENDS = ("adjset", "csr")
ENGINES = ("array", "reference")


def mates(matching):
    return [matching.mate(v) for v in range(matching.n)]


def run_fully_dynamic(profile, stream, seed, backend, check_invariants=False):
    counters = Counters()
    alg = FullyDynamicMatching(stream.n, EPS, profile=profile,
                               counters=counters, seed=seed, backend=backend)
    if check_invariants:
        alg._framework.check_invariants = True
    for upd in stream:
        alg.update(upd)
    return alg, (mates(alg.current_matching()), counters.as_dict())


class TestFullyDynamicParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_churn_stream(self, backend, seed):
        stream = planted_matching_churn(8, rounds=2, seed=seed)
        results = []
        for profile in PROFILES:
            alg, result = run_fully_dynamic(profile, stream, seed, backend)
            results.append(result)
        assert results[0] == results[1]
        assert alg.repair_context is not None
        assert alg.repair_context.stats["attaches"] > 0
        alg.repair_context.verify_views()
        alg.repair_context.verify_baseline()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_both_engines(self, engine):
        stream = planted_matching_churn(8, rounds=2, seed=1)
        results = []
        for profile in PROFILES:
            profile = dataclasses.replace(profile, engine=engine)
            _, result = run_fully_dynamic(profile, stream, 1, "adjset")
            results.append(result)
        assert results[0] == results[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sliding_window_with_invariants(self, backend):
        """Cross-checked state (scalar vs mirrors) stays clean every bundle."""
        stream = sliding_window(18, 60, window=16, seed=2)
        results = []
        for profile in PROFILES:
            _, result = run_fully_dynamic(profile, stream, 2, backend,
                                          check_invariants=True)
            results.append(result)
        assert results[0] == results[1]

    def test_small_patch_cap_falls_back_wholesale(self):
        """A tiny cap forces the wholesale view recompile; results unchanged."""
        stream = planted_matching_churn(8, rounds=2, seed=0)
        tiny = dataclasses.replace(INCREMENTAL, repair_patch_cap=1)
        _, reference = run_fully_dynamic(REBUILD, stream, 0, "csr")
        alg, result = run_fully_dynamic(tiny, stream, 0, "csr")
        assert result == reference
        alg.repair_context.verify_views()


class TestOfflineParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_sizes_and_epochs(self, backend, seed):
        updates = sliding_window(18, 60, window=16, seed=seed)
        results = []
        for profile in PROFILES:
            counters = Counters()
            alg = OfflineDynamicMatching(18, EPS, profile=profile,
                                         counters=counters, seed=seed,
                                         backend=backend)
            sizes = alg.run(updates)
            results.append((sizes, alg.plan_epochs(updates),
                            counters.as_dict()))
        assert results[0] == results[1]

    def test_churn_stream(self):
        updates = planted_matching_churn(10, rounds=3, seed=4)
        results = []
        for profile in PROFILES:
            counters = Counters()
            alg = OfflineDynamicMatching(updates.n, EPS, profile=profile,
                                         counters=counters, seed=4)
            sizes = alg.run(updates)
            results.append((sizes, counters.as_dict()))
        assert results[0] == results[1]


class TestRepairModeValidation:
    def test_unknown_repair_mode_rejected(self):
        bad = dataclasses.replace(REBUILD, repair="magic")
        with pytest.raises(ValueError, match="repair mode"):
            FullyDynamicMatching(4, EPS, profile=bad)
        with pytest.raises(ValueError, match="repair mode"):
            OfflineDynamicMatching(4, EPS, profile=bad).run([])

    def test_run_requires_the_mirrored_matching(self):
        from repro.matching.matching import Matching

        alg = FullyDynamicMatching(6, EPS, profile=INCREMENTAL, seed=0)
        ctx = alg.repair_context
        with pytest.raises(ValueError, match="mirrored matching"):
            alg._framework.run(alg.graph, initial=Matching(6), context=ctx)


class TestViewPatching:
    """The patched frozen views must equal a from-scratch recompute."""

    def _context(self, graph, patch_cap=2048):
        profile = dataclasses.replace(INCREMENTAL, repair_patch_cap=patch_cap)
        ctx = RepairContext(graph, profile)
        ctx.bind_matching()
        return ctx

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_mutation_mix(self, backend, seed):
        rng = random.Random(seed)
        n = 14
        graph = Graph(n, backend=backend)
        ctx = self._context(graph)
        # compile the views once so note_update has something to patch
        ctx.edge_arrays()
        ctx.adjacency()
        for step in range(120):
            u, v = rng.sample(range(n), 2)
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
                ctx.note_update(u, v, inserted=False)
            else:
                graph.add_edge(u, v)
                ctx.note_update(u, v, inserted=True)
            if step % 7 == 0:
                ctx.sorted_neighbors(rng.randrange(n))  # grow the memo
            if step % 11 == 0:
                ctx.verify_views()
        ctx.verify_views()

    def test_toggle_back_cancels_pending(self):
        graph = Graph(6, [(0, 1), (2, 3)], backend="csr")
        ctx = self._context(graph)
        ctx.edge_arrays()
        graph.add_edge(4, 5)
        ctx.note_update(4, 5, inserted=True)
        assert len(ctx._pending) == 1
        graph.remove_edge(4, 5)
        ctx.note_update(4, 5, inserted=False)
        assert not ctx._pending  # toggled back to the synced state
        ctx.verify_views()

    def test_patch_cap_overflow_drops_views(self):
        graph = Graph(20, [(0, 1)], backend="csr")
        ctx = self._context(graph, patch_cap=2)
        ctx.edge_arrays()
        for i in range(3):
            graph.add_edge(2 * i + 2, 2 * i + 3)
            ctx.note_update(2 * i + 2, 2 * i + 3, inserted=True)
        assert ctx._keys is None and not ctx._pending  # wholesale fallback
        ctx.verify_views()
        assert ctx.stats["wholesale_compiles"] >= 2

    def test_empty_graph_views(self):
        graph = Graph(5, backend="csr")
        ctx = self._context(graph)
        eu, ev = ctx.edge_arrays()
        assert eu.size == 0 and ev.size == 0
        indptr, _ = ctx.adjacency()
        assert indptr.tolist() == [0] * 6
        graph.add_edge(1, 3)
        ctx.note_update(1, 3, inserted=True)
        ctx.verify_views()
        assert ctx.sorted_neighbors(1) == [3]
