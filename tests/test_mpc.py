"""Tests for the MPC substrate and the Corollary A.1 instantiation."""

import pytest

from repro.graph.generators import erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.mpc.simulator import MPCSimulator, MemoryExceeded
from repro.mpc.matching_mpc import MPCMatchingOracle, mpc_approx_matching
from repro.mpc.boost_mpc import mpc_boosted_matching


class TestSimulator:
    def test_scatter_round_robin(self):
        sim = MPCSimulator(3, memory_per_machine=10)
        sim.scatter(list(range(7)))
        sizes = [len(s) for s in sim.storage]
        assert sum(sizes) == 7 and max(sizes) - min(sizes) <= 1

    def test_round_delivers_messages_and_counts_words(self):
        counters = Counters()
        sim = MPCSimulator(2, counters=counters)
        sim.scatter([1, 2, 3])

        def program(machine_id, items):
            return [(1 - machine_id, ("payload", machine_id))]

        sim.round(program)
        assert counters.get("mpc_rounds") == 1
        # the budget S and mpc_messages are in *words*: each 2-tuple payload
        # is 2 words, not 1 message-word
        assert counters.get("mpc_messages") == 4
        assert any(isinstance(x, tuple) for x in sim.storage[0])

    def test_round_charges_payload_words_not_message_count(self):
        counters = Counters()
        sim = MPCSimulator(2, counters=counters)

        def program(machine_id, items):
            if machine_id == 0:
                return [(1, (1, 2, 3, 4, 5)), (1, 7)]  # 5 words + 1 word
            return []

        sim.round(program)
        assert counters.get("mpc_messages") == 6

    def test_send_side_budget_checked_in_words(self):
        # one 5-word payload must trip a 4-word budget even though it is a
        # single message
        sim = MPCSimulator(2, memory_per_machine=4, strict=True)

        def program(machine_id, items):
            if machine_id == 0:
                return [(1, (1, 2, 3, 4, 5))]
            return []

        with pytest.raises(MemoryExceeded):
            sim.round(program)

    def test_receive_side_budget_checked_in_words(self):
        # both machines send 3 words to machine 0: each send fits the budget
        # of 4, the combined receive volume of 6 does not
        counters = Counters()
        sim = MPCSimulator(2, memory_per_machine=4, strict=False,
                           counters=counters)

        def program(machine_id, items):
            return [(0, (machine_id, 1, 2))]

        sim.round(program)
        assert counters.get("mpc_memory_violations") >= 1

    def test_broadcast_round_word_accounting_and_memory_check(self):
        counters = Counters()
        sim = MPCSimulator(3, counters=counters)
        values = sim.broadcast_round([(0, 1), (2, 3), (4, 5)])
        assert values == [(0, 1), (2, 3), (4, 5)]
        assert counters.get("mpc_rounds") == 1
        # clique exchange: every 2-word value replicated to all 3 machines
        assert counters.get("mpc_messages") == 3 * 6

    def test_broadcast_round_enforces_budget(self):
        # each machine broadcasts a 3-word value to 4 machines (12 words
        # sent > S = 10)
        sim = MPCSimulator(4, memory_per_machine=10, strict=True)
        with pytest.raises(MemoryExceeded):
            sim.broadcast_round([(1, 2, 3)] * 4)

    def test_storage_memory_checked_in_words(self):
        # storage accumulates across rounds; two 4-word tuples are 8 stored
        # words even though they are only 2 items
        counters = Counters()
        sim = MPCSimulator(2, memory_per_machine=4, strict=False,
                           counters=counters)

        def program(machine_id, items):
            return [(0, (1, 2, 3, 4))] if machine_id == 1 else []

        sim.round(program)
        assert counters.get("mpc_memory_violations") == 0
        sim.round(program)
        assert counters.get("mpc_memory_violations") >= 1

    def test_broadcast_round_checks_storage_memory(self):
        counters = Counters()
        sim = MPCSimulator(2, memory_per_machine=2, strict=False,
                           counters=counters)
        sim.storage[0] = [1, 2, 3]  # already over budget
        sim.broadcast_round([0, 1])
        assert counters.get("mpc_memory_violations") >= 1

    def test_memory_budget_enforced(self):
        sim = MPCSimulator(2, memory_per_machine=2, strict=True)
        with pytest.raises(MemoryExceeded):
            sim.scatter(list(range(10)))

    def test_memory_budget_soft_mode(self):
        counters = Counters()
        sim = MPCSimulator(2, memory_per_machine=2, strict=False, counters=counters)
        sim.scatter(list(range(10)))
        assert counters.get("mpc_memory_violations") >= 1

    def test_default_machine_count(self):
        assert MPCSimulator.default_machine_count(100, 400, 100) == 5


class TestMPCMatching:
    def test_maximal_and_valid(self):
        for seed in range(3):
            g = erdos_renyi(40, 0.1, seed=seed)
            sim = MPCSimulator(4, counters=Counters())
            edges = mpc_approx_matching(g, sim, seed=seed)
            m = Matching(g.n, edges)
            m.validate(g)
            # 2-approximation (maximality may be probabilistic, approximation must hold)
            assert 2 * m.size >= maximum_matching_size(g)

    def test_rounds_counted(self):
        g = erdos_renyi(40, 0.1, seed=3)
        counters = Counters()
        sim = MPCSimulator(4, counters=counters)
        mpc_approx_matching(g, sim, seed=3)
        assert counters.get("mpc_rounds") >= 2

    def test_oracle_interface(self):
        counters = Counters()
        oracle = MPCMatchingOracle(counters=counters, seed=0)
        g = path_graph(8)
        edges = oracle.find_matching(g)
        m = Matching(g.n, edges)
        m.validate(g)
        assert 2 * m.size >= maximum_matching_size(g)
        assert counters.get("mpc_rounds") > 0


class TestBoostedMPC:
    def test_corollary_a1_quality_and_accounting(self):
        g = erdos_renyi(40, 0.1, seed=4)
        m, counters = mpc_boosted_matching(g, 0.25, seed=4)
        m.validate(g)
        ok, ratio = certify_approximation(g, m, 0.25)
        assert ok, ratio
        assert counters.get("oracle_calls") > 0
        assert counters.get("mpc_total_rounds") >= counters.get("mpc_rounds")
        assert counters.get("mpc_cleanup_rounds") > 0
