"""Tests for the OMv substrate (Section 7.4)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, random_bipartite
from repro.instrumentation.counters import Counters
from repro.dynamic.omv import ApproximateOMv, OMvMatrix, maximal_matching_via_omv
from repro.matching.hopcroft_karp import hopcroft_karp


class TestOMvMatrix:
    def test_update_get_query(self):
        omv = OMvMatrix(5)
        omv.update(0, 3, True)
        omv.update(2, 4, True)
        assert omv.get(0, 3) and not omv.get(3, 0)
        v = np.zeros(5, dtype=bool)
        v[3] = True
        result = omv.query(v)
        assert result.tolist() == [True, False, False, False, False]
        omv.update(0, 3, False)
        assert not omv.query(v).any()

    def test_query_matches_dense_product(self):
        rng = np.random.default_rng(0)
        n = 37
        dense = rng.random((n, n)) < 0.2
        omv = OMvMatrix(n)
        for i in range(n):
            for j in range(n):
                if dense[i, j]:
                    omv.update(i, j, True)
        for _ in range(5):
            v = rng.random(n) < 0.3
            expected = dense @ v > 0
            assert np.array_equal(omv.query(v), expected)

    def test_query_rejects_wrong_length(self):
        omv = OMvMatrix(4)
        with pytest.raises(ValueError):
            omv.query(np.zeros(3, dtype=bool))

    def test_counters(self):
        counters = Counters()
        omv = OMvMatrix(4, counters=counters)
        omv.update(0, 1, True)
        omv.query(np.zeros(4, dtype=bool))
        omv.row_neighbors(0)
        assert counters.get("omv_updates") == 1
        assert counters.get("omv_queries") == 1
        assert counters.get("omv_row_probes") == 1

    def test_row_neighbors_with_restriction(self):
        omv = OMvMatrix(6)
        omv.update(2, 1, True)
        omv.update(2, 4, True)
        assert omv.row_neighbors(2) == [1, 4]
        assert omv.row_neighbors(2, restrict=[4, 5]) == [4]

    def test_from_graph_bipartite_cover(self):
        g = erdos_renyi(10, 0.3, seed=1)
        omv = OMvMatrix.from_graph_bipartite_cover(g)
        for u, v in g.edges():
            assert omv.get(u, v) and omv.get(v, u)
        assert not omv.get(0, 0)


class TestApproximateOMv:
    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            ApproximateOMv(4, 1.0)

    def test_buffers_then_flushes(self):
        counters = Counters()
        aomv = ApproximateOMv(10, lam=0.2, counters=counters)
        # up to lam*n = 2 dirty rows may stay stale
        aomv.update(0, 1, True)
        aomv.update(1, 2, True)
        v = np.zeros(10, dtype=bool)
        v[1] = True
        aomv.query(v)
        # exceeding the budget forces a flush
        aomv.update(2, 3, True)
        aomv.update(3, 4, True)
        result = aomv.query(v)
        assert counters.get("omv_flushes") >= 1
        assert result[0]  # the flushed entry is now visible

    def test_force_flush(self):
        aomv = ApproximateOMv(5, lam=0.5)
        aomv.update(0, 1, True)
        aomv.force_flush()
        assert aomv.exact.get(0, 1)


class TestOMvMatching:
    def test_matches_hopcroft_karp_size_on_bipartite(self):
        for seed in range(3):
            g, left, right = random_bipartite(10, 12, 0.25, seed=seed)
            omv = OMvMatrix(g.n)
            for u, v in g.edges():
                omv.update(u, v, True)
                omv.update(v, u, True)
            matching = maximal_matching_via_omv(omv, left, right)
            # maximal matching: at least half of the optimum
            opt = hopcroft_karp(g).size
            assert 2 * len(matching) >= opt
            used = set()
            for u, v in matching:
                assert u in set(left) and v in set(right)
                assert g.has_edge(u, v)
                assert u not in used and v not in used
                used.update((u, v))

    def test_empty_sides(self):
        omv = OMvMatrix(4)
        assert maximal_matching_via_omv(omv, [], [1]) == []
        assert maximal_matching_via_omv(omv, [0], []) == []
