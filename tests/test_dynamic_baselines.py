"""Tests for the dynamic baselines used in the Table 2 benchmarks."""

from repro.workloads import insertion_only, planted_matching_churn
from repro.matching.blossom import maximum_matching_size
from repro.instrumentation.counters import Counters
from repro.dynamic.baselines import (
    ExponentialBoostingDynamic,
    LazyGreedyDynamic,
    RecomputeFromScratchDynamic,
)


class TestRecompute:
    def test_always_optimal(self):
        updates = insertion_only(14, 30, seed=1)
        alg = RecomputeFromScratchDynamic(14)
        for upd in updates:
            alg.update(upd)
            m = alg.current_matching()
            m.validate(alg.dynamic_graph.graph)
            assert m.size == maximum_matching_size(alg.dynamic_graph.graph)

    def test_work_charged_per_update(self):
        counters = Counters()
        alg = RecomputeFromScratchDynamic(10, counters=counters)
        for upd in insertion_only(10, 10, seed=2):
            alg.update(upd)
        assert counters.get("update_work") >= 10 * 10  # >= n per update


class TestLazyGreedy:
    def test_two_approximation_throughout(self):
        updates = planted_matching_churn(10, rounds=3, seed=3)
        alg = LazyGreedyDynamic(updates.n)
        for upd in updates:
            alg.update(upd)
            m = alg.current_matching()
            m.validate(alg.dynamic_graph.graph)
        assert 2 * alg.current_matching().size >= maximum_matching_size(
            alg.dynamic_graph.graph) - 1

    def test_cheap_updates(self):
        counters = Counters()
        alg = LazyGreedyDynamic(20, counters=counters)
        updates = insertion_only(20, 50, seed=4)
        for upd in updates:
            alg.update(upd)
        # work is O(degree) per update, far below n per update
        assert counters.get("update_work") < 20 * updates.length


class TestExponentialBaseline:
    def test_valid_and_reasonable(self):
        updates = planted_matching_churn(8, rounds=2, seed=5)
        counters = Counters()
        alg = ExponentialBoostingDynamic(updates.n, 0.25, counters=counters, seed=5)
        for upd in updates:
            alg.update(upd)
            alg.current_matching().validate(alg.dynamic_graph.graph)
        assert counters.get("dyn_rebuilds") >= 1
        assert counters.get("oracle_calls") > 0
        # it maintains at least a 2-approximation (its rebuilds start maximal)
        assert 2 * alg.current_matching().size >= maximum_matching_size(
            alg.dynamic_graph.graph) - 1


class TestEmptyUpdateConvention:
    """Every maintainer shares the Table 2 EMPTY-padding convention."""

    def test_empty_excluded_from_both_sides_everywhere(self):
        from repro.graph.dynamic_graph import Update

        for make in (lambda c: RecomputeFromScratchDynamic(8, counters=c),
                     lambda c: LazyGreedyDynamic(8, counters=c),
                     lambda c: ExponentialBoostingDynamic(8, 0.25, counters=c,
                                                          seed=3)):
            counters = Counters()
            alg = make(counters)
            alg.update(Update.insert(0, 1))
            work_after_real = counters.get("update_work")
            for _ in range(10):
                alg.update(Update.empty())
            assert counters.get("dyn_updates") == 1
            assert counters.get("dyn_empty_updates") == 10
            assert counters.get("update_work") == work_after_real
