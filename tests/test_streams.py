"""Tests for the lazy update-stream layer (``repro.workloads.streams``)."""

import itertools

import pytest

from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.workloads import (
    UpdateStream,
    concat,
    insertion_only,
    interleave,
    planted_matching_churn,
    sliding_window,
    stream_of,
)


def _ins(k):
    return [Update.insert(i, i + 1) for i in range(k)]


class TestUpdateStream:
    def test_reiterable(self):
        stream = sliding_window(12, 40, window=8, seed=1)
        assert list(stream) == list(stream)

    def test_from_updates_and_length(self):
        stream = UpdateStream.from_updates(5, _ins(3))
        assert stream.n == 5 and stream.length == 3
        assert stream.materialize() == _ins(3)

    def test_take(self):
        stream = insertion_only(20, 30, seed=2)
        head = stream.take(7)
        assert head.length == 7
        assert head.materialize() == stream.materialize()[:7]
        # taking beyond the end is the whole stream
        assert stream.take(10 ** 6).count() == 30

    def test_take_is_lazy(self):
        # an endless producer: only laziness lets take() terminate
        endless = UpdateStream(
            4, lambda: (Update.insert(0, 1) for _ in itertools.count()))
        assert endless.take(5).count() == 5

    def test_concat(self):
        a = UpdateStream.from_updates(3, _ins(2))
        b = UpdateStream.from_updates(7, _ins(1))
        joined = concat(a, b)
        assert joined.n == 7  # max of the parts
        assert joined.length == 3
        assert joined.materialize() == _ins(2) + _ins(1)
        assert a.concat(b).materialize() == joined.materialize()

    def test_interleave_round_robin(self):
        a = UpdateStream.from_updates(9, [Update.insert(0, 1),
                                          Update.insert(2, 3)])
        b = UpdateStream.from_updates(9, [Update.insert(4, 5),
                                          Update.insert(6, 7),
                                          Update.insert(7, 8)])
        merged = interleave(a, b).materialize()
        assert merged == [Update.insert(0, 1), Update.insert(4, 5),
                          Update.insert(2, 3), Update.insert(6, 7),
                          Update.insert(7, 8)]

    def test_stream_of(self):
        stream = stream_of(_ins(4), n=6)
        assert stream.n == 6 and stream.materialize() == _ins(4)
        passthrough = insertion_only(5, 4, seed=0)
        assert stream_of(passthrough) is passthrough
        with pytest.raises(ValueError, match="explicit n"):
            stream_of(_ins(2))

    def test_empty(self):
        assert UpdateStream.empty(4).count() == 0


class TestChunkDiscipline:
    """The combinators must preserve the exact Problem 1 chunk/padding rules."""

    def test_chunks_exact_size_and_padding(self):
        stream = UpdateStream.from_updates(10, _ins(7))
        chunks = list(stream.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 3]
        assert chunks[-1][1:] == [Update.empty(), Update.empty()]
        # non-padded mode leaves the short tail
        assert [len(c) for c in stream.chunks(3, pad=False)] == [3, 3, 1]

    def test_chunks_match_eager_chunk_updates(self):
        stream = sliding_window(14, 50, window=9, seed=3)
        for size in (1, 7, 50, 64):
            lazy = list(stream.chunks(size))
            eager = DynamicGraph.chunk_updates(stream.materialize(), size,
                                               pad=True)
            assert lazy == eager, f"chunk_size={size}"

    def test_chunked_flat_stream(self):
        stream = UpdateStream.from_updates(10, _ins(5))
        flat = stream.chunked(4).materialize()
        assert len(flat) == 8  # padded up to a multiple of the chunk size
        assert flat[:5] == _ins(5)
        assert all(u.kind == Update.EMPTY for u in flat[5:])

    def test_chunks_rejects_bad_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(UpdateStream.empty(3).chunks(0))

    def test_rate_limit_density(self):
        stream = insertion_only(30, 12, seed=4).rate_limit(3, 5)
        flat = stream.materialize()
        # 12 real updates in windows of 5 slots holding 3 real each
        assert len(flat) == 20
        for start in range(0, 20, 5):
            window = flat[start:start + 5]
            assert sum(1 for u in window if u.kind != Update.EMPTY) == 3
            assert [u.kind for u in window[3:]] == [Update.EMPTY] * 2
        # real updates come through unchanged and in order
        real = [u for u in flat if u.kind != Update.EMPTY]
        assert real == insertion_only(30, 12, seed=4).materialize()

    def test_rate_limit_short_tail_not_padded(self):
        flat = insertion_only(30, 7, seed=5).rate_limit(3, 5).materialize()
        # two full windows of 5 slots + a final short burst of 1 real update
        assert len(flat) == 11
        assert flat[-1].kind != Update.EMPTY

    def test_rate_limit_rejects_bad_window(self):
        stream = insertion_only(10, 5, seed=6)
        for bad in ((0, 5), (6, 5), (-1, 5)):
            with pytest.raises(ValueError):
                stream.rate_limit(*bad)

    def test_problem1_iter_chunks_lazy_parity(self):
        from repro.dynamic.weak_oracles import GreedyInducedWeakOracle
        from repro.dynamic.interfaces import Problem1Instance

        def make():
            return Problem1Instance(
                20, lambda g: GreedyInducedWeakOracle(g, seed=0),
                q=2, lam=0.5, delta=0.1, alpha=0.1)

        stream = insertion_only(20, 13, seed=7)
        lazy_inst, eager_inst = make(), make()
        lazy_chunks = list(lazy_inst.iter_chunks(stream))
        eager_chunks = eager_inst.chunks_from(stream.materialize())
        assert lazy_chunks == eager_chunks
        assert lazy_inst.run_stream(stream) == len(lazy_chunks)
        assert lazy_inst.graph.m == 13
        assert lazy_inst.counters.get("p1_updates") == \
            len(lazy_chunks) * lazy_inst.chunk_size


class TestSourceLaziness:
    def test_sources_return_without_generating(self):
        # constructing a huge stream must be O(1); only iteration pays
        stream = sliding_window(10 ** 6, 10 ** 9, window=64, seed=8)
        assert stream.length == 10 ** 9
        head = [u for _, u in zip(range(100), iter(stream))]
        assert len(head) == 100

    def test_validation_is_eager(self):
        with pytest.raises(ValueError, match="window"):
            sliding_window(10, 100, window=0)
        with pytest.raises(ValueError, match="churn_fraction"):
            planted_matching_churn(5, rounds=1, churn_fraction=2.0)
        with pytest.raises(ValueError, match="n_pairs"):
            planted_matching_churn(0, rounds=1)

    def test_apply_all_consumes_stream_without_log(self):
        stream = sliding_window(16, 500, window=12, seed=9)
        dg = DynamicGraph(16, log_updates=False)
        dg.apply_all(stream)
        assert dg.num_updates == 500
        assert dg.m <= 12
        with pytest.raises(RuntimeError, match="log disabled"):
            dg.log()
        with pytest.raises(RuntimeError, match="log disabled"):
            dg.replay()

    def test_apply_all_stream_matches_eager(self):
        stream = sliding_window(16, 200, window=12, seed=10)
        lazy = DynamicGraph(16, log_updates=False)
        eager = DynamicGraph(16)
        assert lazy.apply_all(stream) == eager.apply_all(stream.materialize())
        assert sorted(lazy.graph.edges()) == sorted(eager.graph.edges())
        assert lazy.max_edges_seen == eager.max_edges_seen
        assert lazy.num_updates == eager.num_updates

    def test_grouped_runs_cap_bounds_buffering(self):
        updates = [Update.insert(i % 50, (i % 50) + 1 + (i // 50) % 40)
                   for i in range(10)]
        runs = list(DynamicGraph._grouped_runs(iter(updates * 1000)))
        assert all(len(run) <= DynamicGraph.BULK_RUN_CAP
                   for _, run in runs)
        assert sum(len(run) for _, run in runs) == 10000
