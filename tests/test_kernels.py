"""Property tests (hypothesis) for the packed-bitset kernel library.

Every kernel in :mod:`repro.core.kernels` is checked against the obvious
set/int model: a packed set is just ``{j : bit j set}``, so intersections,
popcounts, first-set-bits and gathers must agree with plain Python sets and
``bin(x).count("1")`` on arbitrary universes -- including the word-boundary
sizes (63, 64, 65, 128, 129) where packing bugs live.  The uint8 fixture
test replays query/probe/matching results recorded from the byte-packed
OMv implementation this library replaced, pinning the uint64 migration to
the old outputs bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.dynamic.omv import OMvMatrix, maximal_matching_via_omv
from repro.instrumentation.counters import Counters

# universes crossing word boundaries are where the bugs are
UNIVERSES = st.integers(min_value=1, max_value=200)


@st.composite
def packed_sets(draw, n=None):
    """(n, sorted index list, packed words) over a small universe."""
    if n is None:
        n = draw(UNIVERSES)
    members = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                            unique=True, max_size=n))
    members = sorted(members)
    return n, members, kernels.pack_indices(members, n)


# --------------------------------------------------------------- boundaries
@given(packed_sets())
@settings(max_examples=200, deadline=None)
def test_pack_unpack_round_trip(case):
    n, members, words = case
    assert words.dtype == np.uint64
    assert words.shape == (kernels.words_for(n),)
    mask = kernels.unpack_words(words, n)
    assert mask.shape == (n,)
    assert sorted(np.flatnonzero(mask).tolist()) == members
    # the indicator pack of the same mask is word-identical
    assert np.array_equal(kernels.pack_indicator(mask), words)


@given(packed_sets())
@settings(max_examples=200, deadline=None)
def test_iter_set_bits_is_sorted_membership(case):
    n, members, words = case
    assert kernels.iter_set_bits(words) == members


@given(packed_sets())
@settings(max_examples=200, deadline=None)
def test_popcount_matches_bit_count(case):
    n, members, words = case
    assert kernels.popcount_words(words) == len(members)
    # cross-check against the int model
    as_int = int.from_bytes(words.tobytes(), "little")
    assert kernels.popcount_words(words) == bin(as_int).count("1")


# ------------------------------------------------------------ word algebra
@given(st.data())
@settings(max_examples=150, deadline=None)
def test_and_andnot_match_set_model(data):
    n = data.draw(UNIVERSES)
    _, a_members, a = data.draw(packed_sets(n=n))
    _, b_members, b = data.draw(packed_sets(n=n))
    a_set, b_set = set(a_members), set(b_members)
    assert kernels.iter_set_bits(kernels.and_words(a, b)) == \
        sorted(a_set & b_set)
    assert kernels.iter_set_bits(kernels.andnot_words(a, b)) == \
        sorted(a_set - b_set)


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_first_set_bit_is_minimum(data):
    n = data.draw(UNIVERSES)
    _, members, words = data.draw(packed_sets(n=n))
    expected = members[0] if members else -1
    assert kernels.first_set_bit(words) == expected


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_batch_rows_agree_with_scalar_kernels(data):
    """first_set_bits / any_and_rows over a matrix == per-row scalar calls."""
    n = data.draw(st.integers(min_value=1, max_value=150))
    rows = [data.draw(packed_sets(n=n)) for _ in
            range(data.draw(st.integers(min_value=1, max_value=6)))]
    _, mask_members, mask = data.draw(packed_sets(n=n))
    matrix = np.stack([words for _, _, words in rows])
    firsts = kernels.first_set_bits(matrix)
    hits = kernels.any_and_rows(matrix, mask)
    for i, (_, members, words) in enumerate(rows):
        assert firsts[i] == (members[0] if members else -1)
        assert bool(hits[i]) == bool(set(members) & set(mask_members))


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_select_bits_is_membership_gather(data):
    n = data.draw(UNIVERSES)
    _, members, words = data.draw(packed_sets(n=n))
    probe = data.draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                               min_size=1, max_size=20))
    got = kernels.select_bits(words, np.asarray(probe, dtype=np.int64))
    assert got.tolist() == [j in set(members) for j in probe]


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_bit_mutators_track_model_set(data):
    n = data.draw(UNIVERSES)
    _, members, words = data.draw(packed_sets(n=n))
    model = set(members)
    words = words.copy()
    for _ in range(data.draw(st.integers(min_value=1, max_value=15))):
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        if data.draw(st.booleans()):
            kernels.set_bit(words, j)
            model.add(j)
        else:
            kernels.clear_bit(words, j)
            model.discard(j)
        assert kernels.test_bit(words, j) == (j in model)
    assert kernels.iter_set_bits(words) == sorted(model)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_pack_adjacency_matches_csr_rows(data):
    n = data.draw(st.integers(min_value=1, max_value=60))
    neighbors = [sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=n - 1), unique=True,
        max_size=8))) for _ in range(n)]
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(adj) for adj in neighbors])
    indices = np.asarray([j for adj in neighbors for j in adj],
                         dtype=np.int64)
    packed = kernels.pack_adjacency(indptr, indices, n)
    assert packed.shape == (n, kernels.words_for(n))
    for v in range(n):
        assert kernels.iter_set_bits(packed[v]) == neighbors[v]


@given(packed_sets())
@settings(max_examples=200, deadline=None)
def test_int_tier_agrees_with_word_tier(case):
    """int_from_words / int_from_indices / bits_of_int vs the int model.

    Universes up to 200 exercise both ``int_from_indices`` branches (the
    shift fold and the ``packbits`` scatter at > 32 indices).
    """
    n, members, words = case
    as_int = int.from_bytes(words.tobytes(), "little")
    assert kernels.int_from_words(words) == as_int
    assert kernels.int_from_indices(members) == as_int
    assert kernels.bits_of_int(as_int) == members
    assert kernels.bits_of_int(0) == []


def test_packing_budget_gate():
    assert kernels.packing_budget_ok(1)
    assert kernels.packing_budget_ok(kernels.PACKED_ADJACENCY_MAX_N)
    assert not kernels.packing_budget_ok(kernels.PACKED_ADJACENCY_MAX_N + 1)
    assert not kernels.packing_budget_ok(0)
    assert kernels.packing_budget_ok(100, limit=100)
    assert not kernels.packing_budget_ok(101, limit=100)


# ----------------------------------------------------- uint8 -> uint64 pin
def test_uint8_fixture_migration():
    """The uint64 OMv reproduces the byte-packed implementation's outputs.

    ``tests/data/omv_uint8_fixture.npz`` was recorded from the pre-port
    uint8 row layout: per case, a packed matrix plus the results of one
    query, one restricted and one unrestricted row probe, and one
    ``maximal_matching_via_omv`` run.  Bit-level disagreement here means
    the word migration changed observable behaviour somewhere.
    """
    import os
    data = np.load(os.path.join(os.path.dirname(__file__), "data",
                                "omv_uint8_fixture.npz"))
    for case in range(int(data["num_cases"])):
        def field(name):
            return data[f"c{case}_{name}"]

        n = int(field("n"))
        dense = np.unpackbits(field("packed_u8"), axis=1,
                              bitorder="little")[:, :n].astype(bool)
        omv = OMvMatrix(n, counters=Counters())
        for i, j in zip(*np.nonzero(dense)):
            omv.update(int(i), int(j), True)
        for i in range(n):
            assert kernels.iter_set_bits(omv._words[i]) == \
                sorted(np.flatnonzero(dense[i]).tolist())

        assert omv.query(field("qmask")).tolist() == \
            field("product").tolist()
        row = int(field("row"))
        assert omv.row_neighbors(row, field("restrict").tolist()) == \
            field("row_neighbors").tolist()
        assert omv.row_neighbors(row) == field("row_all").tolist()
        got = maximal_matching_via_omv(omv, field("left").tolist(),
                                       field("right").tolist())
        assert [list(edge) for edge in got] == field("matching").tolist()


# ------------------------------------------------------- backend reporting
def test_backend_selection_reports_numpy_without_numba():
    """Without numba installed the silent fallback must be active."""
    assert kernels.active_backend() in ("numpy", "numba")
    try:
        import numba  # noqa: F401
    except ImportError:
        assert kernels.active_backend() == "numpy"


def test_timing_registry_round_trip():
    kernels.reset_timings()
    kernels.enable_timing(True)
    try:
        words = kernels.pack_indices([1, 5], 70)
        kernels.popcount_words(words)
        kernels.first_set_bit(words)
    finally:
        kernels.enable_timing(False)
    names = {row[0] for row in kernels.timing_table()}
    assert "popcount_words" in names
    for name, calls, total_ns in kernels.timing_table():
        assert calls > 0 and total_ns >= 0
    kernels.reset_timings()
    assert kernels.timing_table() == []
