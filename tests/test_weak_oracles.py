"""Tests for the concrete Aweak implementations (Definition 6.1)."""

from repro.graph.generators import erdos_renyi, planted_matching
from repro.instrumentation.counters import Counters
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.dynamic.weak_oracles import (
    ExactInducedWeakOracle,
    GreedyInducedWeakOracle,
    OMvWeakOracle,
    SamplingWeakOracle,
)


def _check_is_matching_in_subset(graph, subset, edges):
    s = set(subset)
    used = set()
    for u, v in edges:
        assert graph.has_edge(u, v)
        assert u in s and v in s
        assert u not in used and v not in used
        used.update((u, v))


class TestGreedyInduced:
    def test_definition61_guarantee(self):
        g, _ = planted_matching(30, 0.02, seed=1)
        oracle = GreedyInducedWeakOracle(g, seed=1)
        subset = list(range(g.n))
        result = oracle.query(subset, delta=0.4)
        assert result is not None
        _check_is_matching_in_subset(g, subset, result)
        # lambda = 1/2: at least half of mu(G[S]) when not returning bottom
        assert 2 * len(result) >= maximum_matching_size(g)

    def test_returns_none_on_empty_subgraph(self):
        g = erdos_renyi(10, 0.0, seed=0)
        oracle = GreedyInducedWeakOracle(g)
        assert oracle.query(list(range(10)), 0.1) is None


class TestExactInduced:
    def test_exact_on_induced_subgraph(self):
        g = erdos_renyi(20, 0.3, seed=2)
        oracle = ExactInducedWeakOracle(g)
        subset = list(range(12))
        result = oracle.query(subset, 0.1)
        sub, _ = g.induced_subgraph(subset)
        if result is None:
            assert maximum_matching_size(sub) == 0
        else:
            _check_is_matching_in_subset(g, subset, result)
            assert len(result) == maximum_matching_size(sub)


class TestSampling:
    def test_returns_matching_with_probes_counted(self):
        g, _ = planted_matching(40, 0.05, seed=3)
        counters = Counters()
        oracle = SamplingWeakOracle(g, rounds=16, seed=3, counters=counters)
        result = oracle.query(list(range(g.n)), delta=0.2)
        assert result is not None
        _check_is_matching_in_subset(g, list(range(g.n)), result)
        assert counters.get("weak_probe_count") > 0

    def test_small_subset_returns_none(self):
        g = erdos_renyi(10, 0.5, seed=4)
        oracle = SamplingWeakOracle(g, seed=4)
        assert oracle.query([3], 0.1) is None


class TestOMvOracle:
    def test_bipartite_query(self):
        g = erdos_renyi(16, 0.3, seed=5)
        oracle = OMvWeakOracle(g)
        left = list(range(8))
        right = list(range(8, 16))
        result = oracle.query_bipartite(left, right, 0.1)
        if result is not None:
            for u, v in result:
                assert g.has_edge(u, v)
                assert u in set(left) and v in set(right)

    def test_plain_query_projects_to_matching(self):
        g = erdos_renyi(16, 0.3, seed=6)
        oracle = OMvWeakOracle(g)
        result = oracle.query(list(range(16)), 0.1)
        assert result is not None
        m = Matching(g.n, result)
        m.validate(g)

    def test_notify_update_keeps_matrix_in_sync(self):
        g = erdos_renyi(10, 0.2, seed=7)
        oracle = OMvWeakOracle(g)
        g.add_edge(0, 1) if not g.has_edge(0, 1) else None
        oracle.notify_update(0, 1, True)
        assert oracle.omv.get(0, 1) and oracle.omv.get(1, 0)
        g.remove_edge(0, 1)
        oracle.notify_update(0, 1, False)
        assert not oracle.omv.get(0, 1)

    def test_rebuild(self):
        g = erdos_renyi(10, 0.2, seed=8)
        oracle = OMvWeakOracle(g)
        g.add_edge(0, 2) if not g.has_edge(0, 2) else None
        oracle.rebuild()
        assert oracle.omv.get(0, 2)

    def test_counters_shared(self):
        g = erdos_renyi(12, 0.3, seed=9)
        counters = Counters()
        oracle = OMvWeakOracle(g, counters=counters)
        oracle.query(list(range(12)), 0.1)
        assert counters.get("omv_queries") > 0
