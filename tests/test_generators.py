"""Unit tests for the workload generators."""

import pytest

from repro.graph.generators import (
    blossom_gadget,
    cycle_graph,
    disjoint_paths,
    erdos_renyi,
    nested_blossom_gadget,
    ors_layered_graph,
    path_graph,
    planted_matching,
    random_bipartite,
    random_graph_m,
    random_regular_like,
    verify_ors,
)
from repro.graph.bipartite import is_bipartite
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching


class TestRandomFamilies:
    def test_erdos_renyi_edge_count_reasonable(self):
        g = erdos_renyi(50, 0.1, seed=1)
        assert g.n == 50
        expected = 0.1 * 50 * 49 / 2
        assert 0.3 * expected < g.m < 2.0 * expected

    def test_erdos_renyi_deterministic_given_seed(self):
        a = erdos_renyi(30, 0.2, seed=42)
        b = erdos_renyi(30, 0.2, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_graph_m_exact_count(self):
        g = random_graph_m(20, 30, seed=0)
        assert g.m == 30

    def test_random_graph_m_caps_at_complete(self):
        g = random_graph_m(5, 100, seed=0)
        assert g.m == 10

    def test_random_bipartite_is_bipartite(self):
        g, left, right = random_bipartite(10, 12, 0.3, seed=4)
        assert is_bipartite(g)
        left_set = set(left)
        for u, v in g.edges():
            assert (u in left_set) != (v in left_set)

    def test_random_regular_like_degree_bound(self):
        g = random_regular_like(20, 3, seed=2)
        assert g.max_degree() <= 3


class TestStructuredFamilies:
    def test_planted_matching_is_certificate(self):
        g, planted = planted_matching(15, extra_edge_prob=0.05, seed=3)
        matching = Matching(g.n, planted)
        matching.validate(g)
        assert matching.size == 15
        assert maximum_matching_size(g) == 15

    def test_path_and_cycle_optimum(self):
        assert maximum_matching_size(path_graph(7)) == 3
        assert maximum_matching_size(path_graph(8)) == 4
        assert maximum_matching_size(cycle_graph(7)) == 3
        assert maximum_matching_size(cycle_graph(8)) == 4

    def test_cycle_requires_three_vertices(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_disjoint_paths_optimum(self):
        g = disjoint_paths(4, 5)
        assert g.n == 4 * 6
        # each path with 5 edges has a maximum matching of 3
        assert maximum_matching_size(g) == 12

    def test_blossom_gadget_optimum(self):
        # one triangle + stem of 2: 5 vertices, maximum matching 2
        g = blossom_gadget(1, 2)
        assert maximum_matching_size(g) == 2
        g = blossom_gadget(4, 2)
        assert maximum_matching_size(g) == 8

    def test_nested_blossom_gadget(self):
        g = nested_blossom_gadget()
        assert g.n == 10
        assert maximum_matching_size(g) == 5


class TestORS:
    def test_layered_ors_verifies(self):
        graph, matchings = ors_layered_graph(60, 5, 4, seed=1)
        assert verify_ors(graph, matchings)

    def test_verify_ors_rejects_non_induced(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        # M1 = {(0,1),(2,3)} is NOT induced because edge (1,2) exists
        assert not verify_ors(g, [[(0, 1), (2, 3)]])

    def test_verify_ors_rejects_missing_edge(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1)])
        assert not verify_ors(g, [[(2, 3)]])

    def test_ors_rejects_oversized_matching(self):
        with pytest.raises(ValueError):
            ors_layered_graph(10, 6, 2, seed=0)
