"""Shared test helpers: brute-force reference matcher and workload suites."""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

import pytest

from repro.graph.graph import Graph
from repro.graph.generators import (
    blossom_gadget,
    cycle_graph,
    disjoint_paths,
    erdos_renyi,
    nested_blossom_gadget,
    path_graph,
    planted_matching,
    random_bipartite,
)

Edge = Tuple[int, int]


def brute_force_maximum_matching_size(graph: Graph) -> int:
    """Exact maximum matching size by exhaustive search (tiny graphs only)."""
    edges = graph.edge_list()
    best = 0
    n_edges = len(edges)

    def extend(start: int, used_vertices: set, size: int) -> None:
        nonlocal best
        best = max(best, size)
        if size + (n_edges - start) <= best:
            return
        for i in range(start, n_edges):
            u, v = edges[i]
            if u in used_vertices or v in used_vertices:
                continue
            used_vertices.add(u)
            used_vertices.add(v)
            extend(i + 1, used_vertices, size + 1)
            used_vertices.discard(u)
            used_vertices.discard(v)

    extend(0, set(), 0)
    return best


def small_graph_suite() -> List[Tuple[str, Graph]]:
    """A deterministic suite of small graphs exercising varied structure."""
    suite: List[Tuple[str, Graph]] = [
        ("empty", Graph(5)),
        ("single_edge", Graph(2, [(0, 1)])),
        ("path5", path_graph(5)),
        ("path8", path_graph(8)),
        ("cycle5", cycle_graph(5)),
        ("cycle6", cycle_graph(6)),
        ("triangle_plus_stem", blossom_gadget(1, 2)),
        ("blossoms", blossom_gadget(3, 3)),
        ("nested_blossom", nested_blossom_gadget()),
        ("disjoint_paths", disjoint_paths(3, 5)),
    ]
    for seed in range(3):
        suite.append((f"er20_{seed}", erdos_renyi(20, 0.15, seed=seed)))
    g, _, _ = random_bipartite(8, 10, 0.3, seed=7)
    suite.append(("bipartite", g))
    g, _ = planted_matching(10, 0.05, seed=11)
    suite.append(("planted", g))
    return suite


def medium_graph_suite() -> List[Tuple[str, Graph]]:
    """Larger graphs for approximation-quality tests (exact optimum still fast)."""
    suite: List[Tuple[str, Graph]] = [
        ("paths_long", disjoint_paths(5, 9)),
        ("blossoms_many", blossom_gadget(6, 4)),
    ]
    for seed in range(3):
        suite.append((f"er60_{seed}", erdos_renyi(60, 0.08, seed=seed)))
    for seed in range(2):
        g, _ = planted_matching(30, 0.02, seed=seed)
        suite.append((f"planted60_{seed}", g))
    g, _, _ = random_bipartite(25, 25, 0.1, seed=3)
    suite.append(("bipartite50", g))
    return suite


@pytest.fixture(scope="session")
def small_graphs() -> List[Tuple[str, Graph]]:
    return small_graph_suite()


@pytest.fixture(scope="session")
def medium_graphs() -> List[Tuple[str, Graph]]:
    return medium_graph_suite()
