"""Tests for the unified benchmark harness (``repro.bench``).

Covers the registry, the timing runner and its JSON record schema, emission
round-trips, the compare mode's exit codes, benchmark-module discovery, and
the tier-1 smoke gate: ``REPRO_BENCH_SMOKE=1 python -m repro.bench run --all
--smoke`` must keep every registered scenario runnable in seconds.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import (
    RECORD_KEYS,
    RunSpec,
    compare_records,
    expand_specs,
    get_scenario,
    load_benchmark_modules,
    load_records,
    register,
    regressions,
    run_scenario,
    scenarios,
    suite_names,
    unregister,
    validate_record,
    write_suite,
)
from repro.bench import cli
from repro.instrumentation.counters import Counters

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

ALL_SCENARIOS = (
    "ablation_schedule", "backends", "fig1_structures", "fig2_overtake",
    "fig3_hprime_decay", "fig4_sampling", "lemma53_initial_matching",
    "quality_vs_eps", "scaling_n", "table1_congest", "table1_mpc",
    "table2_chaos", "table2_dynamic", "table2_latency", "table2_offline",
    "table2_omv", "table2_realgraph",
)


@pytest.fixture
def toy_scenario():
    calls = []

    @register("_toy", suite="_toysuite", description="test-only",
              backends=("adjset", "csr"))
    def _toy(spec, counters):
        calls.append(spec)
        counters.add("work", 3)
        return {"derived": 1.5}

    yield get_scenario("_toy"), calls
    unregister("_toy")


class TestRegistry:
    def test_register_and_get(self, toy_scenario):
        scenario, _ = toy_scenario
        assert scenario.suite == "_toysuite"
        assert "_toysuite" in suite_names()
        assert [s.name for s in scenarios("_toysuite")] == ["_toy"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("_no_such_scenario")

    def test_reregistration_overwrites(self, toy_scenario):
        @register("_toy", suite="_othersuite")
        def _toy2(spec, counters):
            return None

        assert get_scenario("_toy").suite == "_othersuite"


class TestRunner:
    def test_record_schema_and_counter_merge(self, toy_scenario):
        scenario, _ = toy_scenario
        spec = RunSpec(scenario="_toy", suite="_toysuite", backend="csr",
                       eps=0.5, seed=7, smoke=True)
        record = validate_record(run_scenario(scenario, spec))
        assert set(RECORD_KEYS) <= set(record)
        assert record["scenario"] == "_toy"
        assert record["wall_s"] >= 0
        assert record["counters"] == {"work": 3.0, "derived": 1.5}
        params = record["params"]
        assert params["backend"] == "csr"
        assert params["eps"] == 0.5
        assert params["seed"] == 7
        assert params["smoke"] is True

    def test_warmup_and_repeats_execute(self, toy_scenario):
        scenario, calls = toy_scenario
        spec = RunSpec(scenario="_toy", suite="_toysuite", repeats=3, warmup=2)
        run_scenario(scenario, spec)
        assert len(calls) == 5  # 2 warmup + 3 timed

    def test_expand_specs_sweeps_declared_backends(self, toy_scenario):
        scenario, _ = toy_scenario
        specs = expand_specs(scenario)
        assert [s.backend for s in specs] == ["adjset", "csr"]
        only = expand_specs(scenario, backend="csr")
        assert [s.backend for s in only] == ["csr"]
        # unsupported backend falls back to the scenario's native one
        fallback = expand_specs(scenario, backend="gpu")
        assert [s.backend for s in fallback] == ["adjset"]

    def test_resolved_eps_default(self):
        assert RunSpec(scenario="x", suite="y").resolved_eps() == 0.25
        assert RunSpec(scenario="x", suite="y", eps=0.5).resolved_eps() == 0.5


class TestLatency:
    """Per-update latency capture: recorder, record lifting, compare path."""

    def test_summarize_nearest_rank(self):
        from repro.bench import summarize_ns

        # nearest-rank: p50 of 1..10 is the 5th sample, p99 the 10th
        samples = [i * 1_000_000 for i in range(10, 0, -1)]
        summary = summarize_ns(samples)
        assert summary["p50"] == pytest.approx(0.005)
        assert summary["p99"] == pytest.approx(0.010)
        assert summary["max"] == pytest.approx(0.010)
        assert summary["count"] == 10.0

    def test_summarize_rejects_empty(self):
        from repro.bench import summarize_ns

        with pytest.raises(ValueError, match="no latency samples"):
            summarize_ns([])

    def test_recorder_measures_calls(self):
        from repro.bench import LatencyRecorder

        recorder = LatencyRecorder()
        for _ in range(4):
            recorder.measure(lambda: sum(range(100)))
        summary = recorder.summary()
        assert summary["count"] == 4.0
        assert 0 < summary["p50"] <= summary["p99"] <= summary["max"]

    def test_run_scenario_lifts_latency_section(self):
        @register("_lat", suite="_toysuite", description="test-only")
        def _lat(spec, counters):
            counters.add("work", 1)
            return {"latency": {"p50": 0.001, "p99": 0.002, "max": 0.003,
                                "count": 5},
                    "speedup": 7.0}

        try:
            scenario = get_scenario("_lat")
            spec = RunSpec(scenario="_lat", suite="_toysuite", smoke=True)
            record = validate_record(run_scenario(scenario, spec))
        finally:
            unregister("_lat")
        # the reserved "latency" mapping becomes a top-level record section;
        # the scalar extras still merge into the counter bag
        assert record["latency"] == {"p50": 0.001, "p99": 0.002,
                                     "max": 0.003, "count": 5.0}
        assert record["counters"] == {"work": 1.0, "speedup": 7.0}
        assert "latency" not in record["counters"]

    def test_validate_rejects_non_mapping_latency(self):
        record = {"scenario": "s", "params": {}, "wall_s": 0.1,
                  "counters": {}, "python": "3", "timestamp": "t",
                  "latency": 0.002}
        with pytest.raises(ValueError, match="latency"):
            validate_record(record)

    def _record_with_latency(self, p99):
        return [{"scenario": "s", "params": {"backend": "adjset"},
                 "wall_s": 1.0, "counters": {"p99": 123.0},
                 "latency": {"p50": p99 / 2, "p99": p99},
                 "python": "3", "timestamp": "t"}]

    def test_compare_dotted_latency_metric(self):
        from repro.bench.compare import metric_value

        old = self._record_with_latency(0.001)
        new = self._record_with_latency(0.004)
        # dotted path reads the nested section, not the "p99" counter
        assert metric_value(old[0], "latency.p99") == pytest.approx(0.001)
        rows = compare_records(old, new, fail_over=3.0, metric="latency.p99")
        assert regressions(rows) and rows[0]["ratio"] == pytest.approx(4.0)

    def test_dotted_metric_missing_section_falls_back_to_counters(self):
        from repro.bench.compare import metric_value

        record = {"scenario": "s", "params": {}, "wall_s": 1.0,
                  "counters": {"latency.p99": 9.0}, "python": "3",
                  "timestamp": "t"}
        assert metric_value(record, "latency.p99") == pytest.approx(9.0)


class TestResults:
    def _record(self, scenario="s1", backend="adjset", wall=0.5):
        return {"scenario": scenario,
                "params": {"suite": "t", "workload": "default",
                           "algorithm": "default", "eps": None,
                           "backend": backend, "seed": 0, "repeats": 1,
                           "warmup": 0, "smoke": True},
                "wall_s": wall, "counters": {"work": 1.0},
                "python": "3", "timestamp": "2026-07-29T00:00:00+00:00"}

    def test_json_round_trip(self, tmp_path):
        records = [self._record("s1"), self._record("s2", backend="csr")]
        path = write_suite(records, "tsuite", root=tmp_path)
        assert path == tmp_path / "BENCH_tsuite.json"
        loaded = load_records(path)
        assert loaded == records
        # per-scenario files carry the same records, grouped
        per = load_records(tmp_path / "results" / "s1.json")
        assert per == [records[0]]

    def test_validate_rejects_missing_keys(self):
        bad = self._record()
        del bad["counters"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_record(bad)

    def test_load_rejects_non_record_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError):
            load_records(path)


class TestCompare:
    def _records(self, wall):
        return [{"scenario": "s", "params": {"backend": "adjset"},
                 "wall_s": wall, "counters": {"oracle_calls": 10.0},
                 "python": "3", "timestamp": "t"}]

    def test_regression_flagged(self):
        rows = compare_records(self._records(1.0), self._records(1.3),
                               fail_over=1.2)
        assert regressions(rows) and rows[0]["ratio"] == pytest.approx(1.3)

    def test_within_threshold_passes(self):
        rows = compare_records(self._records(1.0), self._records(1.1),
                               fail_over=1.2)
        assert not regressions(rows)

    def test_counter_metric(self):
        old, new = self._records(1.0), self._records(1.0)
        new[0]["counters"]["oracle_calls"] = 30.0
        rows = compare_records(old, new, fail_over=1.2, metric="oracle_calls")
        assert regressions(rows) and rows[0]["ratio"] == pytest.approx(3.0)

    def test_unmatched_records_never_regress(self):
        extra = {"scenario": "other", "params": {"backend": "adjset"},
                 "wall_s": 9.0, "counters": {}, "python": "3", "timestamp": "t"}
        rows = compare_records(self._records(1.0),
                               self._records(1.0) + [extra])
        assert not regressions(rows)
        assert {"compared", "added"} == {row["status"] for row in rows}

    def test_cli_exit_codes(self, tmp_path, capsys):
        old = write_suite(self._records(1.0), "old", root=tmp_path / "a")
        new = write_suite(self._records(1.3), "new", root=tmp_path / "b")
        assert cli.main(["compare", str(old), str(new),
                         "--fail-over", "1.2"]) == 1
        assert cli.main(["compare", str(old), str(new),
                         "--fail-over", "1.5"]) == 0
        assert cli.main(["compare", str(old),
                         str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()


class TestDiscovery:
    def test_all_benchmark_modules_register(self):
        load_benchmark_modules()
        registered = {s.name for s in scenarios()}
        missing = set(ALL_SCENARIOS) - registered
        assert not missing, f"scenarios not registered: {sorted(missing)}"
        assert {"backends", "table1", "table2", "figures"} <= set(suite_names())

    def test_run_cli_requires_a_selection(self, capsys):
        assert cli.main(["run"]) == 2
        assert cli.main(["run", "--suite", "_no_such_suite"]) == 2
        capsys.readouterr()

    def test_run_list_enumerates_without_running(self, toy_scenario, capsys):
        _, calls = toy_scenario
        # bare --list enumerates everything; with a selection, just that
        assert cli.main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_SCENARIOS:
            assert name in out
        assert "selectors" in out and "workload" in out
        assert cli.main(["run", "--suite", "_toysuite", "--list"]) == 0
        out = capsys.readouterr().out
        assert "_toy" in out and "table2_dynamic" not in out
        assert not calls  # nothing was executed

    def test_run_cli_rejects_unknown_backend(self, toy_scenario, capsys):
        assert cli.main(["run", "--scenario", "_toy",
                         "--backend", "czr"]) == 2  # typo of "csr"
        assert "unknown backend" in capsys.readouterr().err

    def test_single_scenario_run_does_not_clobber_suite_file(
            self, toy_scenario, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke"]) == 0
        # labeled by scenario name, so BENCH_<suite>.json stays intact --
        # also when --suite is passed alongside --scenario
        assert (tmp_path / "BENCH__toy.json").exists()
        assert cli.main(["run", "--suite", "_toysuite",
                         "--scenario", "_toy", "--smoke"]) == 0
        assert not (tmp_path / "BENCH__toysuite.json").exists()
        capsys.readouterr()

    def test_run_cli_rejects_unknown_workload(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        # the scenario itself raises on the unknown value; that is an
        # isolated per-scenario failure (exit 1), and nothing gets written
        assert cli.main(["run", "--scenario", "backends", "--smoke",
                         "--workload", "uniform-100K"]) == 1  # wrong case
        assert "unknown backends workload" in capsys.readouterr().err
        assert not (tmp_path / "BENCH_backends.json").exists()

    def test_run_cli_rejects_undeclared_selectors(self, toy_scenario,
                                                  tmp_path, monkeypatch,
                                                  capsys):
        # _toy declares no selectors: any non-default workload/algorithm
        # would be recorded verbatim without influencing the run
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--workload", "bogus"]) == 2
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--algorithm", "bogus"]) == 2
        assert "does not interpret" in capsys.readouterr().err
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_profile_flag_writes_hotspot_reports(self, toy_scenario,
                                                 tmp_path, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                        "--profile"]) == 0
        reports = sorted(p.name for p in (tmp_path / "results").glob(
            "profile_*.txt"))
        assert reports == ["profile__toy_adjset.txt", "profile__toy_csr.txt"]
        text = (tmp_path / "results" / "profile__toy_adjset.txt").read_text()
        assert "cumulative" in text  # pstats output, sorted by cumtime
        # the top hotspots are also echoed to stdout so CI logs show them
        # without fishing the report files out of the artefacts
        out = capsys.readouterr().out
        assert "-- hotspots: _toy (backend=adjset), top 10 by cumulative " \
               "time --" in out
        assert "-- hotspots: _toy (backend=csr)" in out
        assert "cumulative" in out

    def test_backend_restricted_run_gets_suffixed_label(
            self, toy_scenario, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--backend", "csr"]) == 0
        # the csr-only record set must not overwrite BENCH__toy.json
        assert (tmp_path / "BENCH__toy_csr.json").exists()
        assert not (tmp_path / "BENCH__toy.json").exists()
        capsys.readouterr()

    def test_run_cli_resilience_flags_land_in_meta(
            self, toy_scenario, tmp_path, monkeypatch, capsys):
        """--timeout-s/--retries/--faults are recorded in the suite meta so
        a BENCH file always says under which execution policy it was made."""
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--timeout-s", "5", "--retries", "2",
                         "--faults", "seed=3"]) == 0
        with open(tmp_path / "BENCH__toy.json") as handle:
            payload = json.load(handle)
        meta = payload["meta"]
        assert meta["timeout_s"] == 5.0
        assert meta["retries"] == 2
        assert meta["fault_plan"] == {"seed": 3}
        capsys.readouterr()

    def test_run_cli_resilience_flags_off_by_default(
            self, toy_scenario, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert cli.main(["run", "--scenario", "_toy", "--smoke"]) == 0
        with open(tmp_path / "BENCH__toy.json") as handle:
            meta = json.load(handle)["meta"]
        assert "timeout_s" not in meta
        assert "retries" not in meta
        assert "fault_plan" not in meta
        capsys.readouterr()

    def test_run_cli_rejects_nonpositive_timeout(self, toy_scenario, capsys):
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--timeout-s", "0"]) == 2
        assert "--timeout-s must be > 0" in capsys.readouterr().err

    def test_run_cli_rejects_malformed_fault_spec(self, toy_scenario,
                                                  capsys):
        assert cli.main(["run", "--scenario", "_toy", "--smoke",
                         "--faults", "bogus"]) == 2
        assert "fault" in capsys.readouterr().err


# --------------------------------------------------------------- smoke gate
def test_smoke_gate_all_scenarios(tmp_path):
    """Every registered scenario stays runnable in seconds (CI smoke gate).

    Runs with ``--jobs 2`` so the multi-process execution path (worker spec
    dispatch, record merge-back, counter snapshots) is exercised on every
    tier-1 run, not just in its unit tests.
    """
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["REPRO_BENCH_OUT"] = str(tmp_path)
    # pin the hash seed: the gate asserts cross-backend record equality, and
    # an unpinned subprocess would silently retest under whatever seed the
    # host chose -- determinism failures must reproduce byte-for-byte
    env["PYTHONHASHSEED"] = "0"
    # run every MPC/CONGEST round under the serial-executor isolation
    # sanitizer (deep-copied deliveries + sender-side checksums), so a
    # program mutating an already-sent payload fails this gate today
    # instead of diverging once rounds run in a process pool
    env["REPRO_EXEC_ISOLATION"] = "1"
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "run", "--all", "--smoke",
         "--jobs", "2"],
        capture_output=True, text=True, timeout=240, env=env, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stderr + result.stdout
    records = load_records(tmp_path / "BENCH_all.json")
    by_scenario = {record["scenario"] for record in records}
    assert set(ALL_SCENARIOS) <= by_scenario
    for record in records:
        assert record["params"]["smoke"] is True
        assert record["wall_s"] >= 0
    # the backends scenario must cover both backends (acceptance criterion)
    backends = {record["params"]["backend"] for record in records
                if record["scenario"] == "backends"}
    assert backends == {"adjset", "csr"}

    # trace record/replay parity: table2_realgraph re-records the karate
    # stream from the raw edge list and fails if it drifts from the
    # committed trace fixture (benchmarks/data/karate_w40.npz); its records
    # replaying that one trace must agree between the two backends on every
    # algorithm counter (wall_s/timestamp are the only host-dependent
    # fields).
    realgraph = [record for record in records
                 if record["scenario"] == "table2_realgraph"]
    assert {r["params"]["backend"] for r in realgraph} == {"adjset", "csr"}
    by_backend = {r["params"]["backend"]: r["counters"] for r in realgraph}
    assert by_backend["adjset"] == by_backend["csr"]
    assert by_backend["adjset"]["trace_updates"] == 116.0

    # the latency scenario must emit its per-update latency section on both
    # backends, with a sane tail ordering (acceptance criterion)
    latency_records = [record for record in records
                       if record["scenario"] == "table2_latency"]
    assert {r["params"]["backend"] for r in latency_records} == \
        {"adjset", "csr"}
    for record in latency_records:
        latency = record["latency"]
        assert {"p50", "p99", "max"} <= set(latency)
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        assert record["counters"]["p99_speedup_vs_rebuild"] >= 5.0

    # the chaos drill must recover to a byte-identical end state on both
    # backends under its fixed fault plan, and report recovery latency
    # percentiles (acceptance criterion)
    chaos_records = [record for record in records
                     if record["scenario"] == "table2_chaos"]
    assert {r["params"]["backend"] for r in chaos_records} == \
        {"adjset", "csr"}
    for record in chaos_records:
        assert record["counters"]["end_state_equal"] == 1.0
        assert record["counters"]["chaos_crashes"] >= 2.0
        assert record["counters"]["chaos_restores"] >= 2.0
        latency = record["latency"]
        assert {"p50", "p99", "max"} <= set(latency)
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        # snapshot overhead must be reported and the delta-aware writer
        # must have actually reused sections (acceptance criterion)
        assert record["counters"]["chaos_checkpoint_overhead_s"] > 0
        assert record["counters"]["chaos_ckpt_sections_reused"] > 0

    # the OMv scenario runs its kernel-engine profile on both backends;
    # engine="kernel" is pinned byte-identical to "array" by the parity
    # suite, so every algorithm counter must agree across backends here
    # too (acceptance criterion)
    omv_records = [record for record in records
                   if record["scenario"] == "table2_omv"]
    assert {r["params"]["backend"] for r in omv_records} == \
        {"adjset", "csr"}
    omv_by_backend = {r["params"]["backend"]: r["counters"]
                      for r in omv_records}
    assert omv_by_backend["adjset"] == omv_by_backend["csr"]

    # ---- perf gate: wall-time regressions vs the committed baseline fail
    # loudly.  The threshold is generous (hosts differ, smoke runs are
    # seconds-scale and jobs=2 adds contention noise) -- it exists to catch
    # the 5x-class regressions a bad hot-path change introduces, not 20%
    # jitter.  Override with REPRO_BENCH_FAIL_OVER, or set it to "0" to
    # skip the gate entirely (e.g. on a known-slow CI host).
    fail_over = float(os.environ.get("REPRO_BENCH_FAIL_OVER", "3.0"))
    if fail_over > 0:
        baseline = load_records(os.path.join(REPO_ROOT, "BENCH_all.json"))
        rows = compare_records(baseline, records, fail_over=fail_over)
        # ratio alone drowns in noise on milliseconds-scale rows (a 10ms
        # scenario jitters 3x under jobs=2 contention); require the
        # regression to also be absolutely large before failing
        min_delta_s = 0.15
        bad = [r for r in regressions(rows)
               if r["new"] - r["old"] >= min_delta_s]
        assert not bad, (
            f"wall-time regression(s) vs committed BENCH_all.json "
            f"(fail-over {fail_over:g}x): "
            + ", ".join(f"{r['scenario']}[{r['backend']}] "
                        f"{r['old']:.3f}s -> {r['new']:.3f}s "
                        f"({r['ratio']:.2f}x)" for r in bad))

        # ---- latency gate: the per-update latency tail (latency.p99,
        # currently only table2_latency emits it) regresses against the
        # same committed baseline.  Same ratio threshold; the absolute
        # floor is microseconds-scale because the metric is -- a p99 that
        # triples from 20us to 60us is scheduler noise, one that jumps
        # past 2ms means an O(n) cost leaked back into the update path.
        latency_rows = compare_records(baseline, records,
                                       fail_over=fail_over,
                                       metric="latency.p99")
        min_latency_delta_s = 0.002
        bad_latency = [r for r in regressions(latency_rows)
                       if r["new"] - r["old"] >= min_latency_delta_s]
        assert not bad_latency, (
            f"latency.p99 regression(s) vs committed BENCH_all.json "
            f"(fail-over {fail_over:g}x): "
            + ", ".join(f"{r['scenario']}[{r['backend']}] "
                        f"{r['old'] * 1e3:.3f}ms -> {r['new'] * 1e3:.3f}ms "
                        f"({r['ratio']:.2f}x)" for r in bad_latency))

        # ---- checkpoint-overhead gate: the chaos drill's snapshot cost
        # (capture + delta-aware encode + disk write, summed over the run)
        # regresses against the committed baseline.  Same ratio threshold;
        # the floor is 10ms because smoke runs take a handful of snapshots
        # each costing about a millisecond -- a breach means the delta
        # writer's section reuse stopped working, not jitter.  Baselines
        # predating the metric are skipped by compare_records.
        ckpt_rows = compare_records(baseline, records,
                                    fail_over=fail_over,
                                    metric="chaos_checkpoint_overhead_s")
        min_ckpt_delta_s = 0.01
        bad_ckpt = [r for r in regressions(ckpt_rows)
                    if r["new"] - r["old"] >= min_ckpt_delta_s]
        assert not bad_ckpt, (
            f"chaos checkpoint-overhead regression(s) vs committed "
            f"BENCH_all.json (fail-over {fail_over:g}x): "
            + ", ".join(f"{r['scenario']}[{r['backend']}] "
                        f"{r['old'] * 1e3:.3f}ms -> {r['new'] * 1e3:.3f}ms "
                        f"({r['ratio']:.2f}x)" for r in bad_ckpt))


# -------------------------------------------------- static analysis gate
def test_static_analysis_gate():
    """``python -m repro.analysis --check src/repro`` stays clean.

    The determinism & contract linter (hash-order, word-accounting,
    memo-contract, repair-journal families) gates every tier-1 run; new
    algorithm code must either satisfy the rules or carry a justified
    ``# repro: allow[...]`` pragma.  The committed baseline is empty by
    policy, so any exit 1 here is a *new* finding.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--check",
         os.path.join(REPO_ROOT, "src", "repro")],
        capture_output=True, text=True, timeout=120, env=env, cwd=REPO_ROOT)
    assert result.returncode == 0, (
        "repro.analysis --check found new violations:\n"
        + result.stdout + result.stderr)


# ------------------------------------------------ determinism sanitizer
def test_hash_seed_and_jobs_sanitizer():
    """BENCH records are byte-identical across PYTHONHASHSEED and --jobs.

    Runs the table2_dynamic smoke scenario three times in subprocesses --
    baseline (PYTHONHASHSEED=0, --jobs 1), a hash-seed variant
    (PYTHONHASHSEED=1) and a worker-count variant (--jobs 2) -- and
    byte-compares the records minus the honest wall-clock fields.  This is
    the runtime complement of the static hash-order rules: it checks the
    determinism *property* the sharded-execution and compiled-kernel
    roadmap items depend on, not just the patterns that broke it before.
    """
    from repro.analysis.sanitizer import run_sanitizer

    result = run_sanitizer("table2_dynamic", seed=0, repo_root=REPO_ROOT,
                           timeout=240.0)
    assert result.ok, result.render()
    # both axes were actually compared against the baseline
    assert len(result.compared) == 2, result.render()
