"""Tests for the ORS module (Definition 7.2 / Theorem 7.4 formulas)."""

import math

import pytest

from repro.dynamic.ors import (
    akk25_update_time,
    ors_layered_graph,
    ors_lower_bound_construction,
    thm74_update_time,
    verify_ors,
)


class TestConstructions:
    def test_lower_bound_construction_is_valid_ors(self):
        graph, matchings = ors_lower_bound_construction(40, 4)
        assert len(matchings) == 5
        assert all(len(m) == 4 for m in matchings)
        assert verify_ors(graph, matchings)

    def test_lower_bound_rejects_bad_r(self):
        with pytest.raises(ValueError):
            ors_lower_bound_construction(10, 0)

    def test_layered_generator_reexported(self):
        graph, matchings = ors_layered_graph(50, 4, 3, seed=1)
        assert verify_ors(graph, matchings)


class TestFormulas:
    def test_thm74_polynomial_in_inverse_eps(self):
        # for fixed k, halving eps multiplies the bound by a constant power
        n, k, ors = 10 ** 4, 2, 10.0
        t1 = thm74_update_time(n, 0.25, k, ors)
        t2 = thm74_update_time(n, 0.125, k, ors)
        t3 = thm74_update_time(n, 0.0625, k, ors)
        assert t2 / t1 == pytest.approx(t3 / t2, rel=1e-9)  # constant ratio = polynomial

    def test_akk25_exponential_in_inverse_eps(self):
        n, k, ors = 10 ** 4, 2, 10.0
        r1 = akk25_update_time(n, 0.25, k, ors) / thm74_update_time(n, 0.25, k, ors)
        r2 = akk25_update_time(n, 0.125, k, ors) / thm74_update_time(n, 0.125, k, ors)
        assert r2 > r1 * 10  # the gap blows up as eps shrinks

    def test_improvement_direction(self):
        # Theorem 7.4 never exceeds the AKK25 bound on the same parameters
        for eps in (0.25, 0.125, 0.0625):
            for k in (1, 2, 3):
                ours = thm74_update_time(10 ** 5, eps, k, 50.0)
                theirs = akk25_update_time(10 ** 5, eps, k, 50.0)
                # the two coincide at k/eps = 4 up to float rounding, hence the slack
                assert ours <= theirs * (1 + 1e-9)

    def test_larger_k_trades_n_for_eps(self):
        n, eps, ors = 10 ** 6, 0.25, 1.0
        # raising k lowers the n exponent contribution
        t_k1 = thm74_update_time(n, eps, 1, ors)
        t_k3 = thm74_update_time(n, eps, 3, ors)
        assert t_k3 < t_k1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            thm74_update_time(100, 1.5, 1, 1.0)
        with pytest.raises(ValueError):
            thm74_update_time(100, 0.25, 0, 1.0)
        with pytest.raises(ValueError):
            akk25_update_time(100, 0.0, 1, 1.0)

    def test_akk25_overflow_guard(self):
        assert math.isinf(akk25_update_time(10 ** 4, 0.001, 3, 1.0))
