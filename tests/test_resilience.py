"""Tests for the fault-injection layer (``repro.resilience``).

Covers the deterministic :class:`FaultPlan` (site independence, hash-seed
independence, picklability, the CLI parse grammar, the per-site crash
bound), the retry/backoff policy, the SIGALRM deadline guard, and message
faults at both simulator exchange barriers -- including the CONGEST
duplicate-as-stale-redelivery model, final-round expiry, and coexistence
with the :class:`~repro.exec.isolation.IsolationGuard` sanitizer.
"""

import pickle
import threading
import time

import pytest

from repro.congest.simulator import CongestSimulator
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.mpc.simulator import MPCSimulator
from repro.resilience import FaultPlan, RetryPolicy, TaskTimeout, deadline
from repro.resilience.faults import DELIVER, DROP, DUPLICATE
from repro.resilience.retry import call_with_retries
from repro.resilience.timeouts import can_enforce_deadlines


# ------------------------------------------------------------------ FaultPlan
class TestFaultPlan:
    def test_decisions_are_deterministic_across_instances(self):
        a = FaultPlan(seed=7, task_crash_rate=0.5, drop_rate=0.3,
                      duplicate_rate=0.3, reorder_rate=0.5)
        b = FaultPlan(seed=7, task_crash_rate=0.5, drop_rate=0.3,
                      duplicate_rate=0.3, reorder_rate=0.5)
        for site in ("s1:adjset", "s1:csr", "s2:adjset"):
            for attempt in range(3):
                assert a.crashes_task(site, attempt) == \
                    b.crashes_task(site, attempt)
        for rnd in range(4):
            for sender in range(4):
                for dest in range(4):
                    assert a.message_fault("mpc", rnd, sender, dest, 0) == \
                        b.message_fault("mpc", rnd, sender, dest, 0)
        assert a.permutation("mpc", 1, 2, 6) == b.permutation("mpc", 1, 2, 6)

    def test_different_seeds_differ_somewhere(self):
        a = FaultPlan(seed=0, drop_rate=0.5)
        b = FaultPlan(seed=1, drop_rate=0.5)
        decisions_a = [a.message_fault("mpc", 0, s, 0, 0) for s in range(64)]
        decisions_b = [b.message_fault("mpc", 0, s, 0, 0) for s in range(64)]
        assert decisions_a != decisions_b

    def test_sites_are_independent(self):
        # one site's decision never depends on which other sites were asked
        plan = FaultPlan(seed=3, task_crash_rate=0.5)
        before = plan.crashes_task("x:adjset", 0)
        for i in range(50):
            plan.crashes_task(f"other-{i}", 0)
        assert plan.crashes_task("x:adjset", 0) == before

    def test_crash_bound_guarantees_progress(self):
        plan = FaultPlan(seed=0, task_crash_rate=1.0, update_crash_rate=1.0,
                         max_crashes_per_site=3)
        assert [plan.crashes_task("s", a) for a in range(5)] == \
            [True, True, True, False, False]
        assert [plan.crashes_update(9, a) for a in range(5)] == \
            [True, True, True, False, False]

    def test_crash_updates_fire_on_first_visit_only(self):
        plan = FaultPlan(seed=0, crash_updates=(5,))
        assert plan.crashes_update(5, 0)
        assert not plan.crashes_update(5, 1)
        assert not plan.crashes_update(4, 0)

    def test_rates_partition_decisions(self):
        drop_all = FaultPlan(seed=0, drop_rate=1.0)
        dup_all = FaultPlan(seed=0, duplicate_rate=1.0)
        neither = FaultPlan(seed=0)
        assert drop_all.message_fault("mpc", 0, 0, 1, 0) == DROP
        assert dup_all.message_fault("mpc", 0, 0, 1, 0) == DUPLICATE
        assert neither.message_fault("mpc", 0, 0, 1, 0) == DELIVER

    def test_validation(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(task_crash_rate=1.5)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=0.6, duplicate_rate=0.6)
        with pytest.raises(ValueError, match="task_delay_s"):
            FaultPlan(task_delay_s=-1)

    def test_plan_is_frozen_and_picklable(self):
        plan = FaultPlan(seed=5, task_crash_rate=0.25, crash_updates=(1, 2))
        with pytest.raises(dataclasses_error()):
            plan.seed = 6
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.crashes_task("s", 0) == plan.crashes_task("s", 0)

    def test_parse_round_trips_cli_spec(self):
        plan = FaultPlan.parse(
            "seed=7, task_crash_rate=0.5, crash_updates=3+9, "
            "max_crashes_per_site=2")
        assert plan.seed == 7
        assert plan.task_crash_rate == 0.5
        assert plan.crash_updates == (3, 9)
        assert plan.max_crashes_per_site == 2

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse("seed")

    def test_describe_lists_only_non_defaults_plus_seed(self):
        assert FaultPlan(seed=4).describe() == {"seed": 4}
        described = FaultPlan(seed=4, drop_rate=0.5,
                              crash_updates=(2,)).describe()
        assert described == {"seed": 4, "drop_rate": 0.5,
                             "crash_updates": [2]}

    def test_any_task_faults(self):
        assert not FaultPlan().any_task_faults()
        assert FaultPlan(task_crash_rate=0.1).any_task_faults()
        assert not FaultPlan(task_delay_rate=1.0).any_task_faults()  # no delay_s
        assert FaultPlan(task_delay_rate=1.0, task_delay_s=0.1).any_task_faults()


def dataclasses_error():
    import dataclasses

    return dataclasses.FrozenInstanceError


# ---------------------------------------------------------------- RetryPolicy
class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_retries=4, base_s=1.0, multiplier=2.0,
                             cap_s=5.0)
        assert list(policy.schedule()) == [1.0, 2.0, 4.0, 5.0]
        assert policy.attempts == 5
        assert policy.retryable(4) and not policy.retryable(5)

    def test_zero_retries_never_retries(self):
        policy = RetryPolicy()
        assert policy.attempts == 1
        assert not policy.retryable(1)
        assert list(policy.schedule()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=-0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=1, multiplier=0.5)

    def test_call_with_retries_retries_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky(failures):
            attempts.append(failures)
            if failures < 2:
                raise RuntimeError("boom")
            return "done"

        result = call_with_retries(
            flaky, RetryPolicy(max_retries=3, base_s=0.5),
            retry_on=(RuntimeError,), sleep=sleeps.append)
        assert result == "done"
        assert attempts == [0, 1, 2]
        assert sleeps == [0.5, 1.0]

    def test_call_with_retries_exhausts_and_raises(self):
        def always(failures):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            call_with_retries(always, RetryPolicy(max_retries=1, base_s=0.0),
                              retry_on=(RuntimeError,), sleep=lambda s: None)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def typed(failures):
            calls.append(failures)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            call_with_retries(typed, RetryPolicy(max_retries=5, base_s=0.0),
                              retry_on=(RuntimeError,), sleep=lambda s: None)
        assert calls == [0]


# ------------------------------------------------------------------ deadlines
class TestDeadline:
    def test_deadline_fires_on_overrun(self):
        if not can_enforce_deadlines():  # pragma: no cover - platform guard
            pytest.skip("SIGALRM not available on this platform/thread")
        with pytest.raises(TaskTimeout, match="slow thing"):
            with deadline(0.05, label="slow thing"):
                time.sleep(2.0)

    def test_deadline_noop_when_fast_enough(self):
        with deadline(5.0, label="fast") as enforced:
            value = 42
        assert value == 42
        assert enforced == can_enforce_deadlines()

    def test_deadline_none_disables(self):
        with deadline(None, label="off") as enforced:
            assert enforced is False

    def test_deadline_nonpositive_disables(self):
        # the CLI rejects --timeout-s <= 0; the guard itself degrades to off
        with deadline(0.0, label="x") as enforced:
            assert enforced is False

    def test_deadline_off_main_thread_degrades_to_unenforced(self):
        seen = {}

        def body():
            with deadline(0.05, label="threaded") as enforced:
                seen["enforced"] = enforced
                time.sleep(0.15)
                seen["survived"] = True

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert seen == {"enforced": False, "survived": True}

    def test_nested_deadlines_restore_outer_timer(self):
        if not can_enforce_deadlines():  # pragma: no cover - platform guard
            pytest.skip("SIGALRM not available on this platform/thread")
        with pytest.raises(TaskTimeout, match="outer"):
            with deadline(0.3, label="outer"):
                with deadline(5.0, label="inner"):
                    time.sleep(0.05)  # inner exits cleanly
                time.sleep(2.0)      # outer must still be armed


# ------------------------------------------------------- MPC message faults
def _ring_graph(n):
    g = Graph(n, backend="adjset")
    for v in range(n):
        g.add_edge(v, (v + 1) % n)
    return g


def _mpc_ping(machine_id, storage):
    return [((machine_id + 1) % 2, (machine_id, 7))]


class TestMPCFaults:
    def test_drop_removes_messages_and_counts(self):
        sim = MPCSimulator(num_machines=2, memory_per_machine=64,
                           fault_plan=FaultPlan(seed=1, drop_rate=1.0))
        sim.round(_mpc_ping)
        assert sim.counters.get("mpc_faults_dropped") == 2.0
        assert all(not s for s in sim.storage)

    def test_duplicate_delivers_twice_same_round(self):
        sim = MPCSimulator(num_machines=2, memory_per_machine=64,
                           fault_plan=FaultPlan(seed=1, duplicate_rate=1.0))
        sim.round(_mpc_ping)
        assert sim.counters.get("mpc_faults_duplicated") == 2.0
        assert all(len(s) == 2 for s in sim.storage)

    def test_reorder_is_deterministic(self):
        def fan_out(machine_id, storage):
            if machine_id == 0:
                return [(1, (i,)) for i in range(6)]
            return []

        def run():
            sim = MPCSimulator(num_machines=2, memory_per_machine=64,
                               fault_plan=FaultPlan(seed=9, reorder_rate=1.0))
            sim.round(fan_out)
            order = list(sim.storage[1])
            count = sim.counters.get("mpc_faults_reordered")
            sim.close()
            return order, count

        first, count = run()
        again, _ = run()
        assert first == again
        assert count == 1.0
        assert first != [(i,) for i in range(6)]  # actually permuted
        assert sorted(first) == [(i,) for i in range(6)]  # nothing lost

    def test_no_plan_leaves_counters_untouched(self):
        sim = MPCSimulator(num_machines=2, memory_per_machine=64)
        sim.round(_mpc_ping)
        assert "mpc_faults_dropped" not in sim.counters.as_dict()

    def test_faults_coexist_with_isolation_guard(self):
        sim = MPCSimulator(num_machines=2, memory_per_machine=64,
                           isolation=True,
                           fault_plan=FaultPlan(seed=1, duplicate_rate=1.0))
        sim.round(_mpc_ping)
        sim.round(_mpc_ping)
        sim.close()  # guard.verify() must not trip over injected duplicates
        assert sim.counters.get("mpc_faults_duplicated") == 4.0


# --------------------------------------------------- CONGEST message faults
def _congest_broadcast(graph):
    def program(v, state, inbox):
        state.setdefault("inboxes", []).append(dict(inbox))
        return {nbr: (v,) for nbr in graph.neighbors(v)}

    return program


class TestCongestFaults:
    def test_drop_empties_inboxes_but_charges_messages(self):
        g = _ring_graph(4)
        sim = CongestSimulator(g, fault_plan=FaultPlan(seed=1, drop_rate=1.0))
        sim.round(_congest_broadcast(g))
        assert sim.counters.get("congest_faults_dropped") == 8.0
        assert all(not inbox for inbox in sim._inboxes)
        # the cost model still charges what the programs sent
        assert sim.counters.get("congest_messages") == 8.0
        sim.close()

    def test_duplicate_redelivers_stale_copy_next_round(self):
        g = _ring_graph(4)
        sim = CongestSimulator(g, fault_plan=FaultPlan(seed=1,
                                                       duplicate_rate=1.0))
        program = _congest_broadcast(g)
        sim.round(program)
        assert sim.counters.get("congest_faults_duplicated") == 8.0
        # copies are in flight, not yet visible
        assert all(len(inbox) == 2 for inbox in sim._inboxes)
        sim.round(program)
        assert sim.counters.get("congest_faults_redelivered") == 8.0
        # fresh same-sender messages overwrite every stale copy
        assert all(len(inbox) == 2 for inbox in sim._inboxes)
        sim.close()

    def test_final_round_duplicates_expire_at_close(self):
        g = _ring_graph(4)
        sim = CongestSimulator(g, fault_plan=FaultPlan(seed=1,
                                                       duplicate_rate=1.0))
        sim.round(_congest_broadcast(g))
        sim.close()
        assert sim.counters.get("congest_faults_expired") == 8.0
        assert not sim._delayed

    def test_stale_copy_loses_to_fresh_message(self):
        # vertex 0 sends round-stamped payloads; under duplication the copy
        # of round r must never shadow the round r+1 original
        g = _ring_graph(4)
        sim = CongestSimulator(g, fault_plan=FaultPlan(seed=3,
                                                       duplicate_rate=1.0))
        rounds = {"i": 0}

        def stamped(v, state, inbox):
            state["last_seen"] = dict(inbox)
            return {nbr: (v, rounds["i"]) for nbr in g.neighbors(v)}

        sim.round(stamped)
        rounds["i"] = 1
        sim.round(stamped)
        # after round 2 every inbox holds round-1 payloads, not stale round-0
        for inbox in sim._inboxes:
            assert {payload[1] for payload in inbox.values()} == {1}
        sim.close()

    def test_reorder_permutes_inbox_iteration_order(self):
        def run():
            g = _ring_graph(8)
            sim = CongestSimulator(g, fault_plan=FaultPlan(seed=5,
                                                           reorder_rate=1.0))
            sim.round(_congest_broadcast(g))
            orders = [list(inbox) for inbox in sim._inboxes]
            count = sim.counters.get("congest_faults_reordered")
            sim.close()
            return orders, count

        first, count = run()
        again, _ = run()
        assert first == again
        assert count > 0

    def test_faults_coexist_with_isolation_guard(self):
        g = _ring_graph(4)
        sim = CongestSimulator(g, isolation=True,
                               fault_plan=FaultPlan(seed=1,
                                                    duplicate_rate=1.0))
        program = _congest_broadcast(g)
        sim.round(program)
        sim.round(program)
        sim.close()  # sender-side digests must survive injected duplication
        assert sim.counters.get("congest_faults_duplicated") == 16.0

    def test_no_plan_keeps_historic_delivery(self):
        g = _ring_graph(4)
        sim = CongestSimulator(g)
        sim.round(_congest_broadcast(g))
        assert all(len(inbox) == 2 for inbox in sim._inboxes)
        assert "congest_faults_dropped" not in sim.counters.as_dict()
        sim.close()
