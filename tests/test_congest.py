"""Tests for the CONGEST substrate and the Corollary A.2 instantiation."""

import pytest

from repro.graph.generators import erdos_renyi, path_graph, cycle_graph
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.congest.simulator import CongestSimulator, MessageTooLarge
from repro.congest.matching_congest import CongestMatchingOracle, congest_approx_matching
from repro.congest.boost_congest import congest_boosted_matching


class TestSimulator:
    def test_messages_only_along_edges(self):
        g = path_graph(3)
        sim = CongestSimulator(g)

        def program(v, state, inbox):
            return {2: ("hi",)} if v == 0 else {}

        with pytest.raises(ValueError):
            sim.round(program)

    def test_message_size_limit(self):
        g = path_graph(2)
        sim = CongestSimulator(g, strict=True)

        def program(v, state, inbox):
            return {1 - v: tuple(range(10))}

        with pytest.raises(MessageTooLarge):
            sim.round(program)

    def test_round_delivery_and_counting(self):
        g = path_graph(2)
        counters = Counters()
        sim = CongestSimulator(g, counters=counters)
        received = {}

        def send(v, state, inbox):
            return {1 - v: ("ping", v)}

        def recv(v, state, inbox):
            received[v] = dict(inbox)
            return {}

        sim.round(send)
        sim.round(recv)
        assert counters.get("congest_rounds") == 2
        assert counters.get("congest_messages") == 2
        assert received[0][1] == ("ping", 1)

    def test_component_aggregation_charge(self):
        g = path_graph(4)
        counters = Counters()
        sim = CongestSimulator(g, counters=counters)
        sim.charge_component_aggregation(5)
        assert counters.get("congest_rounds") == 10


class TestCongestMatching:
    def test_two_approximation(self):
        for seed in range(3):
            g = erdos_renyi(40, 0.1, seed=seed)
            sim = CongestSimulator(g, counters=Counters())
            edges = congest_approx_matching(g, sim, seed=seed)
            m = Matching(g.n, edges)
            m.validate(g)
            assert 2 * m.size >= maximum_matching_size(g)

    def test_odd_cycle(self):
        g = cycle_graph(7)
        sim = CongestSimulator(g)
        edges = congest_approx_matching(g, sim, seed=1)
        m = Matching(g.n, edges)
        m.validate(g)
        assert 2 * m.size >= 3

    def test_oracle_counts_rounds(self):
        counters = Counters()
        oracle = CongestMatchingOracle(counters=counters, seed=2)
        g = erdos_renyi(30, 0.15, seed=2)
        edges = oracle.find_matching(g)
        Matching(g.n, edges).validate(g)
        assert counters.get("congest_rounds") > 0


class TestBoostedCongest:
    def test_corollary_a2_quality_and_accounting(self):
        g = erdos_renyi(40, 0.1, seed=5)
        m, counters = congest_boosted_matching(g, 0.25, seed=5)
        m.validate(g)
        ok, ratio = certify_approximation(g, m, 0.25)
        assert ok, ratio
        assert counters.get("oracle_calls") > 0
        # aggregation rounds reflect the extra poly(1/eps) CONGEST factor
        assert counters.get("congest_aggregation_rounds") > 0
        assert counters.get("congest_rounds") >= counters.get("congest_aggregation_rounds")
