"""Parity suite: the three phase-engine tiers against each other.

The phase-engine hot core has three implementations behind the
``ParameterProfile.engine`` seam: ``"reference"`` (scalar loops),
``"array"`` (vectorized candidate generation over the PhaseState array
mirrors, the default) and ``"kernel"`` (the array tier with packed-bitset
word-parallel sweeps from :mod:`repro.core.kernels` where a packed
adjacency is available).  All walk candidates in the same deterministic
key-sorted order -- a packed AND/ANDN sweep reads survivors in ascending
bit order, exactly the order the scalar walk tests them -- so seeded runs
must be *byte-identical*: same matchings, same counters, same epoch
boundaries.  These property-style tests pin that equivalence on seeded
random graphs and update streams, and for the kernel tier across the full
graph-backend x repair-mode grid; any divergence means the array mirrors
went stale, a mask dropped/added a candidate, or a packed view drifted
from the structure lists it shadows.
"""

import dataclasses
import random

import pytest

from repro.core.boosting import BoostingFramework
from repro.core.config import ParameterProfile
from repro.core.dynamic_boosting import WeakOracleBoostingFramework
from repro.core.operations import apply_augmentations
from repro.core.phase import DirectDriver, run_phase
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.offline import OfflineDynamicMatching
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle
from repro.graph.generators import erdos_renyi
from repro.workloads import planted_matching_churn, sliding_window
from repro.instrumentation.counters import Counters
from repro.matching.greedy import greedy_maximal_matching

EPS = 0.25

ARRAY = ParameterProfile.practical(EPS)
REFERENCE = dataclasses.replace(ARRAY, engine="reference")
KERNEL = dataclasses.replace(ARRAY, engine="kernel")
PROFILES = (ARRAY, REFERENCE, KERNEL)


def mates(matching):
    return [matching.mate(v) for v in range(matching.n)]


class TestPhaseParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_direct_driver_single_phase(self, seed):
        graph = erdos_renyi(40, 0.12, seed=seed)
        base = greedy_maximal_matching(graph)
        results = []
        for profile in PROFILES:
            matching = base.copy()
            counters = Counters()
            records = run_phase(graph, matching, profile, h=0.5,
                                driver=DirectDriver(random.Random(seed)),
                                counters=counters, check_invariants=True)
            apply_augmentations(matching, records)
            results.append((mates(matching), counters.as_dict(),
                            [(r.vertices, sorted(r.new_edges)) for r in records]))
        for other in results[1:]:
            assert other == results[0]

    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_boosting_framework(self, seed):
        graph = erdos_renyi(36, 0.12, seed=seed)
        results = []
        for profile in PROFILES:
            counters = Counters()
            framework = BoostingFramework(EPS, profile=profile,
                                          counters=counters, seed=seed)
            matching = framework.run(graph)
            results.append((mates(matching), counters.as_dict()))
        for other in results[1:]:
            assert other == results[0]

    @pytest.mark.parametrize("seed", range(3))
    def test_weak_oracle_framework(self, seed):
        graph = erdos_renyi(30, 0.15, seed=seed)
        results = []
        for profile in PROFILES:
            counters = Counters()
            framework = WeakOracleBoostingFramework(
                EPS, GreedyInducedWeakOracle(graph, seed=seed),
                profile=profile, counters=counters, seed=seed)
            matching = framework.run(graph)
            results.append((mates(matching), counters.as_dict()))
        for other in results[1:]:
            assert other == results[0]


class TestDynamicParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_fully_dynamic_stream(self, seed):
        stream = planted_matching_churn(8, rounds=2, seed=seed)
        n, updates = stream.n, stream
        results = []
        for profile in PROFILES:
            counters = Counters()
            alg = FullyDynamicMatching(n, EPS, profile=profile,
                                       counters=counters, seed=seed)
            for upd in updates:
                alg.update(upd)
            results.append((mates(alg.current_matching()), counters.as_dict()))
        for other in results[1:]:
            assert other == results[0]

    @pytest.mark.parametrize("seed", range(3))
    def test_offline_stream_sizes_and_epochs(self, seed):
        updates = sliding_window(18, 60, window=16, seed=seed)
        results = []
        for profile in PROFILES:
            counters = Counters()
            alg = OfflineDynamicMatching(18, EPS, profile=profile,
                                         counters=counters, seed=seed)
            sizes = alg.run(updates)
            results.append((sizes, alg.plan_epochs(updates),
                            counters.as_dict()))
        for other in results[1:]:
            assert other == results[0]


class TestKernelTierGrid:
    """engine="kernel" vs "array" across graph backends and repair modes.

    The maintainer path is where the packed views earn their keep -- the
    incremental repair context patches packed adjacency rows in place while
    the rebuild mode recompiles them wholesale -- so the full backend x
    repair grid is pinned here, comparing the complete checkpoint state
    (mates, canonical edges, counters, RNG streams, rebuild schedule).
    """

    @pytest.mark.parametrize("backend", ["adjset", "csr"])
    @pytest.mark.parametrize("repair", ["rebuild", "incremental"])
    @pytest.mark.parametrize("seed", range(2))
    def test_fully_dynamic_state_identical(self, backend, repair, seed):
        stream = planted_matching_churn(8, rounds=2, seed=seed)
        n, updates = stream.n, stream
        states = []
        for engine in ("array", "kernel"):
            profile = dataclasses.replace(ARRAY, engine=engine,
                                          repair=repair)
            alg = FullyDynamicMatching(n, EPS, profile=profile,
                                       counters=Counters(), seed=seed,
                                       backend=backend)
            for upd in updates:
                alg.update(upd)
            state = alg.checkpoint_state()
            # the engine name itself is the only field allowed to differ
            state.pop("profile")
            states.append(state)
        assert states[0] == states[1]


class TestWarmStart:
    def test_warm_rebuild_work_at_most_cold(self):
        """A warm-started rebuild never reports more work than a cold one."""
        graph = erdos_renyi(40, 0.12, seed=3)

        cold_counters = Counters()
        cold = WeakOracleBoostingFramework(
            EPS, GreedyInducedWeakOracle(graph, seed=3),
            counters=cold_counters, seed=3)
        matching = cold.run(graph)

        warm_counters = Counters()
        warm = WeakOracleBoostingFramework(
            EPS, GreedyInducedWeakOracle(graph, seed=3),
            counters=warm_counters, seed=3)
        warm_matching = warm.run(graph, initial=matching, warm_start=True)

        assert warm_matching.size >= matching.size
        assert warm_counters.get("warm_rebuilds") == 1
        for key in ("phases", "pass_bundles", "weak_oracle_calls"):
            assert warm_counters.get(key) <= cold_counters.get(key), key

    def test_warm_start_scales_are_skipped(self):
        """Warm runs execute only the finest scales' phase schedules."""
        graph = erdos_renyi(30, 0.2, seed=4)
        base = WeakOracleBoostingFramework(
            EPS, GreedyInducedWeakOracle(graph, seed=4), seed=4)
        matching = base.run(graph)

        counters = Counters()
        warm = WeakOracleBoostingFramework(
            EPS, GreedyInducedWeakOracle(graph, seed=4),
            counters=counters, seed=4)
        warm.run(graph, initial=matching, warm_start=True)
        # at most 2 scales x (phases until 2 stagnant ones) -- far below the
        # full schedule; the bound is loose on purpose (sampling noise)
        max_phases = 2 * (2 + matching.size)
        assert counters.get("phases") <= max_phases
