"""Tests for the [MMSS25] semi-streaming algorithm (repro.core.streaming)."""

import pytest

from repro.graph.generators import disjoint_paths, erdos_renyi
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.streaming import semi_streaming_matching


class TestQuality:
    def test_quarter_approximation_on_suite(self, medium_graphs):
        eps = 0.25
        for name, g in medium_graphs:
            m = semi_streaming_matching(g, eps, seed=1)
            m.validate(g)
            ok, ratio = certify_approximation(g, m, eps)
            assert ok, f"{name}: ratio {ratio}"

    def test_eighth_approximation_on_hard_paths(self):
        eps = 1 / 8
        g = disjoint_paths(5, 9)
        m = semi_streaming_matching(g, eps, seed=2, check_invariants=True)
        ok, ratio = certify_approximation(g, m, eps)
        assert ok, ratio

    def test_small_graphs_exactly(self, small_graphs):
        # with eps = 1/8 and tiny graphs the algorithm should be optimal
        for name, g in small_graphs:
            m = semi_streaming_matching(g, 1 / 8, seed=0, check_invariants=True)
            m.validate(g)
            assert m.size >= maximum_matching_size(g) * 8 / 9, name


class TestMechanics:
    def test_empty_graph(self):
        m = semi_streaming_matching(Graph(5), 0.25)
        assert m.size == 0

    def test_counts_passes(self):
        g = erdos_renyi(40, 0.1, seed=5)
        counters = Counters()
        semi_streaming_matching(g, 0.25, seed=1, counters=counters)
        assert counters.get("passes") >= 3
        assert counters.get("phases") >= 1

    def test_respects_given_profile(self):
        g = erdos_renyi(30, 0.1, seed=6)
        profile = ParameterProfile.practical(0.25, max_phase_cap=2, max_bundle_cap=3)
        counters = Counters()
        semi_streaming_matching(g, 0.25, profile=profile, seed=1, counters=counters)
        # per scale at most 2 phases, each with at most 3 pass-bundles
        assert counters.get("pass_bundles") <= len(profile.scales) * 2 * 3

    def test_deterministic_given_seed(self):
        g = erdos_renyi(40, 0.1, seed=7)
        a = semi_streaming_matching(g, 0.25, seed=11)
        b = semi_streaming_matching(g, 0.25, seed=11)
        assert a == b

    def test_never_returns_invalid_matching(self, small_graphs):
        for name, g in small_graphs:
            m = semi_streaming_matching(g, 0.5, seed=3)
            m.validate(g)
