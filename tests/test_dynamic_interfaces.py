"""Tests for the Problem 1 interface (Section 7.2)."""

import pytest

from repro.graph.dynamic_graph import Update
from repro.workloads import insertion_only
from repro.instrumentation.counters import Counters
from repro.dynamic.interfaces import Problem1Instance
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle


def make_instance(n=20, q=3, alpha=0.1, delta=0.05):
    counters = Counters()
    inst = Problem1Instance(
        n=n,
        oracle_factory=lambda g: GreedyInducedWeakOracle(g, seed=0),
        q=q, lam=0.5, delta=delta, alpha=alpha,
        counters=counters)
    return inst


class TestChunks:
    def test_chunk_size_is_alpha_n(self):
        inst = make_instance(n=20, alpha=0.1)
        assert inst.chunk_size == 2

    def test_apply_chunk_enforces_size(self):
        inst = make_instance()
        with pytest.raises(ValueError):
            inst.apply_chunk([Update.insert(0, 1)])

    def test_chunks_from_pads(self):
        inst = make_instance(n=20, alpha=0.1)
        updates = insertion_only(20, 5, seed=1)
        chunks = list(inst.iter_chunks(updates))
        assert all(len(c) == inst.chunk_size for c in chunks)
        for chunk in chunks:
            inst.apply_chunk(chunk)
        assert inst.graph.m == 5
        assert inst.counters.get("p1_updates") == len(chunks) * inst.chunk_size

    def test_graph_starts_empty(self):
        inst = make_instance()
        assert inst.graph.m == 0


class TestQueries:
    def test_query_limit_per_chunk(self):
        inst = make_instance(q=2)
        chunk = next(inst.iter_chunks(insertion_only(20, 2, seed=2)))
        inst.apply_chunk(chunk)
        inst.query(list(range(20)))
        inst.query(list(range(20)))
        with pytest.raises(RuntimeError):
            inst.query(list(range(20)))
        # a new chunk resets the budget
        inst.apply_chunk([Update.empty()] * inst.chunk_size)
        inst.query(list(range(20)))

    def test_query_answers_follow_definition61(self):
        inst = make_instance(n=30, alpha=0.2, q=5)
        updates = insertion_only(30, 40, seed=3)
        for chunk in inst.iter_chunks(updates):
            inst.apply_chunk(chunk)
        result = inst.query(list(range(30)))
        if result is not None:
            used = set()
            for u, v in result:
                assert inst.graph.has_edge(u, v)
                assert u not in used and v not in used
                used.update((u, v))
        assert inst.counters.get("p1_queries") == 1
        assert inst.counters.get("p1_query_work") == 30

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            Problem1Instance(10, lambda g: GreedyInducedWeakOracle(g),
                             q=1, lam=0.5, delta=0.1, alpha=0.0)
