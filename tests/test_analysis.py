"""Tests for the determinism & contract linter (``repro.analysis``).

Per rule family: a planted positive fixture (the acceptance criterion --
every family must *detect*), a negative that idiomatic code stays clean,
and a pragma-suppressed variant.  Plus the pragma grammar/hygiene, the
line-number-free fingerprints, the baseline add/remove flows, the CLI exit
codes, the JSON report schema round-trip, and the runtime
``@invalidates`` registry the memo-contract family reads.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    findings_from_report,
    from_findings,
    load_baseline,
    render_json,
    save_baseline,
    validate_report,
)
from repro.analysis.baseline import stale_fingerprints
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import find_repo_root
from repro.analysis.sanitizer import (
    canonical_bytes,
    compare_record_sets,
    normalize_record,
    run_sanitizer,
)
from repro.utils.contracts import (
    declared_hot_paths,
    declared_mutators,
    hot_path,
    invalidates,
    is_hot_path,
)


def plant(tmp_path, rel, text):
    """Write a fixture module under a synthetic ``repro`` package root.

    ``module_name_for`` anchors at the last ``repro`` path component, so
    ``<tmp>/repro/core/fx.py`` is analyzed as module ``repro.core.fx`` --
    fixtures land in whichever package a rule scopes to.
    """
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def lint(tmp_path, *, baseline=None):
    return analyze_paths([tmp_path], baseline=baseline, root=tmp_path)


def new_rules(report):
    return {f.rule for f in report.new_findings}


# --------------------------------------------------------------- hash-order
class TestHashOrderFamily:
    def test_set_iteration_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        assert "set-iteration" in new_rules(lint(tmp_path))

    def test_sorted_iteration_is_clean(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in sorted(s):
                    print(v)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_list_materialization_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f():
                s = {1, 2, 3}
                return list(s)
        """)
        assert "set-iteration" in new_rules(lint(tmp_path))

    def test_set_minmax_and_pop_detected(self, tmp_path):
        plant(tmp_path, "matching/fx.py", """\
            def f():
                s = set((1, 2))
                lo = min(s)
                return lo, s.pop()
        """)
        rules = new_rules(lint(tmp_path))
        assert {"set-minmax", "set-pop"} <= rules

    def test_id_order_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(items):
                return sorted(items, key=id)
        """)
        assert "id-order" in new_rules(lint(tmp_path))

    def test_dict_views_and_counting_are_clean(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set, d: dict):
                for k in d:
                    print(k)
                return len(s), sum(s), sorted(s)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_algorithm_packages(self, tmp_path):
        # identical offending code outside core/dynamic/mpc/congest/
        # matching/graph is out of scope (report tooling, utils)
        plant(tmp_path, "utils/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_unseeded_random_detected_everywhere_but_seeding(self, tmp_path):
        plant(tmp_path, "bench/fx.py", """\
            import random

            def f():
                return random.random()
        """)
        plant(tmp_path, "utils/seeding.py", """\
            import random

            def f():
                return random.random()
        """)
        report = lint(tmp_path)
        offenders = {f.path for f in report.new_findings
                     if f.rule == "unseeded-random"}
        assert any(p.endswith("bench/fx.py") for p in offenders)
        assert not any(p.endswith("seeding.py") for p in offenders)

    def test_np_default_rng_is_clean_module_draw_is_not(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            import numpy as np

            def good(seed):
                return np.random.default_rng(seed)

            def bad():
                return np.random.rand(3)
        """)
        report = lint(tmp_path)
        hits = [f for f in report.new_findings if f.rule == "unseeded-random"]
        assert len(hits) == 1
        assert "rand" in hits[0].context


# ---------------------------------------------------------- word-accounting
class TestWordAccountingFamily:
    def test_unsized_send_path_detected(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def send(self, dest, payload):
                    self.storage[dest].append(payload)
        """)
        assert "word-accounting-bypass" in new_rules(lint(tmp_path))

    def test_funnel_reference_satisfies_contract(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            class Sim:
                def send(self, dest, payload):
                    self._check_size(payload)
                    self.inboxes[dest].append(payload)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_counter_charge_without_funnel_detected(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def settle(self, n):
                    self.counters.add("mpc_messages", n)
        """)
        assert "word-accounting-bypass" in new_rules(lint(tmp_path))

    def test_init_allocation_is_exempt(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def __init__(self, n):
                    self.storage = [[] for _ in range(n)]
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_mpc_and_congest(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            class NotASim:
                def stash(self, payload):
                    self.storage.append(payload)
        """)
        assert new_rules(lint(tmp_path)) == set()


# ------------------------------------------------------------ memo-contract
class TestMemoContractFamily:
    def test_declared_mutator_missing_write_detected(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._items = x
        """)
        assert "memo-invalidation-missing" in new_rules(lint(tmp_path))

    def test_delegation_counts_as_write(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._memo = None

                @invalidates("_memo")
                def insert_item(self, x):
                    self.add_item(x)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_inplace_mutation_counts_as_write(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def clear_all(self):
                    self._memo.clear()
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_undeclared_mutator_on_opted_in_class_detected(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._memo = None

                def remove_item(self, x):
                    self._memo = None
        """)
        assert "memo-mutator-undeclared" in new_rules(lint(tmp_path))

    def test_class_without_declarations_is_out_of_scope(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Plain:
                def add_item(self, x):
                    self._items = x
        """)
        assert new_rules(lint(tmp_path)) == set()


# ----------------------------------------------------------- repair-journal
class TestRepairJournalFamily:
    def test_mirror_write_outside_funnel_detected(self, tmp_path):
        plant(tmp_path, "dynamic/fx.py", """\
            def fast_path(state, v):
                state.mate_arr[v] = -1
        """)
        assert "mirror-write-outside-funnel" in new_rules(lint(tmp_path))

    def test_funnel_modules_are_allowlisted(self, tmp_path):
        plant(tmp_path, "core/structures.py", """\
            def set_mate(self, v, mate):
                self.mate_arr[v] = mate
        """)
        plant(tmp_path, "core/repair.py", """\
            def restore(self, v, snapshot):
                self.matched_arr[v] = snapshot
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_mirror_reads_are_clean(self, tmp_path):
        plant(tmp_path, "dynamic/fx.py", """\
            def peek(state, v):
                return state.mate_arr[v]
        """)
        assert new_rules(lint(tmp_path)) == set()


# ------------------------------------------------------------- exec-escape
class TestExecEscapeFamily:
    def test_lambda_at_seam_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            def run_all(executor, tasks):
                return executor.map(lambda t: t + 1, tasks)
        """)
        assert "exec-escape" in new_rules(lint(tmp_path))

    def test_local_closure_at_seam_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            def run_all(executor, tasks):
                def work(t):
                    return t + 1
                return executor.map(work, tasks)
        """)
        assert "exec-escape" in new_rules(lint(tmp_path))

    def test_bound_method_at_seam_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            class Driver:
                def run(self, pool, tasks):
                    return pool.map(self.work, tasks)
        """)
        assert "exec-escape" in new_rules(lint(tmp_path))

    def test_unpicklable_default_on_shipped_worker_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            import threading

            def run_item_task(item, lock=threading.Lock()):
                return item

            def dispatch(executor, tasks):
                return executor.map(run_item_task, tasks)
        """)
        assert "exec-escape" in new_rules(lint(tmp_path))

    def test_module_level_and_imported_workers_are_clean(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            from repro.congest.chunks import run_vertex_chunk

            def run_item_task(item, scale=2):
                return item * scale

            def dispatch(executor, tasks):
                a = executor.map(run_item_task, tasks)
                b = executor.map(run_vertex_chunk, tasks)
                return a, b
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            def run_all(executor, tasks):
                return executor.map(
                    lambda t: t + 1,  # repro: allow[exec-escape] -- serial-only test helper
                    tasks)
        """)
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1


# ---------------------------------------------------------- send-aliasing
class TestSendAliasingFamily:
    def test_returning_shared_dict_itself_detected(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                return {1: state}
        """)
        assert "send-aliasing" in new_rules(lint(tmp_path))

    def test_payload_aliasing_state_entry_detected(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                return {1: state["best"]}
        """)
        assert "send-aliasing" in new_rules(lint(tmp_path))

    def test_payload_from_inbox_get_detected(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                return {1: inbox.get(0)}
        """)
        assert "send-aliasing" in new_rules(lint(tmp_path))

    def test_mutation_after_send_detected(self, tmp_path):
        # the seeded mutation the runtime isolation sanitizer also catches
        # (tests/test_isolation.py runs the behavioural twin of this code)
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                out = {}
                payload = [v]
                out[1] = payload
                payload.append(v + 1)
                return out
        """)
        assert "send-aliasing" in new_rules(lint(tmp_path))

    def test_sent_and_retained_mutable_local_detected(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            def shuffle(machine_id, items, state):
                msgs = [machine_id]
                state["pending"] = msgs
                return [(1, msgs)]
        """)
        assert "send-aliasing" in new_rules(lint(tmp_path))

    def test_fresh_tuples_and_copies_are_clean(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                out = {}
                out[1] = (v, state["round"])
                out[2] = tuple(inbox.get(0, ()))
                return out
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_mpc_and_congest(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def program(v, state, inbox):
                return {1: state["best"]}
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            def program(v, state, inbox):
                return {1: state["best"]}  # repro: allow[send-aliasing] -- value is a frozen tuple by construction
        """)
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1


# ------------------------------------------------------------ global-write
class TestGlobalWriteFamily:
    def test_worker_assigning_declared_global_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            _TOTAL = 0

            def run_fill_task(item):
                global _TOTAL
                _TOTAL = item
        """)
        assert "global-write" in new_rules(lint(tmp_path))

    def test_reachable_callee_mutating_module_dict_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            _CACHE = {}

            def _record(item):
                _CACHE[item] = True

            def run_fill_task(item):
                _record(item)
                return item
        """)
        assert "global-write" in new_rules(lint(tmp_path))

    def test_seam_shipped_function_is_a_root(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            _SEEN = []

            def note(item):
                _SEEN.append(item)
                return item

            def dispatch(executor, tasks):
                return executor.map(note, tasks)
        """)
        assert "global-write" in new_rules(lint(tmp_path))

    def test_local_writes_and_unreachable_writers_are_clean(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            _CACHE = {}

            def warm(key):
                # module-state write, but not reachable from any worker
                _CACHE[key] = True

            def run_calc_task(item):
                acc = {}
                acc[item] = True
                return acc
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            _TOTAL = 0

            def run_fill_task(item):
                global _TOTAL
                _TOTAL = item  # repro: allow[global-write] -- worker-local counter, merged by the parent
        """)
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1


# ---------------------------------------------------------- hot-path-alloc
class TestHotPathAllocFamily:
    def test_argument_materialization_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            from repro.utils.contracts import hot_path

            @hot_path
            def note_update(self, edges):
                vals = list(edges)
                return vals
        """)
        assert "hot-path-alloc" in new_rules(lint(tmp_path))

    def test_numpy_allocation_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            import numpy as np

            from repro.utils.contracts import hot_path

            @hot_path
            def note_update(self, xs):
                return np.asarray(xs)
        """)
        assert "hot-path-alloc" in new_rules(lint(tmp_path))

    def test_python_loop_over_array_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            from repro.utils.contracts import hot_path

            @hot_path
            def scan(self, mate_arr):
                total = 0
                for v in mate_arr:
                    total += v
                return total
        """)
        assert "hot-path-alloc" in new_rules(lint(tmp_path))

    def test_o1_body_and_undecorated_functions_are_clean(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            from repro.utils.contracts import hot_path

            @hot_path
            def note_update(self, v):
                self._count += 1
                self._last = v
                return self._count

            def cold_path(edges):
                return list(edges)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            from repro.utils.contracts import hot_path

            @hot_path
            def note_update(self, edges):
                edges = list(edges)  # repro: allow[hot-path-alloc] -- bounded by one phase's augmenting set
                return edges
        """)
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1


# ------------------------------------------------------ swallowed-exception
class TestSwallowedExceptionFamily:
    def test_broad_pass_handler_detected(self, tmp_path):
        plant(tmp_path, "resilience/fx.py", """\
            def restore(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
        """)
        assert "swallowed-exception" in new_rules(lint(tmp_path))

    def test_bare_except_and_tuple_detected(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            def drain(queue):
                try:
                    queue.get_nowait()
                except:
                    pass
        """)
        plant(tmp_path, "bench/fx.py", """\
            def harvest(future):
                try:
                    future.cancel()
                except (OSError, Exception):
                    pass
        """)
        report = lint(tmp_path)
        hits = [f for f in report.new_findings
                if f.rule == "swallowed-exception"]
        assert len(hits) == 2

    def test_reraise_and_returned_value_are_clean(self, tmp_path):
        plant(tmp_path, "exec/fx.py", """\
            def retry(task):
                try:
                    return task()
                except Exception:
                    raise

            def blame(task):
                try:
                    return task()
                except Exception as exc:
                    return ("ERROR", str(exc))
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_recording_the_failure_is_clean(self, tmp_path):
        plant(tmp_path, "bench/fx.py", """\
            def walk(task, failures):
                try:
                    return task()
                except Exception as exc:
                    failures.append({"error": str(exc)})
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_narrow_handler_is_clean(self, tmp_path):
        plant(tmp_path, "dynamic/fx.py", """\
            def lookup(d, k):
                try:
                    return d[k]
                except KeyError:
                    pass
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_recovery_packages(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def restore(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "resilience/fx.py", """\
            def probe(path):
                try:
                    return open(path).read()
                except Exception:  # repro: allow[swallowed-exception] -- best-effort probe, absence is a valid answer
                    pass
        """)
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1


# --------------------------------------- acceptance: parallel-safety family
def test_parallel_safety_family_detects_planted_fixtures(tmp_path):
    plant(tmp_path, "exec/escape_fx.py", """\
        def run_all(executor, tasks):
            return executor.map(lambda t: t + 1, tasks)
    """)
    plant(tmp_path, "congest/alias_fx.py", """\
        def program(v, state, inbox):
            return {1: state["best"]}
    """)
    plant(tmp_path, "exec/global_fx.py", """\
        _CACHE = {}

        def run_fill_task(item):
            _CACHE[item] = True
    """)
    plant(tmp_path, "core/hot_fx.py", """\
        from repro.utils.contracts import hot_path

        @hot_path
        def note_update(self, edges):
            return list(edges)
    """)
    assert {"exec-escape", "send-aliasing", "global-write",
            "hot-path-alloc"} <= new_rules(lint(tmp_path))


# ---------------------------------------------------- acceptance: all four
def test_all_four_families_detect_planted_fixtures(tmp_path):
    plant(tmp_path, "core/hash_fx.py", """\
        def f(s: set):
            for v in s:
                print(v)
    """)
    plant(tmp_path, "mpc/words_fx.py", """\
        class Sim:
            def send(self, dest, payload):
                self.storage[dest].append(payload)
    """)
    plant(tmp_path, "graph/memo_fx.py", """\
        class Cache:
            @invalidates("_memo")
            def add_item(self, x):
                self._items = x
    """)
    plant(tmp_path, "dynamic/mirror_fx.py", """\
        def f(state, v):
            state.mate_arr[v] = -1
    """)
    assert {"set-iteration", "word-accounting-bypass",
            "memo-invalidation-missing",
            "mirror-write-outside-funnel"} <= new_rules(lint(tmp_path))


# ------------------------------------------------------------------ pragmas
class TestPragmas:
    OFFENDING = """\
        def f(s: set):
            for v in s:{pragma}
                print(v)
    """

    def test_valid_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-iteration] -- fixture justification"))
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1

    def test_family_name_suppresses_every_member_rule(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[hash-order] -- fixture justification"))
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1

    def test_justification_is_mandatory(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-iteration]"))
        rules = new_rules(lint(tmp_path))
        # nothing suppressed, and the bare pragma is itself reported
        assert {"set-iteration", "pragma-missing-justification"} <= rules

    def test_unused_pragma_reported(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f():  # repro: allow[set-iteration] -- nothing to suppress
                return 1
        """)
        assert "pragma-unused" in new_rules(lint(tmp_path))

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-pop] -- wrong rule listed"))
        rules = new_rules(lint(tmp_path))
        assert {"set-iteration", "pragma-unused"} <= rules

    def test_pragma_text_inside_string_is_inert(self, tmp_path):
        # regression: the engine's own error message contains pragma text
        # in a string literal; tokenize-based parsing must not see it
        plant(tmp_path, "core/fx.py", """\
            MSG = "# repro: allow[set-iteration] -- not a real pragma"
        """)
        assert new_rules(lint(tmp_path)) == set()


# ------------------------------------------------- fingerprints & baseline
class TestFingerprintsAndBaseline:
    def test_fingerprint_survives_line_shift(self, tmp_path):
        path = plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        before = {f.fingerprint for f in lint(tmp_path).new_findings}
        path.write_text("# shifted\n# down\n\n" + path.read_text(),
                        encoding="utf-8")
        after = {f.fingerprint for f in lint(tmp_path).new_findings}
        assert before == after

    def test_baseline_grandfathers_and_check_recovers(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        report = lint(tmp_path)
        assert report.new_findings
        baseline = from_findings(report.new_findings)
        report2 = lint(tmp_path, baseline=baseline)
        assert report2.new_findings == []
        assert report2.baselined_count == len(report.new_findings)

    def test_removed_entry_resurfaces_finding(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        baseline = from_findings(lint(tmp_path).new_findings)
        fingerprint = next(iter(baseline.fingerprints))
        assert baseline.remove(fingerprint)
        assert not baseline.remove(fingerprint)  # idempotent
        assert lint(tmp_path, baseline=baseline).new_findings

    def test_stale_entries_are_listed(self, tmp_path):
        plant(tmp_path, "core/fx.py", "def f():\n    return 1\n")
        baseline = Baseline(entries={"deadbeefdeadbeef": {
            "fingerprint": "deadbeefdeadbeef", "rule": "set-iteration",
            "path": "repro/core/gone.py", "context": "for v in s:"}})
        report = lint(tmp_path, baseline=baseline)
        assert stale_fingerprints(baseline, report.findings) == \
            ["deadbeefdeadbeef"]

    def test_save_load_round_trip(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        baseline = from_findings(lint(tmp_path).new_findings)
        target = tmp_path / "baseline.json"
        save_baseline(baseline, target)
        assert load_baseline(target).fingerprints == baseline.fingerprints

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").fingerprints == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(bad)


# ------------------------------------------------------------- JSON report
def test_json_report_schema_round_trip(tmp_path):
    plant(tmp_path, "core/fx.py", """\
        def f(s: set):
            for v in s:
                print(v)
    """)
    report = lint(tmp_path)
    payload = json.loads(render_json(report))
    validate_report(payload)
    rebuilt = findings_from_report(payload)
    assert [(f.rule, f.path, f.line, f.message, f.context)
            for f in rebuilt] == \
        [(f.rule, f.path, f.line, f.message, f.context)
         for f in report.findings]
    assert payload["summary"]["new"] == len(report.new_findings)
    with pytest.raises(ValueError, match="missing key"):
        validate_report({"version": 1})


def test_parse_error_is_a_finding(tmp_path):
    plant(tmp_path, "core/fx.py", "def broken(:\n")
    assert "parse-error" in new_rules(lint(tmp_path))


# --------------------------------------------------------------------- CLI
class TestCLI:
    def _dirty_tree(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        return str(tmp_path / "repro"), str(tmp_path / "baseline.json")

    def test_check_exit_codes(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--check", "--baseline", baseline, target]) == 1
        assert "set-iteration" in capsys.readouterr().out
        # report-only mode never gates
        assert cli_main(["--baseline", baseline, target]) == 0
        capsys.readouterr()

    def test_update_baseline_flow(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--update-baseline", "--baseline", baseline,
                         target]) == 0
        assert cli_main(["--check", "--baseline", baseline, target]) == 0
        capsys.readouterr()

    def test_stale_baseline_fails_check(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--update-baseline", "--baseline", baseline,
                         target]) == 0
        # fix the code: the baselined finding disappears, its entry goes
        # stale, and --check demands the entry be retired
        plant(tmp_path, "core/fx.py", "def f():\n    return 1\n")
        assert cli_main(["--check", "--baseline", baseline, target]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--format", "json", "--baseline", baseline,
                         target]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["summary"]["new"] >= 1

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("set-iteration", "word-accounting-bypass",
                        "memo-invalidation-missing",
                        "mirror-write-outside-funnel",
                        "exec-escape", "send-aliasing", "global-write",
                        "hot-path-alloc", "swallowed-exception"):
            assert rule_id in out

    def test_bad_path_is_usage_error(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "no_such_dir")]) == 2
        capsys.readouterr()

    def test_explicit_lint_subcommand(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["lint", "--check", "--baseline", baseline,
                         target]) == 1
        capsys.readouterr()


# ------------------------------------------------------- CLI: subset modes
class TestCLISubsetModes:
    OFFENDING = """\
        def f(s: set):
            for v in s:
                print(v)
    """

    def test_paths_subset_lints_only_named_files(self, tmp_path, capsys):
        dirty = plant(tmp_path, "core/fx_a.py", self.OFFENDING)
        plant(tmp_path, "core/fx_b.py", self.OFFENDING)
        baseline = str(tmp_path / "baseline.json")
        # a subset run sees only the named file's findings
        assert cli_main(["--check", "--baseline", baseline,
                         "--paths", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "fx_a.py" in out and "fx_b.py" not in out

    def test_paths_subset_restricts_stale_check(self, tmp_path, capsys):
        fixed = plant(tmp_path, "core/fx_a.py", self.OFFENDING)
        still_dirty = plant(tmp_path, "core/fx_b.py", self.OFFENDING)
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(["--update-baseline", "--baseline", baseline,
                         str(tmp_path / "repro")]) == 0
        fixed.write_text("def f():\n    return 1\n", encoding="utf-8")
        # fx_a's baseline entry is now stale, but a subset run over fx_b
        # must not demand its retirement (fx_a was never scanned) ...
        assert cli_main(["--check", "--baseline", baseline,
                         "--paths", str(still_dirty)]) == 0
        capsys.readouterr()
        # ... while a subset run over fx_a itself surfaces the staleness
        assert cli_main(["--check", "--baseline", baseline,
                         "--paths", str(fixed)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def _git(self, cwd, *args):
        subprocess.run(["git", "-c", "user.email=dev@example.org",
                        "-c", "user.name=dev", *args],
                       cwd=str(cwd), check=True, capture_output=True)

    def test_changed_mode_lints_the_diff(self, tmp_path, monkeypatch,
                                         capsys):
        path = plant(tmp_path, "core/fx.py", "def f():\n    return 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.setattr("repro.analysis.cli.find_repo_root",
                            lambda: tmp_path)
        baseline = str(tmp_path / "baseline.json")
        # clean working tree: nothing to lint, exit 0
        assert cli_main(["--changed", "--check", "--baseline",
                         baseline]) == 0
        assert "nothing to lint" in capsys.readouterr().out
        # dirty the file: --changed lints exactly it and gates
        path.write_text(textwrap.dedent(self.OFFENDING), encoding="utf-8")
        assert cli_main(["--changed", "--check", "--baseline",
                         baseline]) == 1
        assert "set-iteration" in capsys.readouterr().out

    def test_changed_mode_without_git_is_usage_error(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.setattr("repro.analysis.cli.find_repo_root",
                            lambda: tmp_path)  # not a git checkout
        assert cli_main(["--changed", "--check"]) == 2
        assert "--changed needs a git checkout" in \
            capsys.readouterr().err


# ------------------------------------------------------- sanitizer helpers
class TestSanitizerNormalization:
    RECORD = {"scenario": "s", "params": {"seed": 0}, "wall_s": 1.23,
              "timestamp": "t", "python": "3.11",
              "counters": {"oracle_calls": 7.0, "repair_ms": 0.4,
                           "phase_s": 0.1}}

    def test_volatile_fields_dropped(self):
        normalized = normalize_record(self.RECORD)
        assert "wall_s" not in normalized and "timestamp" not in normalized
        assert normalized["counters"] == {"oracle_calls": 7.0}

    def test_canonical_bytes_ignore_only_volatile_fields(self):
        other = dict(self.RECORD, wall_s=9.99, timestamp="later")
        assert canonical_bytes([self.RECORD]) == canonical_bytes([other])
        drifted = dict(self.RECORD,
                       counters={"oracle_calls": 8.0, "repair_ms": 0.4,
                                 "phase_s": 0.1})
        ok, diff = compare_record_sets([self.RECORD], [drifted])
        assert not ok and "oracle_calls" in diff

    def test_count_mismatch_reported(self):
        ok, diff = compare_record_sets([self.RECORD], [])
        assert not ok and "record count" in diff


# --------------------------------------------- sanitizer: axis isolation
TOY_SCENARIO = '''\
"""Hash-order canary scenario for the sanitizer axis-isolation test."""

from repro.bench.registry import register


@register("toy_hash_order_probe", suite="test",
          description="set-iteration order leaked into a counter")
def toy_hash_order_probe(spec, counters):
    # string hashes depend on PYTHONHASHSEED (int hashes do not), so the
    # enumerate order below -- folded order-sensitively into the counter --
    # differs between hash seeds but not between worker counts
    toks = {f"tok-{i}" for i in range(128)}
    sig = 0
    for pos, tok in enumerate(toks):
        sig = (sig * 1000003 + (pos + 1) * int(tok.split("-")[1])) % (2**31)
    return {"order_signature": float(sig)}
'''


def test_sanitizer_isolates_the_failing_axis(tmp_path, monkeypatch):
    """A hash-order bug must be blamed on the PYTHONHASHSEED axis alone.

    The sanitizer compares each axis against the same baseline run, so a
    seed-dependent scenario fails the hash-seed variant while the --jobs
    variant (same hash seed) still matches -- the failure report must name
    the axis that actually broke, not both.
    """
    module = tmp_path / "toy_scenarios.py"
    module.write_text(TOY_SCENARIO, encoding="utf-8")
    monkeypatch.setenv("REPRO_BENCH_EXTRA_MODULES", str(module))
    result = run_sanitizer("toy_hash_order_probe", seed=0,
                           repo_root=find_repo_root(), timeout=240.0)
    assert not result.ok, result.render()
    assert any("PYTHONHASHSEED=1" in failure for failure in result.failures)
    assert any("order_signature" in failure for failure in result.failures)
    # the --jobs axis stayed clean: compared, and absent from the failures
    assert all("--jobs 2" not in failure for failure in result.failures)
    assert any("--jobs 2" in label for label in result.compared)


# ------------------------------------------------------- runtime contracts
class TestInvalidatesRegistry:
    def test_decorator_validates_arguments(self):
        with pytest.raises(ValueError, match="at least one"):
            invalidates()
        with pytest.raises(ValueError, match="non-empty strings"):
            invalidates("")

    def test_registry_walks_mro_and_shadows(self):
        class Base:
            @invalidates("_a")
            def add_x(self):
                self._a = None

        class Child(Base):
            @invalidates("_a", "_b")
            def add_x(self):
                self._a = self._b = None

            @invalidates("_b")
            def remove_x(self):
                self._b = None

        assert declared_mutators(Base) == {"add_x": ("_a",)}
        assert declared_mutators(Child) == {"add_x": ("_a", "_b"),
                                            "remove_x": ("_b",)}

    def test_decorator_is_zero_cost(self):
        @invalidates("_flag")
        def mutate(self):
            self._flag = True

        assert mutate.__invalidates__ == ("_flag",)
        assert mutate.__name__ == "mutate"  # no wrapper object


class TestHotPathRegistry:
    def test_decorator_tags_without_wrapping(self):
        @hot_path
        def update(self, v):
            return v

        assert is_hot_path(update)
        assert update.__name__ == "update"  # no wrapper object

    def test_registry_walks_mro(self):
        class Base:
            @hot_path
            def tick(self):
                pass

        class Child(Base):
            @hot_path
            def tock(self):
                pass

            def cold(self):
                pass

        assert declared_hot_paths(Base) == ("tick",)
        assert declared_hot_paths(Child) == ("tick", "tock")
        assert not is_hot_path(Child.cold)
        assert is_hot_path(Child().tick)  # bound methods unwrap

    def test_repair_hot_paths_are_declared(self):
        # the per-update path the latency gate measures is tagged, so the
        # hot-path-alloc rule actually covers it
        from repro.core.repair import MirroredMatching, RepairContext

        assert "note_update" in declared_hot_paths(RepairContext)
        assert {"add", "remove"} <= set(declared_hot_paths(MirroredMatching))


# ------------------------------------------------------ import & packaging
def test_analysis_imports_without_numpy():
    """repro.analysis (the repro-lint entry point) must stay stdlib-only."""
    code = textwrap.dedent("""\
        import sys
        sys.modules["numpy"] = None  # poison: any numpy import now fails
        import repro.analysis
        from repro.analysis.registry import all_rules
        ids = {entry.id for entry in all_rules()}
        need = {"exec-escape", "send-aliasing", "global-write",
                "hot-path-alloc"}
        missing = need - ids
        assert not missing, f"missing rules: {missing}"
        print("ok")
    """)
    root = find_repo_root()
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok" in proc.stdout


def test_setup_declares_repro_lint_entry_point():
    text = (find_repo_root() / "setup.py").read_text(encoding="utf-8")
    assert "repro-lint=repro.analysis.cli:main" in text
