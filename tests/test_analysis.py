"""Tests for the determinism & contract linter (``repro.analysis``).

Per rule family: a planted positive fixture (the acceptance criterion --
every family must *detect*), a negative that idiomatic code stays clean,
and a pragma-suppressed variant.  Plus the pragma grammar/hygiene, the
line-number-free fingerprints, the baseline add/remove flows, the CLI exit
codes, the JSON report schema round-trip, and the runtime
``@invalidates`` registry the memo-contract family reads.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    findings_from_report,
    from_findings,
    load_baseline,
    render_json,
    save_baseline,
    validate_report,
)
from repro.analysis.baseline import stale_fingerprints
from repro.analysis.cli import main as cli_main
from repro.analysis.sanitizer import (
    canonical_bytes,
    compare_record_sets,
    normalize_record,
)
from repro.utils.contracts import declared_mutators, invalidates


def plant(tmp_path, rel, text):
    """Write a fixture module under a synthetic ``repro`` package root.

    ``module_name_for`` anchors at the last ``repro`` path component, so
    ``<tmp>/repro/core/fx.py`` is analyzed as module ``repro.core.fx`` --
    fixtures land in whichever package a rule scopes to.
    """
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def lint(tmp_path, *, baseline=None):
    return analyze_paths([tmp_path], baseline=baseline, root=tmp_path)


def new_rules(report):
    return {f.rule for f in report.new_findings}


# --------------------------------------------------------------- hash-order
class TestHashOrderFamily:
    def test_set_iteration_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        assert "set-iteration" in new_rules(lint(tmp_path))

    def test_sorted_iteration_is_clean(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in sorted(s):
                    print(v)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_list_materialization_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f():
                s = {1, 2, 3}
                return list(s)
        """)
        assert "set-iteration" in new_rules(lint(tmp_path))

    def test_set_minmax_and_pop_detected(self, tmp_path):
        plant(tmp_path, "matching/fx.py", """\
            def f():
                s = set((1, 2))
                lo = min(s)
                return lo, s.pop()
        """)
        rules = new_rules(lint(tmp_path))
        assert {"set-minmax", "set-pop"} <= rules

    def test_id_order_detected(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(items):
                return sorted(items, key=id)
        """)
        assert "id-order" in new_rules(lint(tmp_path))

    def test_dict_views_and_counting_are_clean(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set, d: dict):
                for k in d:
                    print(k)
                return len(s), sum(s), sorted(s)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_algorithm_packages(self, tmp_path):
        # identical offending code outside core/dynamic/mpc/congest/
        # matching/graph is out of scope (report tooling, utils)
        plant(tmp_path, "utils/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_unseeded_random_detected_everywhere_but_seeding(self, tmp_path):
        plant(tmp_path, "bench/fx.py", """\
            import random

            def f():
                return random.random()
        """)
        plant(tmp_path, "utils/seeding.py", """\
            import random

            def f():
                return random.random()
        """)
        report = lint(tmp_path)
        offenders = {f.path for f in report.new_findings
                     if f.rule == "unseeded-random"}
        assert any(p.endswith("bench/fx.py") for p in offenders)
        assert not any(p.endswith("seeding.py") for p in offenders)

    def test_np_default_rng_is_clean_module_draw_is_not(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            import numpy as np

            def good(seed):
                return np.random.default_rng(seed)

            def bad():
                return np.random.rand(3)
        """)
        report = lint(tmp_path)
        hits = [f for f in report.new_findings if f.rule == "unseeded-random"]
        assert len(hits) == 1
        assert "rand" in hits[0].context


# ---------------------------------------------------------- word-accounting
class TestWordAccountingFamily:
    def test_unsized_send_path_detected(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def send(self, dest, payload):
                    self.storage[dest].append(payload)
        """)
        assert "word-accounting-bypass" in new_rules(lint(tmp_path))

    def test_funnel_reference_satisfies_contract(self, tmp_path):
        plant(tmp_path, "congest/fx.py", """\
            class Sim:
                def send(self, dest, payload):
                    self._check_size(payload)
                    self.inboxes[dest].append(payload)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_counter_charge_without_funnel_detected(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def settle(self, n):
                    self.counters.add("mpc_messages", n)
        """)
        assert "word-accounting-bypass" in new_rules(lint(tmp_path))

    def test_init_allocation_is_exempt(self, tmp_path):
        plant(tmp_path, "mpc/fx.py", """\
            class Sim:
                def __init__(self, n):
                    self.storage = [[] for _ in range(n)]
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_rule_scoped_to_mpc_and_congest(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            class NotASim:
                def stash(self, payload):
                    self.storage.append(payload)
        """)
        assert new_rules(lint(tmp_path)) == set()


# ------------------------------------------------------------ memo-contract
class TestMemoContractFamily:
    def test_declared_mutator_missing_write_detected(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._items = x
        """)
        assert "memo-invalidation-missing" in new_rules(lint(tmp_path))

    def test_delegation_counts_as_write(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._memo = None

                @invalidates("_memo")
                def insert_item(self, x):
                    self.add_item(x)
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_inplace_mutation_counts_as_write(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def clear_all(self):
                    self._memo.clear()
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_undeclared_mutator_on_opted_in_class_detected(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Cache:
                @invalidates("_memo")
                def add_item(self, x):
                    self._memo = None

                def remove_item(self, x):
                    self._memo = None
        """)
        assert "memo-mutator-undeclared" in new_rules(lint(tmp_path))

    def test_class_without_declarations_is_out_of_scope(self, tmp_path):
        plant(tmp_path, "graph/fx.py", """\
            class Plain:
                def add_item(self, x):
                    self._items = x
        """)
        assert new_rules(lint(tmp_path)) == set()


# ----------------------------------------------------------- repair-journal
class TestRepairJournalFamily:
    def test_mirror_write_outside_funnel_detected(self, tmp_path):
        plant(tmp_path, "dynamic/fx.py", """\
            def fast_path(state, v):
                state.mate_arr[v] = -1
        """)
        assert "mirror-write-outside-funnel" in new_rules(lint(tmp_path))

    def test_funnel_modules_are_allowlisted(self, tmp_path):
        plant(tmp_path, "core/structures.py", """\
            def set_mate(self, v, mate):
                self.mate_arr[v] = mate
        """)
        plant(tmp_path, "core/repair.py", """\
            def restore(self, v, snapshot):
                self.matched_arr[v] = snapshot
        """)
        assert new_rules(lint(tmp_path)) == set()

    def test_mirror_reads_are_clean(self, tmp_path):
        plant(tmp_path, "dynamic/fx.py", """\
            def peek(state, v):
                return state.mate_arr[v]
        """)
        assert new_rules(lint(tmp_path)) == set()


# ---------------------------------------------------- acceptance: all four
def test_all_four_families_detect_planted_fixtures(tmp_path):
    plant(tmp_path, "core/hash_fx.py", """\
        def f(s: set):
            for v in s:
                print(v)
    """)
    plant(tmp_path, "mpc/words_fx.py", """\
        class Sim:
            def send(self, dest, payload):
                self.storage[dest].append(payload)
    """)
    plant(tmp_path, "graph/memo_fx.py", """\
        class Cache:
            @invalidates("_memo")
            def add_item(self, x):
                self._items = x
    """)
    plant(tmp_path, "dynamic/mirror_fx.py", """\
        def f(state, v):
            state.mate_arr[v] = -1
    """)
    assert {"set-iteration", "word-accounting-bypass",
            "memo-invalidation-missing",
            "mirror-write-outside-funnel"} <= new_rules(lint(tmp_path))


# ------------------------------------------------------------------ pragmas
class TestPragmas:
    OFFENDING = """\
        def f(s: set):
            for v in s:{pragma}
                print(v)
    """

    def test_valid_pragma_suppresses(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-iteration] -- fixture justification"))
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1

    def test_family_name_suppresses_every_member_rule(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[hash-order] -- fixture justification"))
        report = lint(tmp_path)
        assert report.new_findings == []
        assert report.suppressed_count == 1

    def test_justification_is_mandatory(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-iteration]"))
        rules = new_rules(lint(tmp_path))
        # nothing suppressed, and the bare pragma is itself reported
        assert {"set-iteration", "pragma-missing-justification"} <= rules

    def test_unused_pragma_reported(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f():  # repro: allow[set-iteration] -- nothing to suppress
                return 1
        """)
        assert "pragma-unused" in new_rules(lint(tmp_path))

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        plant(tmp_path, "core/fx.py", self.OFFENDING.format(
            pragma="  # repro: allow[set-pop] -- wrong rule listed"))
        rules = new_rules(lint(tmp_path))
        assert {"set-iteration", "pragma-unused"} <= rules

    def test_pragma_text_inside_string_is_inert(self, tmp_path):
        # regression: the engine's own error message contains pragma text
        # in a string literal; tokenize-based parsing must not see it
        plant(tmp_path, "core/fx.py", """\
            MSG = "# repro: allow[set-iteration] -- not a real pragma"
        """)
        assert new_rules(lint(tmp_path)) == set()


# ------------------------------------------------- fingerprints & baseline
class TestFingerprintsAndBaseline:
    def test_fingerprint_survives_line_shift(self, tmp_path):
        path = plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        before = {f.fingerprint for f in lint(tmp_path).new_findings}
        path.write_text("# shifted\n# down\n\n" + path.read_text(),
                        encoding="utf-8")
        after = {f.fingerprint for f in lint(tmp_path).new_findings}
        assert before == after

    def test_baseline_grandfathers_and_check_recovers(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        report = lint(tmp_path)
        assert report.new_findings
        baseline = from_findings(report.new_findings)
        report2 = lint(tmp_path, baseline=baseline)
        assert report2.new_findings == []
        assert report2.baselined_count == len(report.new_findings)

    def test_removed_entry_resurfaces_finding(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        baseline = from_findings(lint(tmp_path).new_findings)
        fingerprint = next(iter(baseline.fingerprints))
        assert baseline.remove(fingerprint)
        assert not baseline.remove(fingerprint)  # idempotent
        assert lint(tmp_path, baseline=baseline).new_findings

    def test_stale_entries_are_listed(self, tmp_path):
        plant(tmp_path, "core/fx.py", "def f():\n    return 1\n")
        baseline = Baseline(entries={"deadbeefdeadbeef": {
            "fingerprint": "deadbeefdeadbeef", "rule": "set-iteration",
            "path": "repro/core/gone.py", "context": "for v in s:"}})
        report = lint(tmp_path, baseline=baseline)
        assert stale_fingerprints(baseline, report.findings) == \
            ["deadbeefdeadbeef"]

    def test_save_load_round_trip(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        baseline = from_findings(lint(tmp_path).new_findings)
        target = tmp_path / "baseline.json"
        save_baseline(baseline, target)
        assert load_baseline(target).fingerprints == baseline.fingerprints

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").fingerprints == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(bad)


# ------------------------------------------------------------- JSON report
def test_json_report_schema_round_trip(tmp_path):
    plant(tmp_path, "core/fx.py", """\
        def f(s: set):
            for v in s:
                print(v)
    """)
    report = lint(tmp_path)
    payload = json.loads(render_json(report))
    validate_report(payload)
    rebuilt = findings_from_report(payload)
    assert [(f.rule, f.path, f.line, f.message, f.context)
            for f in rebuilt] == \
        [(f.rule, f.path, f.line, f.message, f.context)
         for f in report.findings]
    assert payload["summary"]["new"] == len(report.new_findings)
    with pytest.raises(ValueError, match="missing key"):
        validate_report({"version": 1})


def test_parse_error_is_a_finding(tmp_path):
    plant(tmp_path, "core/fx.py", "def broken(:\n")
    assert "parse-error" in new_rules(lint(tmp_path))


# --------------------------------------------------------------------- CLI
class TestCLI:
    def _dirty_tree(self, tmp_path):
        plant(tmp_path, "core/fx.py", """\
            def f(s: set):
                for v in s:
                    print(v)
        """)
        return str(tmp_path / "repro"), str(tmp_path / "baseline.json")

    def test_check_exit_codes(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--check", "--baseline", baseline, target]) == 1
        assert "set-iteration" in capsys.readouterr().out
        # report-only mode never gates
        assert cli_main(["--baseline", baseline, target]) == 0
        capsys.readouterr()

    def test_update_baseline_flow(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--update-baseline", "--baseline", baseline,
                         target]) == 0
        assert cli_main(["--check", "--baseline", baseline, target]) == 0
        capsys.readouterr()

    def test_stale_baseline_fails_check(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--update-baseline", "--baseline", baseline,
                         target]) == 0
        # fix the code: the baselined finding disappears, its entry goes
        # stale, and --check demands the entry be retired
        plant(tmp_path, "core/fx.py", "def f():\n    return 1\n")
        assert cli_main(["--check", "--baseline", baseline, target]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["--format", "json", "--baseline", baseline,
                         target]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["summary"]["new"] >= 1

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("set-iteration", "word-accounting-bypass",
                        "memo-invalidation-missing",
                        "mirror-write-outside-funnel"):
            assert rule_id in out

    def test_bad_path_is_usage_error(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "no_such_dir")]) == 2
        capsys.readouterr()

    def test_explicit_lint_subcommand(self, tmp_path, capsys):
        target, baseline = self._dirty_tree(tmp_path)
        assert cli_main(["lint", "--check", "--baseline", baseline,
                         target]) == 1
        capsys.readouterr()


# ------------------------------------------------------- sanitizer helpers
class TestSanitizerNormalization:
    RECORD = {"scenario": "s", "params": {"seed": 0}, "wall_s": 1.23,
              "timestamp": "t", "python": "3.11",
              "counters": {"oracle_calls": 7.0, "repair_ms": 0.4,
                           "phase_s": 0.1}}

    def test_volatile_fields_dropped(self):
        normalized = normalize_record(self.RECORD)
        assert "wall_s" not in normalized and "timestamp" not in normalized
        assert normalized["counters"] == {"oracle_calls": 7.0}

    def test_canonical_bytes_ignore_only_volatile_fields(self):
        other = dict(self.RECORD, wall_s=9.99, timestamp="later")
        assert canonical_bytes([self.RECORD]) == canonical_bytes([other])
        drifted = dict(self.RECORD,
                       counters={"oracle_calls": 8.0, "repair_ms": 0.4,
                                 "phase_s": 0.1})
        ok, diff = compare_record_sets([self.RECORD], [drifted])
        assert not ok and "oracle_calls" in diff

    def test_count_mismatch_reported(self):
        ok, diff = compare_record_sets([self.RECORD], [])
        assert not ok and "record count" in diff


# ------------------------------------------------------- runtime contracts
class TestInvalidatesRegistry:
    def test_decorator_validates_arguments(self):
        with pytest.raises(ValueError, match="at least one"):
            invalidates()
        with pytest.raises(ValueError, match="non-empty strings"):
            invalidates("")

    def test_registry_walks_mro_and_shadows(self):
        class Base:
            @invalidates("_a")
            def add_x(self):
                self._a = None

        class Child(Base):
            @invalidates("_a", "_b")
            def add_x(self):
                self._a = self._b = None

            @invalidates("_b")
            def remove_x(self):
                self._b = None

        assert declared_mutators(Base) == {"add_x": ("_a",)}
        assert declared_mutators(Child) == {"add_x": ("_a", "_b"),
                                            "remove_x": ("_b",)}

    def test_decorator_is_zero_cost(self):
        @invalidates("_flag")
        def mutate(self):
            self._flag = True

        assert mutate.__invalidates__ == ("_flag",)
        assert mutate.__name__ == "mutate"  # no wrapper object
