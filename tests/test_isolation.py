"""Tests for the serial-executor isolation sanitizer (``repro.exec.isolation``).

The sanitizer's contract: under ``isolation=True`` the simulators deliver
deep copies at the exchange barrier (matching process-mode pickling
semantics) and checksum the sender-side originals, so a program mutating a
payload it already sent -- the exact bug class the static ``send-aliasing``
rule hunts, invisible in every plain serial test -- raises
:class:`~repro.exec.isolation.IsolationViolation` at the next round or at
``close()``.  Also pinned: the flag's env default, the chunked-serial path,
and counter parity with isolation off (the sanitizer must observe, never
perturb).
"""

import pytest

from repro.congest.simulator import CongestSimulator
from repro.exec import IsolationViolation, SerialExecutor
from repro.exec.isolation import IsolationGuard, isolation_default, payload_digest
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.mpc.simulator import MPCSimulator


def path_graph(n):
    g = Graph(n)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


class TestGuard:
    def test_digest_is_content_based(self):
        payload = [1, 2]
        before = payload_digest(payload)
        assert payload_digest([1, 2]) == before
        payload.append(3)
        assert payload_digest(payload) != before

    def test_verify_clears_and_advances_rounds(self):
        guard = IsolationGuard("mpc")
        copies = guard.capture_messages(0, [(1, (1, 2))])
        assert copies == [(1, (1, 2))]
        guard.verify()
        assert guard.round_index == 1
        guard.verify()  # nothing retained: a no-op
        assert guard.round_index == 2

    def test_violation_names_sender_dest_and_round(self):
        guard = IsolationGuard("congest")
        payload = [5]
        guard.capture_outbox(3, {7: payload})
        payload[0] = -1
        with pytest.raises(IsolationViolation, match=r"sender 3 .* to 7 in "
                                                     r"round 0"):
            guard.verify()


class TestCongestIsolation:
    def _mutating_program(self, sent):
        """A vertex program with a seeded send-aliasing bug: vertex 0 sends
        a mutable list and rewrites it after the barrier."""
        def program(v, state, inbox):
            if v == 0 and not sent:
                payload = [1, 0]
                sent.append(payload)
                return {1: payload}
            return {}
        return program

    def test_mutation_after_send_raises_next_round(self):
        sim = CongestSimulator(path_graph(3), isolation=True)
        sent = []
        sim.round(self._mutating_program(sent))
        sent[0][1] = 99
        with pytest.raises(IsolationViolation, match="mutated a payload"):
            sim.round(self._mutating_program(sent))

    def test_mutation_after_final_round_raises_at_close(self):
        sim = CongestSimulator(path_graph(3), isolation=True)
        sent = []
        sim.round(self._mutating_program(sent))
        sent[0][1] = 99
        with pytest.raises(IsolationViolation):
            sim.close()

    def test_receiver_gets_a_copy_not_the_original(self):
        sim = CongestSimulator(path_graph(2), isolation=True)
        sent = []
        sim.round(self._mutating_program(sent))
        delivered = sim._inboxes[1][0]
        assert delivered == [1, 0] and delivered is not sent[0]

    def test_off_by_default_and_shares_objects(self):
        sim = CongestSimulator(path_graph(2))
        assert sim._guard is None
        sent = []
        sim.round(self._mutating_program(sent))
        # serial exchange without isolation shares the object -- the very
        # behaviour the sanitizer exists to make visible
        assert sim._inboxes[1][0] is sent[0]
        sent[0][1] = 99
        sim.round(self._mutating_program(sent))  # silently tolerated
        sim.close()

    def test_chunked_serial_path_is_guarded(self):
        # a chunked-but-serial executor still shares objects in-process, so
        # the guard must capture there too (module-level programs would
        # normally take the pool path; SerialExecutor keeps it in-process)
        sim = CongestSimulator(path_graph(3), isolation=True,
                               executor=SerialExecutor(), chunks=2)
        sent = []
        sim.round(self._mutating_program(sent))
        sent[0][1] = 99
        with pytest.raises(IsolationViolation):
            sim.round(self._mutating_program(sent))

    def test_counters_identical_with_and_without_isolation(self):
        def program(v, state, inbox):
            state["seen"] = state.get("seen", 0) + len(inbox)
            return {w: (v, state["seen"]) for w in (v - 1, v + 1)
                    if 0 <= w < 5}

        results = {}
        for flag in (False, True):
            counters = Counters()
            sim = CongestSimulator(path_graph(5), counters=counters,
                                   isolation=flag)
            for _ in range(3):
                sim.round(program)
            sim.close()
            results[flag] = (counters.as_dict(),
                             [dict(s) for s in sim.state])
        assert results[False] == results[True]


class TestMPCIsolation:
    def _mutating_program(self, sent):
        def program(machine_id, items):
            if machine_id == 0 and not sent:
                payload = [7]
                sent.append(payload)
                return [(1, payload)]
            return []
        return program

    def test_mutation_after_send_raises(self):
        sim = MPCSimulator(2, isolation=True)
        sim.scatter([1, 2])
        sent = []
        sim.round(self._mutating_program(sent))
        sent[0].append(8)
        with pytest.raises(IsolationViolation, match="mpc isolation"):
            sim.round(self._mutating_program(sent))

    def test_receiver_storage_holds_a_copy(self):
        sim = MPCSimulator(2, isolation=True)
        sim.scatter([])
        sent = []
        sim.round(self._mutating_program(sent))
        delivered = sim.storage[1][-1]
        assert delivered == [7] and delivered is not sent[0]
        sim.close()

    def test_counters_identical_with_and_without_isolation(self):
        def shuffle(machine_id, items):
            return [((machine_id + 1) % 3, ("tok", machine_id, item))
                    for item in items]

        results = {}
        for flag in (False, True):
            counters = Counters()
            sim = MPCSimulator(3, counters=counters, isolation=flag)
            sim.scatter(list(range(6)))
            for _ in range(2):
                sim.round(shuffle)
            sim.close()
            results[flag] = (counters.as_dict(),
                             [list(s) for s in sim.storage])
        assert results[False] == results[True]


class TestEnvDefault:
    def test_env_flag_enables_isolation(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_ISOLATION", "1")
        assert isolation_default() is True
        assert CongestSimulator(path_graph(2))._guard is not None
        assert MPCSimulator(1)._guard is not None

    def test_env_zero_and_unset_mean_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_ISOLATION", "0")
        assert isolation_default() is False
        assert CongestSimulator(path_graph(2))._guard is None
        monkeypatch.delenv("REPRO_EXEC_ISOLATION")
        assert isolation_default() is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_ISOLATION", "1")
        assert CongestSimulator(path_graph(2), isolation=False)._guard is None
