"""Unit tests for repro.graph.dynamic_graph."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph, Update


class TestUpdate:
    def test_insert_normalises(self):
        upd = Update.insert(5, 2)
        assert (upd.u, upd.v) == (2, 5)
        assert upd.kind == Update.INSERT

    def test_empty_update(self):
        upd = Update.empty()
        assert upd.kind == Update.EMPTY

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Update("bogus", 0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Update.insert(3, 3)


class TestDynamicGraph:
    def test_starts_empty(self):
        dg = DynamicGraph(5)
        assert dg.m == 0 and dg.n == 5
        assert dg.max_edges_seen == 0

    def test_insert_delete_cycle(self):
        dg = DynamicGraph(4)
        assert dg.insert(0, 1)
        assert not dg.insert(0, 1)  # duplicate insert does not change graph
        assert dg.insert(2, 3)
        assert dg.max_edges_seen == 2
        assert dg.delete(0, 1)
        assert not dg.delete(0, 1)
        assert dg.m == 1
        assert dg.max_edges_seen == 2  # max is sticky
        assert dg.num_updates == 5

    def test_empty_updates_counted_but_noop(self):
        dg = DynamicGraph(3)
        dg.apply(Update.empty())
        assert dg.num_updates == 1 and dg.m == 0

    def test_apply_all(self):
        dg = DynamicGraph(4)
        changed = dg.apply_all([Update.insert(0, 1), Update.insert(0, 1),
                                Update.delete(0, 1)])
        assert changed == 2

    def test_replay(self):
        dg = DynamicGraph(4)
        dg.insert(0, 1)
        dg.insert(1, 2)
        dg.delete(0, 1)
        snapshot = dg.replay(upto=2)
        assert snapshot.has_edge(0, 1) and snapshot.has_edge(1, 2)
        final = dg.replay()
        assert not final.has_edge(0, 1) and final.has_edge(1, 2)

    def test_chunking_pads_with_empty(self):
        updates = [Update.insert(0, 1), Update.insert(1, 2), Update.insert(2, 3)]
        chunks = DynamicGraph.chunk_updates(updates, 2)
        assert len(chunks) == 2
        assert all(len(c) == 2 for c in chunks)
        assert chunks[1][1].kind == Update.EMPTY

    def test_chunking_rejects_bad_size(self):
        with pytest.raises(ValueError):
            DynamicGraph.chunk_updates([], 0)


class TestLogFreeMode:
    def test_counts_without_log(self):
        dg = DynamicGraph(6, log_updates=False)
        assert not dg.logs_updates
        dg.insert(0, 1)
        dg.insert(1, 2)
        dg.delete(0, 1)
        assert dg.num_updates == 3
        assert dg.m == 1 and dg.max_edges_seen == 2

    def test_log_and_replay_raise(self):
        dg = DynamicGraph(4, log_updates=False)
        dg.insert(0, 1)
        with pytest.raises(RuntimeError, match="log disabled"):
            dg.log()
        with pytest.raises(RuntimeError, match="log disabled"):
            dg.replay()

    def test_apply_all_generator_input(self):
        updates = [Update.insert(i, i + 1) for i in range(5)]
        dg = DynamicGraph(6)
        assert dg.apply_all(iter(updates)) == 5  # lazy input, same result
        assert dg.log() == tuple(updates)
        assert sorted(dg.replay().edges()) == sorted(dg.graph.edges())

    def test_streamed_apply_all_validates_per_run(self):
        bad = [Update.insert(0, 1), Update.insert(2, 9)]  # 9 out of range
        dg = DynamicGraph(4)
        with pytest.raises(ValueError, match="out of range"):
            dg.apply_all(iter(bad))  # lazy: validated run-by-run
        eager = DynamicGraph(4)
        with pytest.raises(ValueError, match="out of range"):
            eager.apply_all(bad)  # eager: validated up front, nothing applied
        assert eager.m == 0 and eager.num_updates == 0
