"""Tests for the structure / blossom-node data model (Section 4.1)."""

import pytest

from repro.graph.generators import erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching
from repro.core.structures import PhaseState, Structure, StructNode
from repro.core.operations import overtake_op, contract_op


def make_state(graph, matching, ell_max=6):
    state = PhaseState(graph, matching, ell_max)
    state.init_structures()
    return state


class TestInitialisation:
    def test_one_structure_per_free_vertex(self):
        g = path_graph(5)
        m = Matching(5, [(1, 2)])
        state = make_state(g, m)
        assert set(state.structures) == {0, 3, 4}
        for alpha, s in state.structures.items():
            assert s.alpha == alpha
            assert s.root.vertices == [alpha]
            assert s.working is s.root
            assert s.size == 1
        state.check_invariants()

    def test_matched_vertices_start_unvisited(self):
        g = path_graph(5)
        m = Matching(5, [(1, 2)])
        state = make_state(g, m)
        assert state.is_unvisited(1) and state.is_unvisited(2)
        assert state.is_outer(0) and not state.is_inner(0)

    def test_labels_default_to_lmax_plus_one(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m, ell_max=6)
        assert state.label_of_edge(1, 2) == 7
        assert state.label_of_vertex(1) == 7
        assert state.label_of_vertex(0) == 0  # free vertex


class TestStructureAccessors:
    def test_active_path_and_distance(self):
        g = path_graph(6)
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        s0 = state.structures[0]
        overtake_op(state, 0, 1, 1)  # structure 0 absorbs matched pair (1,2)
        assert s0.size == 3
        path = s0.active_path()
        assert [n.base for n in path] == [0, 1, 2]
        assert state.distance(s0.working) == 1
        state.check_invariants()

    def test_outer_vertices(self):
        g = path_graph(6)
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        s0 = state.structures[0]
        assert sorted(s0.outer_vertices()) == [0, 2]

    def test_reset_marks_and_on_hold(self):
        g = path_graph(6)
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        s0 = state.structures[0]
        s0.reset_marks(limit=3)
        assert s0.on_hold  # size 3 >= limit 3
        s0.reset_marks(limit=10)
        assert not s0.on_hold and not s0.modified and not s0.extended


class TestArcTypes:
    def test_type3_for_unvisited_matched_head(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        assert state.arc_type(0, 1) == 3
        # reverse direction: 1 is not an outer vertex
        assert state.arc_type(1, 0) == 0

    def test_type2_between_structures(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 5)])
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)   # S_0 = {0,1,2}
        overtake_op(state, 5, 4, 1)   # S_5 = {5,4,3}
        assert state.arc_type(2, 3) == 2
        assert state.arc_type(3, 2) == 2

    def test_type1_within_structure(self):
        # 5-cycle 0-1-2-3-4-0 with (1,2) and (3,4) matched and 0 free: after
        # the structure of 0 grows around the cycle, the edge (4, 0) connects
        # two outer vertices of the same structure (a blossom / Contract
        # opportunity), i.e. a type-1 arc.
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)   # structure of 0 absorbs (1, 2)
        overtake_op(state, 2, 3, 2)   # ...then absorbs (3, 4) from its new head
        state.check_invariants()
        assert state.arc_type(4, 0) == 1
        assert state.arc_type(0, 4) == 1

    def test_matched_arc_is_type0(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        assert state.arc_type(1, 2) == 0

    def test_removed_vertices_are_type0(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        state.removed[1] = True
        assert state.arc_type(0, 1) == 0


class TestInvariantChecker:
    def test_detects_corrupted_node_of(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        state.node_of[1] = state.structures[0].root  # vertex 1 is not in that node
        with pytest.raises(AssertionError):
            state.check_invariants()

    def test_clean_state_passes(self):
        g = erdos_renyi(20, 0.2, seed=1)
        m = greedy_maximal_matching(g)
        state = make_state(g, m)
        state.check_invariants()
