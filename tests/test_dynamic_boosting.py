"""Tests for the weak-oracle boosting framework (Section 6 / Theorem 6.2)."""

import pytest

from repro.graph.generators import blossom_gadget, disjoint_paths, erdos_renyi
from repro.matching.blossom import maximum_matching_size
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.core.dynamic_boosting import WeakOracleBoostingFramework, boost_matching_weak
from repro.dynamic.weak_oracles import (
    ExactInducedWeakOracle,
    GreedyInducedWeakOracle,
    SamplingWeakOracle,
)


class TestInitialMatching:
    def test_lemma67_constant_approximation(self):
        for seed in range(3):
            g = erdos_renyi(40, 0.1, seed=seed)
            counters = Counters()
            framework = WeakOracleBoostingFramework(
                0.25, GreedyInducedWeakOracle(g, seed=seed), counters=counters, seed=0)
            m = framework.initial_matching(g)
            m.validate(g)
            assert 3 * m.size >= maximum_matching_size(g)
            assert counters.get("weak_oracle_calls") >= 1


class TestEndToEnd:
    def test_quality_with_greedy_induced_oracle(self, medium_graphs):
        eps = 0.25
        for name, g in medium_graphs:
            m = boost_matching_weak(g, eps, GreedyInducedWeakOracle(g, seed=1), seed=1)
            m.validate(g)
            ok, ratio = certify_approximation(g, m, eps)
            assert ok, f"{name}: ratio {ratio}"

    def test_quality_with_exact_induced_oracle(self):
        g = disjoint_paths(4, 7)
        m = boost_matching_weak(g, 1 / 8, ExactInducedWeakOracle(g), seed=2)
        ok, ratio = certify_approximation(g, m, 1 / 8)
        assert ok, ratio

    def test_quality_with_sampling_oracle(self):
        g = erdos_renyi(50, 0.12, seed=3)
        oracle = SamplingWeakOracle(g, rounds=12, seed=3)
        m = boost_matching_weak(g, 0.25, oracle, seed=3, sampling_rounds=6)
        m.validate(g)
        ok, ratio = certify_approximation(g, m, 0.25)
        assert ok, ratio

    def test_blossom_instances(self):
        g = blossom_gadget(5, 4)
        m = boost_matching_weak(g, 1 / 8, GreedyInducedWeakOracle(g, seed=4), seed=4)
        ok, ratio = certify_approximation(g, m, 1 / 8)
        assert ok, ratio

    def test_counts_weak_oracle_calls(self):
        g = erdos_renyi(40, 0.1, seed=5)
        counters = Counters()
        boost_matching_weak(g, 0.25, GreedyInducedWeakOracle(g, seed=5),
                            counters=counters, seed=5)
        assert counters.get("weak_oracle_calls") > 0

    def test_oracle_must_be_bound_to_input_graph(self):
        g1 = erdos_renyi(20, 0.2, seed=6)
        g2 = erdos_renyi(20, 0.2, seed=7)
        framework = WeakOracleBoostingFramework(0.25, GreedyInducedWeakOracle(g1))
        with pytest.raises(ValueError):
            framework.run(g2)

    def test_invariants_hold(self):
        g = erdos_renyi(30, 0.15, seed=8)
        m = boost_matching_weak(g, 0.25, GreedyInducedWeakOracle(g, seed=8),
                                seed=8, check_invariants=True)
        m.validate(g)
