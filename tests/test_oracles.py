"""Tests for the oracle protocols (Amatching / Aweak) and counting wrappers."""

from repro.graph.generators import erdos_renyi, path_graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.oracles import (
    CountingOracle,
    CountingWeakOracle,
    ExactMatchingOracle,
    GreedyMatchingOracle,
    RandomGreedyMatchingOracle,
    WeakOracle,
    ensure_counting,
    ensure_counting_weak,
)
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle


class TestMatchingOracles:
    def test_greedy_oracle_c_approximation(self):
        oracle = GreedyMatchingOracle()
        for seed in range(3):
            g = erdos_renyi(30, 0.15, seed=seed)
            edges = oracle.find_matching(g)
            m = Matching(g.n, edges)
            m.validate(g)
            assert oracle.c * m.size >= maximum_matching_size(g)

    def test_random_greedy_oracle(self):
        oracle = RandomGreedyMatchingOracle(seed=1)
        g = erdos_renyi(30, 0.15, seed=1)
        edges = oracle.find_matching(g)
        m = Matching(g.n, edges)
        m.validate(g)
        assert 2 * m.size >= maximum_matching_size(g)

    def test_exact_oracle(self):
        oracle = ExactMatchingOracle()
        g = erdos_renyi(25, 0.2, seed=2)
        assert len(oracle.find_matching(g)) == maximum_matching_size(g)

    def test_counting_wrapper_charges_calls(self):
        counters = Counters()
        oracle = CountingOracle(GreedyMatchingOracle(), counters)
        g = path_graph(6)
        oracle.find_matching(g)
        oracle.find_matching(g)
        assert counters.get("oracle_calls") == 2
        assert counters.get("oracle_vertices_seen") == 12
        assert counters.get("oracle_edges_seen") == 10
        assert counters.get("oracle_max_vertices") == 6

    def test_ensure_counting_idempotent(self):
        counters = Counters()
        inner = GreedyMatchingOracle()
        counted = ensure_counting(inner, counters)
        assert ensure_counting(counted, counters) is counted
        other = Counters()
        assert ensure_counting(counted, other) is not counted


class TestWeakOracles:
    def test_default_query_bipartite_uses_cross_edges_only(self):
        g = path_graph(6)
        oracle = GreedyInducedWeakOracle(g, seed=0)
        result = oracle.query_bipartite([0, 2, 4], [1, 3, 5], delta=0.1)
        assert result
        left, right = {0, 2, 4}, {1, 3, 5}
        for u, v in result:
            assert (u in left and v in right) or (v in left and u in right)
            assert g.has_edge(u, v)

    def test_query_bipartite_returns_none_when_no_cross_edges(self):
        g = path_graph(6)
        oracle = GreedyInducedWeakOracle(g, seed=0)
        assert oracle.query_bipartite([0, 2, 4], [], delta=0.1) is None
        assert oracle.query_bipartite([0], [4], delta=0.1) is None

    def test_counting_weak_oracle(self):
        g = path_graph(6)
        counters = Counters()
        oracle = CountingWeakOracle(GreedyInducedWeakOracle(g, seed=0), counters)
        oracle.query([0, 1, 2], 0.1)
        oracle.query_bipartite([0], [1], 0.1)
        oracle.query([0], 0.1)  # returns None -> counted as bottom
        assert counters.get("weak_oracle_calls") == 3
        assert counters.get("weak_oracle_bottom") == 1

    def test_ensure_counting_weak(self):
        g = path_graph(4)
        counters = Counters()
        inner = GreedyInducedWeakOracle(g, seed=0)
        counted = ensure_counting_weak(inner, counters)
        assert ensure_counting_weak(counted, counters) is counted
