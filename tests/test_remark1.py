"""Tests for Remark 1 of the paper: robustness of the framework to the oracle.

Remark 1 states two properties of the Section 5 framework:

1. it works even when the oracle's approximation factor ``c`` is worse than a
   constant (e.g. a log n approximation) -- only the number of invocations
   grows;
2. every graph handed to the oracle has maximum degree at most ``(2/eps^3) D``
   and arboricity at most ``(2/eps^3) L`` where ``D``/``L`` are the input
   graph's maximum degree and arboricity (because the derived graphs contract
   structures of poly(1/eps) vertices).

Both are checked here with a recording oracle wrapper.
"""

import random
from typing import List

from repro.graph.generators import disjoint_paths, erdos_renyi
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.matching import Matching
from repro.matching.verify import certify_approximation
from repro.core.boosting import boost_matching
from repro.core.oracles import MatchingOracle


class WeakerOracle(MatchingOracle):
    """A deliberately bad Theta(c)-approximate oracle: keeps only every
    ``drop``-th edge of a greedy maximal matching (so c ~ 2 * drop)."""

    name = "weakened-greedy"

    def __init__(self, drop: int = 3, seed: int = 0) -> None:
        self.drop = drop
        self.c = 2.0 * drop
        self._rng = random.Random(seed)

    def find_matching(self, graph: Graph) -> List:
        from repro.matching.greedy import random_greedy_matching

        edges = random_greedy_matching(graph, seed=self._rng.randrange(2 ** 31)).edge_list()
        kept = [e for i, e in enumerate(edges) if i % self.drop == 0]
        return kept if kept or not edges else edges[:1]


class RecordingOracle(MatchingOracle):
    """Greedy oracle that records the max degree of every graph it is handed."""

    c = 2.0
    name = "recording-greedy"

    def __init__(self) -> None:
        self.max_degrees: List[int] = []

    def find_matching(self, graph: Graph) -> List:
        from repro.matching.greedy import greedy_maximal_matching

        self.max_degrees.append(graph.max_degree())
        return greedy_maximal_matching(graph).edge_list()


class TestRemark1:
    def test_framework_tolerates_much_weaker_oracle(self):
        eps = 0.25
        for seed in range(2):
            g = erdos_renyi(50, 0.1, seed=seed)
            oracle = WeakerOracle(drop=3, seed=seed)
            m = boost_matching(g, eps, oracle=oracle, seed=seed)
            m.validate(g)
            ok, ratio = certify_approximation(g, m, eps)
            assert ok, f"seed {seed}: ratio {ratio}"

    def test_derived_graphs_have_bounded_degree(self):
        # every derived graph's max degree is at most (2/eps^3) * D
        eps = 0.25
        for name, g in (("er", erdos_renyi(40, 0.1, seed=3)),
                        ("paths", disjoint_paths(4, 7))):
            oracle = RecordingOracle()
            m = boost_matching(g, eps, oracle=oracle, seed=1)
            m.validate(g)
            input_degree = max(1, g.max_degree())
            bound = (2.0 / eps ** 3) * input_degree
            assert oracle.max_degrees, "oracle was never invoked"
            assert max(oracle.max_degrees) <= bound, name

    def test_weak_oracle_output_is_always_a_matching_of_the_derived_graph(self):
        # defensive property: whatever the oracle returns, the framework only
        # acts on witnesses that are still valid type-2/3 arcs, so the final
        # matching is valid even for a sloppy oracle that returns non-maximal
        # answers.
        class SloppyOracle(MatchingOracle):
            c = 4.0
            name = "sloppy"

            def find_matching(self, graph: Graph) -> List:
                return graph.edge_list()[:1]  # at most one edge, never maximal

        g = disjoint_paths(3, 5)
        m = boost_matching(g, 0.25, oracle=SloppyOracle(), seed=2)
        m.validate(g)
        assert m.size <= maximum_matching_size(g)
