"""Unit tests for the Matching container."""

import pytest

from repro.graph.graph import Graph
from repro.matching.matching import Matching


class TestBasics:
    def test_empty(self):
        m = Matching(5)
        assert len(m) == 0
        assert m.free_vertices() == list(range(5))
        assert m.matched_vertices() == []

    def test_add_and_mate(self):
        m = Matching(4)
        m.add(0, 2)
        assert m.size == 1
        assert m.mate(0) == 2 and m.mate(2) == 0
        assert m.is_matched(0) and m.is_free(1)
        assert m.contains_edge(0, 2) and m.contains_edge(2, 0)
        assert not m.contains_edge(0, 1)

    def test_add_conflicts_rejected(self):
        m = Matching(4, [(0, 1)])
        with pytest.raises(ValueError):
            m.add(1, 2)
        with pytest.raises(ValueError):
            m.add(3, 3)

    def test_remove(self):
        m = Matching(4, [(0, 1), (2, 3)])
        m.remove(0, 1)
        assert m.size == 1 and m.is_free(0) and m.is_free(1)
        with pytest.raises(ValueError):
            m.remove(0, 1)

    def test_remove_vertex_edge(self):
        m = Matching(4, [(1, 3)])
        assert m.remove_vertex_edge(3) == (1, 3)
        assert m.remove_vertex_edge(3) is None

    def test_edges_canonical(self):
        m = Matching(4, [(3, 2), (1, 0)])
        assert sorted(m.edges()) == [(0, 1), (2, 3)]

    def test_copy_and_eq(self):
        m = Matching(4, [(0, 1)])
        c = m.copy()
        assert c == m
        c.add(2, 3)
        assert c != m and m.size == 1

    def test_from_mate_array(self):
        m = Matching.from_mate_array([1, 0, None, None])
        assert m.size == 1 and m.contains_edge(0, 1)


class TestAugmentation:
    def test_augment_length_one(self):
        m = Matching(2)
        m.augment_along([0, 1])
        assert m.contains_edge(0, 1)

    def test_augment_length_three(self):
        # path 0-1-2-3 with (1,2) matched: augmenting to (0,1),(2,3)
        m = Matching(4, [(1, 2)])
        m.augment_along([0, 1, 2, 3])
        assert m.size == 2
        assert m.contains_edge(0, 1) and m.contains_edge(2, 3)

    def test_augment_rejects_odd_vertex_count(self):
        m = Matching(3)
        with pytest.raises(ValueError):
            m.augment_along([0, 1, 2])

    def test_augment_rejects_matched_endpoint(self):
        m = Matching(4, [(0, 1)])
        with pytest.raises(ValueError):
            m.augment_along([0, 2])

    def test_augment_rejects_non_alternating(self):
        m = Matching(4)
        with pytest.raises(ValueError):
            m.augment_along([0, 1, 2, 3])  # (1,2) is not matched

    def test_augment_rejects_repeated_vertex(self):
        m = Matching(4, [(1, 2)])
        with pytest.raises(ValueError):
            m.augment_along([0, 1, 1, 3])

    def test_failed_augment_leaves_matching_unchanged(self):
        m = Matching(4, [(1, 2)])
        before = m.copy()
        with pytest.raises(ValueError):
            m.augment_along([0, 1, 2, 2])
        assert m == before

    def test_augment_all(self):
        m = Matching(8, [(1, 2), (5, 6)])
        count = m.augment_all([[0, 1, 2, 3], [4, 5, 6, 7]])
        assert count == 2 and m.size == 4


class TestValidation:
    def test_validate_against_graph(self):
        g = Graph(4, [(0, 1)])
        m = Matching(4, [(0, 1)])
        m.validate(g)
        bad = Matching(4, [(2, 3)])
        with pytest.raises(AssertionError):
            bad.validate(g)

    def test_restricted_to(self):
        g = Graph(4, [(0, 1)])
        m = Matching(4, [(0, 1), (2, 3)])
        r = m.restricted_to(g)
        assert r.size == 1 and r.contains_edge(0, 1)
