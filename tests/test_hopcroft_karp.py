"""Tests for Hopcroft-Karp exact bipartite matching."""

import pytest

from conftest import brute_force_maximum_matching_size

from repro.graph.generators import path_graph, random_bipartite, cycle_graph
from repro.graph.graph import Graph
from repro.matching.hopcroft_karp import hopcroft_karp, maximum_bipartite_matching_size


class TestHopcroftKarp:
    def test_simple_path(self):
        m = hopcroft_karp(path_graph(5))
        m.validate(path_graph(5))
        assert m.size == 2

    def test_perfect_matching_on_complete_bipartite(self):
        g = Graph(6)
        for u in range(3):
            for v in range(3, 6):
                g.add_edge(u, v)
        m = hopcroft_karp(g, left=[0, 1, 2], right=[3, 4, 5])
        assert m.size == 3

    def test_matches_brute_force(self):
        for seed in range(6):
            g, left, right = random_bipartite(7, 8, 0.3, seed=seed)
            assert hopcroft_karp(g).size == brute_force_maximum_matching_size(g)

    def test_explicit_partition_agrees_with_auto(self):
        g, left, right = random_bipartite(10, 10, 0.2, seed=3)
        assert hopcroft_karp(g).size == hopcroft_karp(g, left=left, right=right).size

    def test_rejects_odd_cycle(self):
        with pytest.raises(ValueError):
            hopcroft_karp(cycle_graph(5))

    def test_empty_graph(self):
        assert maximum_bipartite_matching_size(Graph(5)) == 0

    def test_output_valid(self):
        g, _, _ = random_bipartite(15, 12, 0.15, seed=9)
        m = hopcroft_karp(g)
        m.validate(g)
