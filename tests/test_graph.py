"""Unit tests for repro.graph.graph."""

import pytest

from repro.graph.graph import Graph, normalize_edge


class TestBasics:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert list(g.edges()) == []
        assert g.max_degree() == 0

    def test_add_and_query_edges(self):
        g = Graph(4)
        assert g.add_edge(0, 1)
        assert not g.add_edge(1, 0)  # duplicate (either orientation)
        assert g.add_edge(2, 3)
        assert g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert (0, 1) in g

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.remove_edge(0, 1)
        assert not g.remove_edge(0, 1)
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_vertex_out_of_range(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.neighbors(-1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.max_degree() == 3

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 1), (2, 0)])
        edges = sorted(g.edges())
        assert edges == [(0, 2), (1, 3)]
        assert sorted(g.edge_list()) == edges

    def test_arcs_both_orientations(self):
        g = Graph(3, [(0, 1)])
        arcs = set(g.arcs())
        assert arcs == {(0, 1), (1, 0)}

    def test_normalize_edge(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)


class TestDerived:
    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1 and h.m == 2

    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, back = g.induced_subgraph([1, 2, 3])
        assert sub.n == 3 and sub.m == 2
        original_edges = {tuple(sorted((back[u], back[v]))) for u, v in sub.edges()}
        assert original_edges == {(1, 2), (2, 3)}

    def test_induced_subgraph_deduplicates(self):
        g = Graph(3, [(0, 1)])
        sub, back = g.induced_subgraph([0, 1, 1, 0])
        assert sub.n == 2 and sub.m == 1

    def test_subgraph_edges(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert sorted(g.subgraph_edges([0, 1, 3])) == [(0, 1)]

    def test_connected_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1, 2], [3, 4], [5]]

    def test_adjacency_matrix(self):
        import numpy as np

        g = Graph(3, [(0, 2)])
        mat = g.adjacency_matrix()
        assert mat.shape == (3, 3)
        assert mat[0, 2] and mat[2, 0] and not mat[0, 1]
        assert np.array_equal(mat, mat.T)

    def test_arboricity_upper_bound(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])  # a path: degeneracy 1
        assert g.arboricity_upper_bound() == 1
        k4 = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert k4.arboricity_upper_bound() == 3

    def test_from_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.m == 2
