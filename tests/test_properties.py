"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.graph.graph import Graph
from repro.graph.bipartite import BipartiteDoubleCover
from repro.matching.blossom import maximum_matching, maximum_matching_size
from repro.matching.greedy import greedy_maximal_matching, random_greedy_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.matching import Matching
from repro.matching.verify import is_maximal
from repro.core.config import ParameterProfile
from repro.core.streaming import semi_streaming_matching
from repro.core.boosting import boost_matching


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def graphs(draw, max_n=14, max_extra_edges=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    num_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    g = Graph(n)
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def bipartite_graphs(draw, max_side=8):
    left = draw(st.integers(min_value=1, max_value=max_side))
    right = draw(st.integers(min_value=1, max_value=max_side))
    g = Graph(left + right)
    for u in range(left):
        for v in range(left, left + right):
            if draw(st.booleans()):
                g.add_edge(u, v)
    return g, list(range(left)), list(range(left, left + right))


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

class TestMatchingProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_greedy_is_valid_maximal_and_2_approx(self, g):
        m = greedy_maximal_matching(g)
        m.validate(g)
        assert is_maximal(g, m)
        assert 2 * m.size >= maximum_matching_size(g)

    @given(graphs(), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_greedy_never_beats_optimum(self, g, seed):
        m = random_greedy_matching(g, seed=seed)
        m.validate(g)
        assert m.size <= maximum_matching_size(g)

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_exact_matching_is_valid_and_has_no_augmenting_path(self, g):
        m = maximum_matching(g)
        m.validate(g)
        # Berge: maximum iff no augmenting path; verify via size stability
        again = maximum_matching(g, initial=m)
        assert again.size == m.size

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_matching_size_monotone_under_edge_addition(self, g):
        base = maximum_matching_size(g)
        h = g.copy()
        added = False
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if not h.has_edge(u, v):
                    h.add_edge(u, v)
                    added = True
                    break
            if added:
                break
        assert maximum_matching_size(h) >= base

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hopcroft_karp_agrees_with_blossom(self, data):
        g, left, right = data
        assert hopcroft_karp(g, left=left, right=right).size == maximum_matching_size(g)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_double_cover_matching_at_least_base(self, g):
        cover = BipartiteDoubleCover(g)
        # mu(B) >= mu(G): lift a maximum matching of G edge by edge
        mg = maximum_matching(g)
        lifted = [(cover.outer_copy(u), cover.inner_copy(v)) for u, v in mg.edges()]
        assert len(lifted) == mg.size
        seen = set()
        for x, y in lifted:
            assert x not in seen and y not in seen
            seen.update((x, y))


class TestFrameworkProperties:
    @given(graphs(max_n=12), st.sampled_from([0.5, 0.25]))
    @settings(max_examples=25, deadline=None)
    def test_streaming_output_is_valid_and_never_exceeds_optimum(self, g, eps):
        m = semi_streaming_matching(g, eps, seed=0)
        m.validate(g)
        assert m.size <= maximum_matching_size(g)

    @given(graphs(max_n=12))
    @settings(max_examples=20, deadline=None)
    def test_boosting_never_shrinks_the_initial_matching(self, g):
        from repro.core.boosting import BoostingFramework

        framework = BoostingFramework(0.25, seed=0)
        initial = framework.initial_matching(g)
        boosted = framework.run(g, initial=initial)
        boosted.validate(g)
        assert boosted.size >= initial.size

    @given(st.sampled_from([0.5, 0.25, 0.125, 0.0625]))
    @settings(max_examples=10, deadline=None)
    def test_profile_schedule_well_formed(self, eps):
        for profile in (ParameterProfile.practical(eps), ParameterProfile.paper(eps)):
            assert profile.ell_max >= 3
            assert profile.label_default == profile.ell_max + 1
            assert all(h > 0 for h in profile.scales)
            for h in profile.scales:
                assert profile.phases(h) >= 1
                assert profile.pass_bundles(h) >= 1
                assert profile.structure_limit(h) >= 3

    @given(graphs(max_n=10))
    @settings(max_examples=15, deadline=None)
    def test_augmentation_records_increase_size_by_their_count(self, g):
        import random

        from repro.core.operations import apply_augmentations
        from repro.core.phase import DirectDriver, run_phase
        from repro.matching.greedy import greedy_maximal_matching

        m = greedy_maximal_matching(g)
        profile = ParameterProfile.practical(0.25)
        records = run_phase(g, m, profile, 0.5, DirectDriver(random.Random(0)),
                            check_invariants=True)
        before = m.size
        gained = apply_augmentations(m, records)
        m.validate(g)
        assert gained == len(records)
        assert m.size == before + gained
