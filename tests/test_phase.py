"""Tests for Alg-Phase: passes, drivers, backtracking (repro.core.phase)."""

import random

from repro.graph.generators import disjoint_paths, erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.operations import apply_augmentations, overtake_op
from repro.core.phase import (
    DirectDriver,
    augment_pass,
    backtrack_pass,
    contract_pass,
    run_phase,
    try_extend_arc,
)
from repro.core.structures import PhaseState


def make_state(graph, matching, ell_max=8):
    state = PhaseState(graph, matching, ell_max)
    state.init_structures()
    return state


class TestTryExtendArc:
    def test_extends_once_per_structure_per_pass(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        assert try_extend_arc(state, 0, 1) == "overtake"
        # second extension of the same structure in the same pass is skipped
        assert try_extend_arc(state, 0, 3) is None

    def test_skips_on_hold_structures(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        state.structures[0].on_hold = True
        assert try_extend_arc(state, 0, 1) is None

    def test_augment_via_arc(self):
        g = path_graph(2)
        m = Matching(2)
        state = make_state(g, m)
        assert try_extend_arc(state, 0, 1) == "augment"
        assert len(state.records) == 1

    def test_contract_via_arc(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 2, 3, 2)
        state.structures[0].extended = False  # allow another extension
        assert try_extend_arc(state, 4, 0) == "contract"


class TestSharedPasses:
    def test_contract_pass_finds_blossoms(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 2, 3, 2)
        assert contract_pass(state) == 1
        assert len(state.structures[0].working.vertices) == 5
        # second invocation has nothing left to do
        assert contract_pass(state) == 0

    def test_augment_pass_exhausts_type2_arcs(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        assert augment_pass(state) == 1
        assert augment_pass(state) == 0

    def test_backtrack_retreats_unmodified_structures(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        s = state.structures[0]
        s.modified = False
        assert backtrack_pass(state) >= 1
        assert s.working is s.root
        s.modified = False
        backtrack_pass(state)
        assert s.working is None  # becomes inactive at the root

    def test_backtrack_skips_modified_and_on_hold(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        s = state.structures[0]
        s.modified = True
        assert backtrack_pass(state) <= 1  # only the structure of vertex 3 moves
        assert s.working is s.root


class TestRunPhase:
    def test_phase_does_not_mutate_matching(self):
        g = disjoint_paths(3, 3)
        m = greedy_maximal_matching(g, edge_order=[(1, 2), (5, 6), (9, 10)])
        before = m.copy()
        profile = ParameterProfile.practical(0.25)
        records = run_phase(g, m, profile, 0.5, DirectDriver(random.Random(0)),
                            check_invariants=True)
        assert m == before
        assert len(records) >= 1

    def test_phase_records_apply_cleanly(self):
        g = erdos_renyi(30, 0.15, seed=3)
        m = greedy_maximal_matching(g)
        profile = ParameterProfile.practical(0.25)
        counters = Counters()
        records = run_phase(g, m, profile, 0.5, DirectDriver(random.Random(1)),
                            counters=counters, check_invariants=True)
        gained = apply_augmentations(m, records)
        assert gained == len(records)
        m.validate(g)
        assert counters.get("pass_bundles") >= 1

    def test_phase_on_optimal_matching_finds_nothing(self):
        from repro.matching.blossom import maximum_matching

        g = erdos_renyi(20, 0.2, seed=4)
        m = maximum_matching(g)
        profile = ParameterProfile.practical(0.25)
        records = run_phase(g, m, profile, 0.5, DirectDriver(random.Random(2)),
                            check_invariants=True)
        assert records == []

    def test_counters_progress(self):
        g = disjoint_paths(2, 5)
        m = greedy_maximal_matching(g, edge_order=[(1, 2), (3, 4), (7, 8), (9, 10)])
        profile = ParameterProfile.practical(0.25)
        counters = Counters()
        run_phase(g, m, profile, 0.5, DirectDriver(random.Random(3)),
                  counters=counters, check_invariants=True)
        assert counters.get("passes") >= 2  # extend + contract&augment per bundle
        assert counters.get("overtakes") >= 1
