"""Tests for the offline dynamic algorithm (Theorem 7.15 flavour)."""

from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads import insertion_only, planted_matching_churn, sliding_window
from repro.matching.blossom import maximum_matching_size
from repro.instrumentation.counters import Counters
from repro.dynamic.offline import OfflineDynamicMatching


EPS = 0.25


class TestOffline:
    def test_sizes_reported_per_update(self):
        updates = insertion_only(20, 40, seed=1)
        alg = OfflineDynamicMatching(20, EPS, seed=1)
        sizes = alg.run(updates)
        assert len(sizes) == updates.length
        assert all(b >= a - 1 for a, b in zip(sizes, sizes[1:]))  # sizes move by <= 1

    def test_final_size_near_optimal(self):
        updates = planted_matching_churn(10, rounds=3, seed=2)
        n = updates.n
        alg = OfflineDynamicMatching(n, EPS, seed=2)
        sizes = alg.run(updates)
        dg = DynamicGraph(n)
        dg.apply_all(updates)
        opt = maximum_matching_size(dg.graph)
        assert sizes[-1] >= opt / (1 + EPS) - 1

    def test_epoch_plan_covers_sequence(self):
        updates = sliding_window(20, 60, window=15, seed=3).materialize()
        alg = OfflineDynamicMatching(20, EPS, seed=3)
        boundaries = alg.plan_epochs(updates)
        assert boundaries[0] == 0 and boundaries[-1] == len(updates)
        assert all(a < b for a, b in zip(boundaries, boundaries[1:]))

    def test_accounting(self):
        updates = insertion_only(20, 50, seed=4)
        counters = Counters()
        alg = OfflineDynamicMatching(20, EPS, counters=counters, seed=4)
        alg.run(updates)
        assert counters.get("offline_epochs") >= 1
        assert counters.get("dyn_updates") == updates.length
        assert alg.amortized_update_work() > 0

    def test_empty_sequence(self):
        alg = OfflineDynamicMatching(10, EPS, seed=5)
        assert alg.run([]) == []

    def test_delete_only_tail_crosses_epoch_boundary(self):
        """Warm-start rebuilds must survive a delete-only epoch crossing.

        The tail deletes every edge, so epochs past the first rebuild from a
        shrinking graph down to an empty one -- the warm-start path (finest
        scales only) with nothing left to augment.  Both repair modes must
        agree on every per-update size.
        """
        import dataclasses

        from repro.core.config import ParameterProfile
        from repro.graph.dynamic_graph import Update

        edges = [(i, i + 8) for i in range(8)]
        updates = ([Update.insert(u, v) for u, v in edges]
                   + [Update.delete(u, v) for u, v in edges])
        rebuild = ParameterProfile.practical(EPS)
        results = []
        for profile in (rebuild,
                        dataclasses.replace(rebuild, repair="incremental")):
            counters = Counters()
            alg = OfflineDynamicMatching(16, EPS, profile=profile,
                                         counters=counters, seed=6)
            boundaries = alg.plan_epochs(updates)
            # the delete-only tail must actually cross an epoch boundary
            assert any(len(updates) // 2 < b < len(updates)
                       for b in boundaries), boundaries
            sizes = alg.run(updates)
            assert sizes[-1] == 0
            assert counters.get("offline_epochs") >= 2
            results.append((sizes, counters.as_dict()))
        assert results[0] == results[1]

    def test_snapshotting_oracle_sees_updates(self):
        """The shared per-run oracle must be kept informed of edge changes.

        Regression test for the PR 4 oracle hoist: OMvWeakOracle snapshots
        the (initially empty) graph at construction, so without
        ``notify_update`` every epoch rebuild would query an all-zeros
        matrix and sizes would silently collapse.  The workload inserts each
        path's middle edge first, so the intra-epoch patching (match an
        inserted edge iff both endpoints are free) gets stuck at half the
        optimum and only a *working* oracle's rebuilds can augment past it.
        """
        from repro.graph.dynamic_graph import Update
        from repro.dynamic.weak_oracles import OMvWeakOracle

        paths, n = 5, 20
        updates = []
        for p in range(paths):  # path a-b-c-d, middle edge first
            a = 4 * p
            updates.extend([Update.insert(a + 1, a + 2),
                            Update.insert(a, a + 1),
                            Update.insert(a + 2, a + 3)])
        alg = OfflineDynamicMatching(
            n, EPS, seed=6, oracle_factory=lambda g: OMvWeakOracle(g))
        sizes = alg.run(updates)
        opt = 2 * paths
        # patching alone tops out at `paths`; a functional oracle must get
        # within the (1+eps) band of 2*paths
        assert sizes[-1] >= opt / (1 + EPS) - 1


def test_empty_updates_excluded_from_amortization():
    """Offline runs share the Table 2 EMPTY-padding accounting convention."""
    from repro.graph.dynamic_graph import Update

    updates = insertion_only(12, 20, seed=5).materialize()
    padded = []
    for upd in updates:
        padded.append(upd)
        padded.append(Update.empty())

    plain_counters = Counters()
    OfflineDynamicMatching(12, 0.25, counters=plain_counters, seed=5).run(updates)
    padded_counters = Counters()
    sizes = OfflineDynamicMatching(12, 0.25, counters=padded_counters,
                                   seed=5).run(padded)
    assert len(sizes) == len(padded)  # one size reading per update, padding too
    assert padded_counters.get("dyn_updates") == plain_counters.get("dyn_updates")
    assert padded_counters.get("dyn_empty_updates") == len(updates)
