"""Unit tests for greedy maximal matchings (the 2-approximate oracles)."""

from repro.graph.generators import erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching_size
from repro.matching.greedy import (
    greedy_maximal_matching,
    greedy_on_vertex_subset,
    maximal_matching_is_maximal,
    random_greedy_matching,
)


class TestGreedy:
    def test_empty_graph(self):
        m = greedy_maximal_matching(Graph(4))
        assert m.size == 0

    def test_is_maximal_and_valid(self, small_graphs):
        for name, g in small_graphs:
            m = greedy_maximal_matching(g)
            m.validate(g)
            assert maximal_matching_is_maximal(g, m), name

    def test_two_approximation(self, small_graphs):
        for name, g in small_graphs:
            m = greedy_maximal_matching(g)
            opt = maximum_matching_size(g)
            assert 2 * m.size >= opt, name

    def test_respects_edge_order(self):
        g = path_graph(4)  # edges (0,1),(1,2),(2,3)
        m = greedy_maximal_matching(g, edge_order=[(1, 2)])
        assert m.size == 1 and m.contains_edge(1, 2)

    def test_forbidden_vertices(self):
        g = path_graph(4)
        m = greedy_maximal_matching(g, forbidden=[1])
        assert m.is_free(1)
        assert m.size == 1 and m.contains_edge(2, 3)


class TestRandomGreedy:
    def test_deterministic_given_seed(self):
        g = erdos_renyi(30, 0.2, seed=1)
        a = random_greedy_matching(g, seed=7)
        b = random_greedy_matching(g, seed=7)
        assert a == b

    def test_valid_and_maximal(self):
        g = erdos_renyi(40, 0.1, seed=2)
        m = random_greedy_matching(g, seed=3)
        m.validate(g)
        assert maximal_matching_is_maximal(g, m)


class TestSubsetGreedy:
    def test_only_uses_subset_edges(self):
        g = erdos_renyi(30, 0.2, seed=4)
        subset = list(range(10))
        edges = greedy_on_vertex_subset(g, subset, seed=1)
        s = set(subset)
        for u, v in edges:
            assert u in s and v in s
            assert g.has_edge(u, v)

    def test_result_is_matching(self):
        g = erdos_renyi(30, 0.3, seed=5)
        edges = greedy_on_vertex_subset(g, list(range(20)), seed=2)
        used = set()
        for u, v in edges:
            assert u not in used and v not in used
            used.update((u, v))

    def test_empty_subset(self):
        g = erdos_renyi(10, 0.5, seed=6)
        assert greedy_on_vertex_subset(g, []) == []
