"""Tests for the three basic operations: Augment, Contract, Overtake (§4.5)."""

import pytest

from repro.graph.graph import Graph
from repro.graph.generators import path_graph
from repro.matching.matching import Matching
from repro.core.structures import PhaseState
from repro.core.operations import (
    apply_augmentations,
    augment_op,
    contract_op,
    overtake_op,
)


def make_state(graph, matching, ell_max=8):
    state = PhaseState(graph, matching, ell_max)
    state.init_structures()
    return state


class TestOvertake:
    def test_unvisited_pair_joins_structure(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        s = state.structures[0]
        assert s.size == 3
        assert state.is_inner(1) and state.is_outer(2)
        assert state.label_of_edge(1, 2) == 1
        assert s.working.base == 2
        assert s.modified and s.extended
        state.check_invariants()

    def test_precondition_k_less_than_label(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        # re-overtaking with a non-smaller label must be rejected
        with pytest.raises(ValueError):
            overtake_op(state, 0, 1, 5)

    def test_requires_working_tail(self):
        g = path_graph(5)
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)  # working vertex of S_0 is now Omega(2)
        with pytest.raises(ValueError):
            overtake_op(state, 0, 1, 1)

    def test_requires_matched_head(self):
        g = path_graph(3)
        m = Matching(3, [(1, 2)])
        state = make_state(g, m)
        with pytest.raises(ValueError):
            overtake_op(state, 1, 0, 1)

    def test_cross_structure_overtake_moves_subtree(self):
        # 0 - 1=2 - 3 ... and 4 - 1 (4 free, adjacent to inner vertex 1 of S_0)
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 5), (4, 1)])
        m = Matching(6, [(1, 2), (3, 5)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 3)        # S_0 takes (1,2) with a high label
        s0, s4 = state.structures[0], state.structures[4]
        assert s0.size == 3 and s4.size == 1
        # S_4 can now steal (1,2) because it offers a smaller label
        overtake_op(state, 4, 1, 1)
        assert s4.size == 3 and s0.size == 1
        assert state.structure_of(1) is s4 and state.structure_of(2) is s4
        assert state.label_of_edge(1, 2) == 1
        assert s4.working.base == 2
        assert s4.extended and s4.modified and s0.modified
        state.check_invariants()

    def test_cross_structure_overtake_updates_victims_working_vertex(self):
        # S_0 grows a path of two matched edges; S_6 then steals the first
        # matched pair, so S_0's working vertex must retreat to Omega(0).
        g = Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (6, 1)])
        m = Matching(7, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 3)
        overtake_op(state, 2, 3, 4)
        s0 = state.structures[0]
        assert s0.size == 5 and s0.working.base == 4
        overtake_op(state, 6, 1, 1)
        s6 = state.structures[6]
        assert s6.size == 5          # took the whole subtree below vertex 1
        assert s0.size == 1
        assert s0.working is s0.root  # victim's working vertex retreats
        assert s6.working.base == 4   # stolen working vertex travels along
        state.check_invariants()

    def test_ancestor_overtake_rejected(self):
        # path 0-1=2-3=4 plus the chord (4, 1): once the structure of 0 has
        # grown to working vertex Omega(4), vertex 1 is an inner *ancestor*,
        # and overtaking it (precondition P2) must be refused even though the
        # label check would allow it.
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 3)
        overtake_op(state, 2, 3, 4)
        assert state.arc_type(4, 1) == 0  # P2 exclusion reflected in the type
        with pytest.raises(ValueError):
            overtake_op(state, 4, 1, 1)


class TestContract:
    def _grow_cycle_structure(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 2, 3, 2)
        return g, m, state

    def test_contract_builds_blossom(self):
        g, m, state = self._grow_cycle_structure()
        s = state.structures[0]
        node = contract_op(state, 4, 0)
        assert node.outer and len(node.vertices) == 5
        assert node.base == 0
        assert s.working is node
        assert s.root is node
        # labels of matched edges inside the blossom drop to 0
        assert state.label_of_edge(1, 2) == 0
        assert state.label_of_edge(3, 4) == 0
        state.check_invariants()

    def test_contract_requires_same_structure(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 5)])
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 5, 4, 1)
        with pytest.raises(ValueError):
            contract_op(state, 2, 3)

    def test_contract_requires_working_vertex(self):
        g, m, state = self._grow_cycle_structure()
        # (0, 4): Omega(0) is not the working vertex (Omega(4) is)
        with pytest.raises(ValueError):
            contract_op(state, 0, 4)


class TestAugment:
    def test_simple_augmentation_between_structures(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        record = augment_op(state, 2, 3)
        assert sorted(record.vertices) == [0, 1, 2, 3]
        # structures removed, vertices marked removed
        assert not state.structures
        assert all(state.removed[v] for v in range(4))
        # applying the record increases the matching size by one
        gained = apply_augmentations(m, [record])
        assert gained == 1 and m.size == 2
        m.validate(g)

    def test_augment_through_blossom(self):
        # 5-cycle structure of 0 contracted into a blossom, plus a pendant free
        # vertex 5 attached to cycle vertex 3: augmenting must route through
        # the blossom.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (3, 5)])
        m = Matching(6, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 2, 3, 2)
        contract_op(state, 4, 0)
        record = augment_op(state, 3, 5)
        gained = apply_augmentations(m, [record])
        assert gained == 1 and m.size == 3
        m.validate(g)

    def test_augment_requires_different_structures(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        m = Matching(5, [(1, 2), (3, 4)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 2, 3, 2)
        with pytest.raises(ValueError):
            augment_op(state, 4, 0)

    def test_augment_requires_graph_edge(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        state = make_state(g, m)
        with pytest.raises(ValueError):
            augment_op(state, 0, 3)

    def test_records_apply_disjointly(self):
        g = Graph(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)])
        m = Matching(8, [(1, 2), (5, 6)])
        state = make_state(g, m)
        overtake_op(state, 0, 1, 1)
        overtake_op(state, 4, 5, 1)
        r1 = augment_op(state, 2, 3)
        r2 = augment_op(state, 6, 7)
        gained = apply_augmentations(m, [r1, r2])
        assert gained == 2 and m.size == 4
        m.validate(g)
