"""Smoke tests for the example scripts (deliverable: runnable examples)."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_all_examples_compile():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        py_compile.compile(str(script), doraise=True)


def test_quickstart_runs_and_reports_quality():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    assert "approximation factor" in result.stdout
    assert "matching validated." in result.stdout


def test_trace_replay_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "trace_replay.py")],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    assert "round-trips byte-identically: True" in result.stdout
    assert "backend runs byte-identical: True" in result.stdout
    assert "karate club" in result.stdout


def test_congest_demo_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "congest_demo.py")],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "Corollary A.2" in result.stdout
