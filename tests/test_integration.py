"""Cross-module integration tests: every framework on the same workloads."""

import pytest

from repro.graph.generators import blossom_gadget, disjoint_paths, erdos_renyi, planted_matching
from repro.workloads import planted_matching_churn
from repro.matching.blossom import maximum_matching_size
from repro.matching.verify import certify_approximation
from repro.instrumentation.counters import Counters
from repro.core.streaming import semi_streaming_matching
from repro.core.boosting import boost_matching
from repro.core.dynamic_boosting import boost_matching_weak
from repro.core.oracles import ExactMatchingOracle, GreedyMatchingOracle
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle, OMvWeakOracle
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.baselines.fmu22 import fmu22_boost
from repro.mpc.boost_mpc import mpc_boosted_matching
from repro.congest.boost_congest import congest_boosted_matching


EPS = 0.25


def _workloads():
    yield "er", erdos_renyi(50, 0.08, seed=21)
    yield "paths", disjoint_paths(4, 7)
    yield "blossoms", blossom_gadget(4, 3)
    g, _ = planted_matching(25, 0.02, seed=22)
    yield "planted", g


class TestAllFrameworksAgreeOnQuality:
    @pytest.mark.parametrize("name,graph", list(_workloads()))
    def test_static_frameworks(self, name, graph):
        opt = maximum_matching_size(graph)
        runs = {
            "streaming": semi_streaming_matching(graph, EPS, seed=1),
            "boost-greedy": boost_matching(graph, EPS, seed=1),
            "boost-exact-oracle": boost_matching(graph, EPS, oracle=ExactMatchingOracle(), seed=1),
            "weak-greedy": boost_matching_weak(graph, EPS, GreedyInducedWeakOracle(graph, seed=1), seed=1),
            "fmu22": fmu22_boost(graph, EPS, seed=1),
        }
        for algo, matching in runs.items():
            matching.validate(graph)
            ok, ratio = certify_approximation(graph, matching, EPS, optimum=opt)
            assert ok, f"{algo} on {name}: ratio {ratio}"

    @pytest.mark.parametrize("name,graph", list(_workloads())[:2])
    def test_model_instantiations(self, name, graph):
        opt = maximum_matching_size(graph)
        m_mpc, c_mpc = mpc_boosted_matching(graph, EPS, seed=2)
        m_con, c_con = congest_boosted_matching(graph, EPS, seed=2)
        for algo, matching in (("mpc", m_mpc), ("congest", m_con)):
            matching.validate(graph)
            ok, ratio = certify_approximation(graph, matching, EPS, optimum=opt)
            assert ok, f"{algo} on {name}: ratio {ratio}"
        assert c_mpc.get("mpc_total_rounds") > 0
        assert c_con.get("congest_rounds") > 0


class TestOracleCallAccountingConsistency:
    def test_same_counters_compose_across_components(self):
        graph = erdos_renyi(40, 0.1, seed=30)
        counters = Counters()
        boost_matching(graph, EPS, oracle=GreedyMatchingOracle(), counters=counters, seed=3)
        calls_static = counters.get("oracle_calls")
        assert calls_static > 0
        # the same bag can keep accumulating across runs
        boost_matching(graph, EPS, oracle=GreedyMatchingOracle(), counters=counters, seed=4)
        assert counters.get("oracle_calls") > calls_static


class TestDynamicEndToEnd:
    def test_dynamic_with_omv_oracle_stays_approximate(self):
        updates = planted_matching_churn(8, rounds=2, seed=31)
        counters = Counters()
        alg = FullyDynamicMatching(
            updates.n, EPS, counters=counters, seed=31,
            oracle_factory=lambda g: OMvWeakOracle(g, counters=counters))
        for upd in updates:
            alg.update(upd)
        alg.current_matching().validate(alg.graph)
        ok, ratio = certify_approximation(alg.graph, alg.current_matching(), EPS)
        assert ok, ratio
        assert counters.get("omv_queries") > 0
        assert counters.get("weak_oracle_calls") > 0

    def test_dynamic_matches_static_on_final_graph(self):
        updates = planted_matching_churn(10, rounds=3, seed=32)
        alg = FullyDynamicMatching(updates.n, EPS, seed=32)
        for upd in updates:
            alg.update(upd)
        static = boost_matching(alg.graph, EPS, seed=32)
        dynamic_size = alg.current_matching().size
        # both are (1+eps)-approximate, so they are within (1+eps) of each other
        assert dynamic_size >= static.size / (1 + EPS) - 1
        assert static.size >= dynamic_size / (1 + EPS) - 1
