"""Tests for the parameter schedules (repro.core.config)."""

import math

import pytest

from repro.core.config import ParameterProfile


class TestConstruction:
    def test_eps_rounded_to_power_of_two_inverse(self):
        p = ParameterProfile.practical(0.3)
        assert p.eps == 0.25
        p = ParameterProfile.practical(0.25)
        assert p.eps == 0.25
        p = ParameterProfile.practical(0.2)
        assert p.eps == 0.125

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValueError):
            ParameterProfile.practical(0.0)
        with pytest.raises(ValueError):
            ParameterProfile.practical(0.7)

    def test_paper_profile_formulas(self):
        p = ParameterProfile.paper(0.25, c=2.0)
        assert p.ell_max == 12  # 3/eps
        assert p.phase_factor == 144.0 and p.bundle_factor == 72.0
        assert p.delta == pytest.approx(0.25 ** 107)
        assert not p.early_exit
        # 22 * c * ln(1/eps)
        assert p.sim_iterations == math.ceil(22 * 2 * math.log(4))

    def test_practical_profile_is_small(self):
        p = ParameterProfile.practical(0.25)
        assert p.early_exit
        assert p.phases(0.5) <= p.max_phase_cap
        assert p.sim_iterations < 20


class TestSchedule:
    def test_scales_decrease_to_floor(self):
        p = ParameterProfile.practical(0.25)
        assert p.scales[0] == 0.5
        for a, b in zip(p.scales, p.scales[1:]):
            assert b == a / 2
        assert p.scales[-1] >= (p.eps ** 2) / 64 - 1e-12

    def test_phase_and_bundle_counts_grow_as_scale_shrinks(self):
        p = ParameterProfile.paper(0.25)
        assert p.phases(0.25) > p.phases(0.5)
        assert p.pass_bundles(0.25) > p.pass_bundles(0.5)

    def test_structure_limit(self):
        p = ParameterProfile.practical(0.25)
        assert p.structure_limit(0.5) >= 3
        assert p.structure_limit(0.125) > p.structure_limit(0.5)

    def test_structure_size_bound_lemma45(self):
        p = ParameterProfile.paper(0.25)
        assert p.structure_size_bound(0.5) == math.ceil(36 * 0.5 / 0.25)

    def test_stages_cover_all_labels(self):
        p = ParameterProfile.practical(0.25)
        stages = list(p.stages())
        assert stages[0] == 0 and stages[-1] == p.ell_max

    def test_label_default(self):
        p = ParameterProfile.practical(0.25)
        assert p.label_default == p.ell_max + 1


class TestHeadlineBounds:
    def test_theorem11_improves_on_fmu22(self):
        for eps in (0.25, 0.125, 0.0625):
            p = ParameterProfile.paper(eps)
            ours = p.paper_invocation_bound()
            assert ours < p.fmu22_mmss25_invocation_bound() < p.fmu22_invocation_bound()

    def test_bounds_grow_as_eps_shrinks(self):
        b1 = ParameterProfile.paper(0.25).paper_invocation_bound()
        b2 = ParameterProfile.paper(0.125).paper_invocation_bound()
        assert b2 > b1
