"""Tests for the execution layer (``repro.exec``) and its integrations.

Covers chunk partitioning, the word-size convention, executor resolution and
ordering, chunked MPC/CONGEST rounds (serial and process-pool, including the
closure fallback and state shipping), the CSR message-exchange fast path, and
the bench runner's ``--jobs`` path: deterministic records, exact counter
merges, and per-scenario crash isolation.
"""

import os
import textwrap

import pytest

from repro.bench import registry, runner
from repro.congest.simulator import (
    _FAST_PATH_MIN_MESSAGES,
    CongestSimulator,
    MessageTooLarge,
)
from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    contiguous_chunks,
    is_picklable,
    payload_words,
    resolve_executor,
)
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.mpc.simulator import MPCSimulator


# ----------------------------------------------------------------- chunking
class TestChunking:
    def test_partition_covers_exactly_once_in_order(self):
        for count in (1, 2, 7, 16, 100):
            for chunks in (1, 2, 3, count, count + 5):
                spans = contiguous_chunks(count, chunks)
                flat = [i for start, stop in spans for i in range(start, stop)]
                assert flat == list(range(count))
                sizes = [stop - start for start, stop in spans]
                assert max(sizes) - min(sizes) <= 1
                assert 0 not in sizes

    def test_empty_and_invalid(self):
        assert contiguous_chunks(0, 3) == []
        with pytest.raises(ValueError):
            contiguous_chunks(-1, 2)
        with pytest.raises(ValueError):
            contiguous_chunks(5, 0)


# -------------------------------------------------------------------- words
class TestPayloadWords:
    def test_convention(self):
        assert payload_words((1, 2, 3)) == 3
        assert payload_words([1, 2]) == 2
        assert payload_words(()) == 1          # floor of one word
        assert payload_words(7) == 1
        assert payload_words(None) == 1
        assert payload_words({"a": 1, "b": 2}) == 4
        assert payload_words({1, 2, 3}) == 3
        assert payload_words("tiny") == 1
        assert payload_words("x" * 80) == 10   # 8 bytes per word

    def test_nesting_cannot_smuggle_words(self):
        # sizing is recursive: wrapping a big payload in a container must
        # not shrink it to the container's length
        assert payload_words((tuple(range(100)),)) == 100
        assert payload_words({"k": tuple(range(100))}) == 101
        assert payload_words([[1, 2], [3, 4, 5]]) == 5
        assert payload_words(("tag", ("x" * 80,))) == 11

    def test_strings_sized_by_encoded_bytes(self):
        # 32 CJK chars are ~96 UTF-8 bytes, not 32: 12 words, not 4
        assert payload_words("日" * 32) == 12
        assert payload_words(b"\xff" * 16) == 2

    def test_unknown_type_uses_default(self):
        class Opaque:
            pass

        assert payload_words(Opaque()) is None
        assert payload_words(Opaque(), default=1) == 1
        # an unsizable element poisons its container under the strict rule
        assert payload_words((1, Opaque())) is None
        assert payload_words((1, Opaque()), default=1) == 2


# ---------------------------------------------------------------- executors
def _square(x):
    return x * x


class TestExecutors:
    def test_serial_map_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_order(self):
        with ProcessExecutor(2) as ex:
            assert ex.map(_square, list(range(10))) == [i * i for i in range(10)]

    def test_resolve(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        ex = resolve_executor(3)
        assert isinstance(ex, ProcessExecutor) and ex.parallelism == 3
        assert resolve_executor(ex) is ex
        with pytest.raises(ValueError):
            resolve_executor("threads")
        with pytest.raises(TypeError):
            resolve_executor(1.5)

    def test_is_picklable(self):
        assert is_picklable(_square)
        assert not is_picklable(lambda x: x)

    def test_picklability_probe_caches_per_object(self, monkeypatch):
        import repro.exec.executor as executor_mod
        from repro.exec import PicklabilityProbe

        calls = []
        real = executor_mod.is_picklable
        monkeypatch.setattr(executor_mod, "is_picklable",
                            lambda obj: (calls.append(obj), real(obj))[1])
        probe = PicklabilityProbe()
        assert probe(_square) is True
        assert probe(_square) is True
        assert len(calls) == 1          # second answer came from the cache
        assert probe(lambda x: x) is False

    def test_probe_strong_cache_covers_non_weakrefable(self, monkeypatch):
        # slotted instances without __weakref__ reject weak keys; they must
        # still be memoized (bounded strong LRU) instead of re-pickled
        # every round
        import repro.exec.executor as executor_mod
        from repro.exec import PicklabilityProbe

        class Slotted:
            __slots__ = ("x",)

            def __init__(self, x):
                self.x = x

            def __call__(self, task):
                return self.x

        calls = []
        real = executor_mod.is_picklable
        monkeypatch.setattr(executor_mod, "is_picklable",
                            lambda obj: (calls.append(obj), real(obj))[1])
        probe = PicklabilityProbe()
        program = Slotted(1)
        first = probe(program)
        assert probe(program) is first
        assert len(calls) == 1          # strong cache answered the repeat

    def test_probe_strong_cache_is_bounded_and_identity_checked(self):
        from repro.exec import PicklabilityProbe
        from repro.exec.executor import _STRONG_CACHE_LIMIT

        class Slotted:
            __slots__ = ()

            def __call__(self, task):
                return task

        probe = PicklabilityProbe()
        kept = [Slotted() for _ in range(_STRONG_CACHE_LIMIT + 3)]
        for obj in kept:
            probe(obj)
        assert len(probe._strong) == _STRONG_CACHE_LIMIT  # LRU evicts
        # identity check: a different object reusing an evicted id can
        # never be served a stale answer (the stored object is compared
        # with ``is``)
        survivor = kept[-1]
        assert probe._strong[id(survivor)][0] is survivor


# ------------------------------------------------------- chunked MPC rounds
def _mpc_echo_program(machine_id, items):
    """Picklable machine program: forward each item to the next machine."""
    return [((machine_id + 1) % 4, ("item", machine_id, item))
            for item in items]


class TestChunkedMPC:
    def _run(self, **sim_kwargs):
        counters = Counters()
        sim = MPCSimulator(4, counters=counters, **sim_kwargs)
        sim.scatter(list(range(8)))
        sim.round(_mpc_echo_program)
        sim.close()
        return [list(s) for s in sim.storage], counters.as_dict()

    def test_chunked_serial_matches_inline(self):
        baseline = self._run()
        chunked = self._run(executor="serial", chunks=3)
        assert chunked == baseline

    def test_process_pool_matches_inline(self):
        baseline = self._run()
        pooled = self._run(executor=2)
        assert pooled == baseline

    def test_close_leaves_shared_executor_running(self):
        # a caller-owned executor may be shared between simulators; close()
        # must only tear down pools the simulator created itself
        shared = SerialExecutor()
        sim_a = MPCSimulator(2, executor=shared)
        sim_b = MPCSimulator(2, executor=shared)
        closed = []
        shared.close = lambda: closed.append(True)  # type: ignore[assignment]
        sim_a.close()
        sim_b.close()
        assert not closed
        owned = MPCSimulator(2, executor=2)
        owned.close()  # owns the resolved ProcessExecutor: must not raise

    def test_closure_falls_back_to_inline(self):
        # a closure cannot cross a process boundary; the round must still
        # run (inline) and its nonlocal mutation must be visible
        seen = []
        sim = MPCSimulator(3, executor=2)
        sim.scatter([10, 11, 12])

        def program(machine_id, items):
            seen.append(machine_id)
            return []

        sim.round(program)
        sim.close()
        assert seen == [0, 1, 2]


# --------------------------------------------------- chunked CONGEST rounds
def _congest_state_program(v, state, inbox):
    """Picklable vertex program: record the round locally, ping neighbors."""
    state["rounds_seen"] = state.get("rounds_seen", 0) + 1
    return {}


class TestChunkedCongest:
    def test_process_pool_ships_state_back(self):
        g = erdos_renyi(12, 0.3, seed=0)
        sim = CongestSimulator(g, executor=2)
        sim.round(_congest_state_program)
        sim.round(_congest_state_program)
        sim.close()
        assert all(st.get("rounds_seen") == 2 for st in sim.state)

    def test_chunked_matches_inline_messages(self):
        g = erdos_renyi(20, 0.3, seed=1)

        def run(**kwargs):
            counters = Counters()
            sim = CongestSimulator(g, counters=counters, **kwargs)

            def program(v, state, inbox):
                return {w: (v, w) for w in g.neighbors(v)}

            sim.round(program)
            sim.round(lambda v, state, inbox: {})
            inbox_snapshot = [dict(i) for i in sim._inboxes]
            sim.close()
            return counters.as_dict(), inbox_snapshot

        # closures force the inline path even with an executor configured,
        # so this exercises the chunked *serial* execution seam
        assert run() == run(executor="serial", chunks=4)


# -------------------------------------------------- CSR exchange fast path
class TestCongestFastPath:
    def _flood_program(self, g):
        def program(v, state, inbox):
            return {w: (v, w) for w in g.neighbors(v)}
        return program

    def _run_round(self, g):
        counters = Counters()
        sim = CongestSimulator(g, counters=counters)
        sim.round(self._flood_program(g))
        return sim, counters

    def test_fast_path_parity_with_adjset(self):
        base = erdos_renyi(40, 0.2, seed=3)
        assert 2 * base.m >= _FAST_PATH_MIN_MESSAGES
        g_slow = base.with_backend("adjset")
        g_fast = base.with_backend("csr")
        sim_slow, c_slow = self._run_round(g_slow)
        sim_fast, c_fast = self._run_round(g_fast)
        assert c_slow.as_dict() == c_fast.as_dict()
        assert sim_slow._inboxes == sim_fast._inboxes

    def test_fast_path_rejects_non_neighbor(self):
        g = erdos_renyi(40, 0.2, seed=3).with_backend("csr")
        flood = self._flood_program(g)

        def program(v, state, inbox):
            out = flood(v, state, inbox)
            if v == 0:
                # vertex 1000 % n: guaranteed-bogus partner
                non_neighbors = [w for w in range(g.n)
                                 if w != v and not g.has_edge(v, w)]
                out[non_neighbors[0]] = ("bad",)
            return out

        sim = CongestSimulator(g)
        with pytest.raises(ValueError, match="non-neighbor"):
            sim.round(program)

    def test_fast_path_rejects_oversized(self):
        g = erdos_renyi(40, 0.2, seed=3).with_backend("csr")
        flood = self._flood_program(g)

        def program(v, state, inbox):
            out = flood(v, state, inbox)
            if v == 1:
                out[next(iter(g.neighbors(v)))] = tuple(range(10))
            return out

        sim = CongestSimulator(g, strict=True)
        with pytest.raises(MessageTooLarge):
            sim.round(program)

    def test_edge_mask_parity(self):
        np = pytest.importorskip("numpy")
        base = erdos_renyi(25, 0.25, seed=5)
        adj = base.with_backend("adjset")
        csr = base.with_backend("csr")
        rng_pairs = [(u, v) for u in range(-2, 27) for v in range(-2, 27)]
        us = np.array([p[0] for p in rng_pairs])
        vs = np.array([p[1] for p in rng_pairs])
        assert (adj.edge_mask(us, vs) == csr.edge_mask(us, vs)).all()
        expected = [base.has_edge(u, v) if 0 <= u < 25 and 0 <= v < 25
                    else False for u, v in rng_pairs]
        assert csr.edge_mask(us, vs).tolist() == expected


# ---------------------------------------------------- CONGEST size sizing
class TestCongestSizing:
    def _sim(self, strict=True):
        g = erdos_renyi(6, 0.9, seed=0)
        counters = Counters()
        return CongestSimulator(g, counters=counters, strict=strict), counters

    def test_containers_are_sized(self):
        sim, _ = self._sim()
        with pytest.raises(MessageTooLarge):
            sim._check_size({"a": 1, "b": 2, "c": 3})  # 6 words
        with pytest.raises(MessageTooLarge):
            sim._check_size({1, 2, 3, 4, 5})
        with pytest.raises(MessageTooLarge):
            sim._check_size("a very long string payload that is way over")

    def test_unknown_payload_rejected_under_strict(self):
        class Opaque:
            pass

        sim, counters = self._sim(strict=True)
        with pytest.raises(MessageTooLarge, match="cannot size"):
            sim._check_size(Opaque())
        sim2, counters2 = self._sim(strict=False)
        sim2._check_size(Opaque())
        assert counters2.get("congest_message_violations") == 1

    def test_small_tuples_still_pass(self):
        sim, counters = self._sim()
        sim._check_size(("propose",))
        sim._check_size((1, 2, 3, 4))
        sim._check_size(3)
        assert counters.get("congest_message_violations") == 0


# ------------------------------------------------------ Counters merging
class TestCountersMerge:
    def test_merge_accepts_mapping_and_bag(self):
        a = Counters()
        a.add("x", 2)
        a.merge({"x": 1, "y": 3})
        b = Counters.from_dict({"x": 3, "y": 3})
        assert a == b
        b.merge(a)
        assert b.as_dict() == {"x": 6.0, "y": 6.0}

    def test_partitioned_merge_equals_serial(self):
        parts = [{"w": 1, "z": 2}, {"w": 4}, {"z": 0.5}]
        total = Counters()
        for part in parts:
            total.merge(part)
        serial = Counters()
        for part in parts:
            for key, value in part.items():
                serial.add(key, value)
        assert total == serial


# --------------------------------------------- cross-process determinism
class TestAlgorithmDeterminism:
    def test_weak_boosting_insensitive_to_heap_layout(self):
        """Seeded runs must not depend on object allocation addresses.

        Regression test for the address-hash-ordered StructNode containers
        (``Structure.nodes``, Contract's absorbed-path set) that made
        identical seeded runs diverge between bench worker processes: a pile
        of allocations in between perturbs the heap layout exactly the way a
        different worker history would.
        """
        from repro.core.dynamic_boosting import boost_matching_weak
        from repro.dynamic.weak_oracles import GreedyInducedWeakOracle

        def run():
            g = erdos_renyi(60, 0.08, seed=0)
            counters = Counters()
            m = boost_matching_weak(g, 0.25,
                                    GreedyInducedWeakOracle(g, seed=1),
                                    counters=counters, seed=1)
            return sorted(m.edges()), counters.as_dict()

        first = run()
        junk = [str(i) * 9 for i in range(100000)]  # perturb the heap
        second = run()
        del junk
        assert first == second

    def test_ordered_node_set_is_insertion_ordered(self):
        from repro.core.structures import OrderedNodeSet, Structure

        s = Structure(0)
        nodes = [Structure(i).root for i in range(1, 6)]
        bag = OrderedNodeSet((s.root,))
        for node in nodes:
            bag.add(node)
        bag.add(nodes[0])            # re-adding keeps the original position
        assert list(bag) == [s.root] + nodes
        bag.discard(nodes[2])
        assert list(bag) == [s.root] + nodes[:2] + nodes[3:]
        assert nodes[2] not in bag and nodes[1] in bag
        assert len(bag) == 5
        bag.clear()
        assert list(bag) == [] and len(bag) == 0


# ------------------------------------------------- parallel bench running
EXTRA_MODULE = textwrap.dedent(
    """
    from repro.bench import register

    @register("_px_ok", suite="_pxsuite", backends=("adjset", "csr"))
    def _ok(spec, counters):
        counters.add("px_work", 2 + spec.seed)
        counters.add("px_runs")
        return {"px_derived": 0.5}

    @register("_px_boom", suite="_pxsuite")
    def _boom(spec, counters):
        raise RuntimeError("intentional scenario crash")

    # the chaos pair lives in its own suite so suite-wide "_pxsuite" tests
    # never run them by accident (one sleeps, one kills its worker)
    @register("_px_exit", suite="_pxchaos")
    def _exit(spec, counters):
        import os
        os._exit(1)  # segfault stand-in: the worker dies without a result

    @register("_px_hang", suite="_pxchaos")
    def _hang(spec, counters):
        import time
        time.sleep(30)
    """
)


def test_extra_modules_execute_once_per_process(tmp_path, monkeypatch):
    from repro.bench import discovery

    marker = tmp_path / "execs.log"
    module_path = tmp_path / "extra_counting.py"
    module_path.write_text(
        f"with open({str(marker)!r}, 'a') as fh:\n    fh.write('x')\n")
    monkeypatch.setenv(discovery.EXTRA_MODULES_ENV, str(module_path))
    discovery.load_benchmark_modules(tmp_path)
    discovery.load_benchmark_modules(tmp_path)
    # import semantics: side effects fire once per process, not per call
    assert marker.read_text() == "x"
    # ... but a same-named file in a different directory is a distinct module
    other_dir = tmp_path / "other"
    other_dir.mkdir()
    other_path = other_dir / "extra_counting.py"
    other_path.write_text(
        f"with open({str(marker)!r}, 'a') as fh:\n    fh.write('y')\n")
    monkeypatch.setenv(discovery.EXTRA_MODULES_ENV,
                       os.pathsep.join([str(module_path), str(other_path)]))
    discovery.load_benchmark_modules(tmp_path)
    assert marker.read_text() == "xy"


@pytest.fixture
def parallel_scenarios(tmp_path, monkeypatch):
    """Register two scenarios from an extra-modules file (worker-visible)."""
    module_path = tmp_path / "extra_scenarios.py"
    module_path.write_text(EXTRA_MODULE)
    monkeypatch.setenv("REPRO_BENCH_EXTRA_MODULES", str(module_path))
    # point discovery at tmp_path: no benchmarks/ dir there, so parent and
    # workers load only the extra module (fast and hermetic)
    monkeypatch.setenv("REPRO_BENCH_ROOT", str(tmp_path))
    exec(compile(EXTRA_MODULE, str(module_path), "exec"), {})
    yield
    for name in ("_px_ok", "_px_boom", "_px_exit", "_px_hang"):
        registry.unregister(name)


def _strip_timing(records):
    out = []
    for record in records:
        record = dict(record)
        record.pop("wall_s")
        record.pop("timestamp")
        out.append(record)
    return out


class TestParallelRunner:
    def test_jobs_records_and_counters_match_serial(self, parallel_scenarios):
        scens = [registry.get_scenario("_px_ok")]
        results = {}
        for jobs in (1, 4):
            totals = Counters()
            failures = []
            records = runner.run_scenarios(scens, jobs=jobs, totals=totals,
                                           failures=failures, seed=3)
            assert not failures
            results[jobs] = (_strip_timing(records), totals)
        assert results[1][0] == results[4][0]
        # counters merge exactly: one bag per worker, summed in the parent
        assert results[1][1] == results[4][1]
        assert results[1][1].get("px_runs") == 2  # one per backend

    def test_worker_crash_fails_only_its_scenario(self, parallel_scenarios):
        scens = [registry.get_scenario("_px_boom"),
                 registry.get_scenario("_px_ok")]
        failures = []
        records = runner.run_scenarios(scens, jobs=2, failures=failures)
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        assert len(failures) == 1
        assert failures[0]["scenario"] == "_px_boom"
        assert "intentional scenario crash" in failures[0]["error"]

    def test_serial_path_isolates_failures_too(self, parallel_scenarios):
        scens = [registry.get_scenario("_px_boom"),
                 registry.get_scenario("_px_ok")]
        failures = []
        records = runner.run_scenarios(scens, jobs=1, failures=failures)
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        assert len(failures) == 1 and failures[0]["scenario"] == "_px_boom"

    def test_without_failures_list_the_first_failure_raises(
            self, parallel_scenarios):
        # legacy contract: scenarios must never silently go missing
        with pytest.raises(RuntimeError, match="intentional scenario crash"):
            runner.run_scenarios([registry.get_scenario("_px_boom")], jobs=1)
        # pooled path (>1 spec): the failure surfaces naming the scenario
        with pytest.raises(RuntimeError, match="_px_boom"):
            runner.run_scenarios([registry.get_scenario("_px_boom"),
                                  registry.get_scenario("_px_ok")], jobs=2)

    def test_records_arrive_in_spec_order(self, parallel_scenarios):
        scens = registry.scenarios("_pxsuite")
        seen = []
        runner.run_scenarios(scens, jobs=3,
                             progress=lambda r: seen.append(
                                 (r["scenario"], r["params"]["backend"])),
                             failures=[])
        assert seen == [("_px_ok", "adjset"), ("_px_ok", "csr")]


class TestResilientRunner:
    """Crash/hang/retry handling in ``run_scenarios`` (the tentpole paths)."""

    def test_hard_worker_death_does_not_abort_the_suite(
            self, parallel_scenarios):
        # regression: a worker os._exit(1) used to surface as
        # BrokenProcessPool and kill every remaining spec in the pool
        scens = [registry.get_scenario("_px_exit"),
                 registry.get_scenario("_px_ok")]
        failures = []
        stats = {}
        records = runner.run_scenarios(scens, jobs=2, failures=failures,
                                       resilience=stats)
        # both _px_ok specs still produced records, in spec order
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        assert len(failures) == 1
        assert failures[0]["scenario"] == "_px_exit"
        assert "worker died" in failures[0]["error"]
        assert stats["worker_crashes"] >= 1
        assert stats["pool_rebuilds"] >= 1

    def test_timeout_under_pool_records_precise_failure(
            self, parallel_scenarios):
        scens = [registry.get_scenario("_px_hang"),
                 registry.get_scenario("_px_ok")]
        failures = []
        stats = {}
        records = runner.run_scenarios(scens, jobs=2, failures=failures,
                                       timeout_s=1.0, resilience=stats)
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        assert len(failures) == 1
        assert failures[0]["scenario"] == "_px_hang"
        assert "deadline" in failures[0]["error"] \
            or "timeout" in failures[0]["error"]
        assert stats.get("timeouts", 0) + stats.get("hung_workers", 0) >= 1

    def test_timeout_under_serial_path(self, parallel_scenarios):
        scens = [registry.get_scenario("_px_hang"),
                 registry.get_scenario("_px_ok")]
        failures = []
        stats = {}
        records = runner.run_scenarios(scens, jobs=1, failures=failures,
                                       timeout_s=0.5, resilience=stats)
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        assert len(failures) == 1
        assert failures[0]["scenario"] == "_px_hang"
        assert stats["timeouts"] == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_injected_crashes_recover_with_retries(self, parallel_scenarios,
                                                   jobs):
        from repro.resilience import FaultPlan, RetryPolicy

        # the plan crashes every attempt up to max_crashes_per_site; with
        # enough retries every spec eventually lands a record
        scens = [registry.get_scenario("_px_ok")]
        failures = []
        stats = {}
        records = runner.run_scenarios(
            scens, jobs=jobs, failures=failures,
            faults=FaultPlan(seed=3, task_crash_rate=1.0,
                             max_crashes_per_site=2),
            retry=RetryPolicy(max_retries=3), resilience=stats)
        assert not failures
        assert [r["scenario"] for r in records] == ["_px_ok", "_px_ok"]
        if jobs == 1:
            # serial injection is exact: 2 crashes per backend site
            assert stats["worker_crashes"] == 4
            assert stats["retries"] == 4
        else:
            # pooled, a breakage can also implicate the innocent spec
            # sharing the pool (whether it finished first is timing), so
            # the count is a floor, not an equality
            assert stats["worker_crashes"] >= 4
            assert stats["retries"] >= 4

    def test_injected_crashes_without_retries_fail_the_spec(
            self, parallel_scenarios):
        from repro.resilience import FaultPlan

        failures = []
        records = runner.run_scenarios(
            [registry.get_scenario("_px_ok")], jobs=1, failures=failures,
            faults=FaultPlan(seed=3, task_crash_rate=1.0))
        assert not records
        assert len(failures) == 2  # one per backend
        assert all("fault plan crashed" in f["error"] for f in failures)

    def test_fault_injection_is_deterministic_across_jobs(
            self, parallel_scenarios):
        from repro.resilience import FaultPlan, RetryPolicy

        # same plan, serial vs pooled: same records, same failed specs.
        # (Event *counts* are not compared: pooled pool-breakage can
        # implicate an innocent concurrent spec, which is timing.)
        outcomes = {}
        for jobs in (1, 2):
            failures = []
            records = runner.run_scenarios(
                [registry.get_scenario("_px_ok")], jobs=jobs,
                failures=failures,
                faults=FaultPlan(seed=5, task_crash_rate=0.6,
                                 max_crashes_per_site=2),
                retry=RetryPolicy(max_retries=4), resilience={})
            outcomes[jobs] = (_strip_timing(records),
                              [f["scenario"] for f in failures])
        assert outcomes[1] == outcomes[2]
