"""Tests for the verification / certification utilities."""

from repro.graph.generators import disjoint_paths, erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.matching.blossom import maximum_matching
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching
from repro.matching.verify import (
    approximation_ratio,
    certify_approximation,
    count_disjoint_augmenting_paths_upper_bound,
    has_short_augmenting_path,
    is_maximal,
    is_valid_matching,
)


class TestValidity:
    def test_valid_matching(self):
        g = path_graph(4)
        assert is_valid_matching(g, Matching(4, [(0, 1), (2, 3)]))
        assert not is_valid_matching(g, Matching(4, [(0, 2)]))  # not a graph edge


class TestApproximationRatio:
    def test_exact_matching_has_ratio_one(self):
        g = erdos_renyi(20, 0.2, seed=1)
        m = maximum_matching(g)
        assert approximation_ratio(g, m) == 1.0

    def test_half_matching(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        assert approximation_ratio(g, m) == 2.0

    def test_empty_graph_ratio_one(self):
        assert approximation_ratio(Graph(3), Matching(3)) == 1.0

    def test_empty_matching_infinite(self):
        g = path_graph(4)
        assert approximation_ratio(g, Matching(4)) == float("inf")

    def test_certify(self):
        g = path_graph(4)
        ok, ratio = certify_approximation(g, Matching(4, [(0, 1), (2, 3)]), 0.1)
        assert ok and ratio == 1.0
        ok, ratio = certify_approximation(g, Matching(4, [(1, 2)]), 0.1)
        assert not ok and ratio == 2.0


class TestShortAugmentingPaths:
    def test_detects_length_one(self):
        g = path_graph(2)
        assert has_short_augmenting_path(g, Matching(2), 1)

    def test_detects_length_three(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        assert not has_short_augmenting_path(g, m, 1)
        assert has_short_augmenting_path(g, m, 3)

    def test_no_augmenting_path_in_maximum(self):
        g = erdos_renyi(16, 0.3, seed=2)
        m = maximum_matching(g)
        assert not has_short_augmenting_path(g, m, 9)

    def test_greedy_on_paths_has_short_path(self):
        g = disjoint_paths(2, 5)
        # match the middle edges only: augmenting paths of length 3 exist
        m = Matching(g.n, [(1, 2), (7 + 0, 7 + 1)])
        assert has_short_augmenting_path(g, m, 5)


class TestBergeBound:
    def test_augmenting_path_count(self):
        g = disjoint_paths(3, 3)
        m = Matching(g.n)  # empty matching, optimum is 2 per path
        assert count_disjoint_augmenting_paths_upper_bound(g, m) == 6

    def test_maximality_check(self):
        g = path_graph(4)
        assert is_maximal(g, Matching(4, [(1, 2)]))
        assert not is_maximal(g, Matching(4))
