"""Backend parity suite: the CSR/NumPy backend must agree with the
adjacency-set backend on every observable, and the vectorized greedy fast
path must reproduce the sequential scan exactly.

Property-based (hypothesis) over random edge/removal scripts, plus seeded
end-to-end checks on the generator workloads and a smoke run of
``benchmarks/bench_backends.py`` so tier-1 exercises the benchmark harness.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.backends import BACKENDS, CSRBackend, make_backend
from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.generators import erdos_renyi, random_edge_list
from repro.graph.graph import Graph
from repro.matching.greedy import (
    _greedy_select_vectorized,
    greedy_maximal_matching,
    greedy_on_vertex_subset,
    random_greedy_matching,
)

BACKEND_NAMES = sorted(BACKENDS)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def edge_scripts(draw, max_n=12, max_ops=40):
    """A vertex count plus a script of edge insertions/removals."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    ops = []
    if n >= 2:
        num_ops = draw(st.integers(min_value=0, max_value=max_ops))
        for _ in range(num_ops):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u == v:
                continue
            ops.append((draw(st.booleans()), u, v))
    return n, ops


def build_pair(n, ops):
    """Apply one script to a graph on every backend."""
    graphs = {name: Graph(n, backend=name) for name in BACKEND_NAMES}
    for insert, u, v in ops:
        results = set()
        for g in graphs.values():
            results.add(g.add_edge(u, v) if insert else g.remove_edge(u, v))
        assert len(results) == 1, "backends disagree on mutation result"
    return graphs


# ---------------------------------------------------------------------------
# structural parity
# ---------------------------------------------------------------------------

class TestStructuralParity:
    @given(edge_scripts())
    @settings(max_examples=80, deadline=None)
    def test_edges_degrees_neighbors_agree(self, script):
        n, ops = script
        graphs = build_pair(n, ops)
        ref = graphs["adjset"]
        for name, g in graphs.items():
            assert g.n == ref.n and g.m == ref.m, name
            assert sorted(g.edges()) == sorted(ref.edges()), name
            assert sorted(g.edge_list()) == sorted(ref.edge_list()), name
            assert sorted(g.arc_list()) == sorted(ref.arc_list()), name
            assert g.max_degree() == ref.max_degree(), name
            for v in range(n):
                assert set(g.neighbors(v)) == set(ref.neighbors(v)), (name, v)
                assert sorted(g.neighbor_list(v)) == sorted(ref.neighbor_list(v))
                assert g.degree(v) == ref.degree(v), (name, v)
            for u in range(-1, n + 1):
                for v in range(-1, n + 1):
                    assert g.has_edge(u, v) == ref.has_edge(u, v), (name, u, v)

    @given(edge_scripts(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_induced_subgraphs_agree(self, script, rnd):
        n, ops = script
        graphs = build_pair(n, ops)
        ref = graphs["adjset"]
        subset = [v for v in range(n) if rnd.random() < 0.5]
        ref_edges = sorted(ref.subgraph_edges(subset))
        ref_sub, ref_back = ref.induced_subgraph(subset)
        for name, g in graphs.items():
            assert sorted(g.subgraph_edges(subset)) == ref_edges, name
            sub, back = g.induced_subgraph(subset)
            assert sub.n == ref_sub.n and sub.m == ref_sub.m, name
            relabelled = sorted(tuple(sorted((back[u], back[v])))
                                for u, v in sub.edges())
            ref_relabelled = sorted(tuple(sorted((ref_back[u], ref_back[v])))
                                    for u, v in ref_sub.edges())
            assert relabelled == ref_relabelled, name

    @given(edge_scripts())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_matrix_and_components_agree(self, script):
        n, ops = script
        graphs = build_pair(n, ops)
        ref = graphs["adjset"]
        ref_mat = ref.adjacency_matrix()
        ref_comps = sorted(sorted(c) for c in ref.connected_components())
        for name, g in graphs.items():
            assert np.array_equal(g.adjacency_matrix(), ref_mat), name
            assert sorted(sorted(c) for c in g.connected_components()) == ref_comps

    @given(edge_scripts())
    @settings(max_examples=40, deadline=None)
    def test_copy_is_independent_on_all_backends(self, script):
        n, ops = script
        for name, g in build_pair(n, ops).items():
            clone = g.copy()
            assert clone.backend_name == g.backend_name
            assert sorted(clone.edges()) == sorted(g.edges())
            if n >= 2:
                # mutate the clone; the original must not change
                before = g.m
                if clone.has_edge(0, 1):
                    clone.remove_edge(0, 1)
                else:
                    clone.add_edge(0, 1)
                assert g.m == before, name


# ---------------------------------------------------------------------------
# bulk API parity
# ---------------------------------------------------------------------------

class TestBulkParity:
    @given(edge_scripts())
    @settings(max_examples=60, deadline=None)
    def test_bulk_equals_sequential(self, script):
        n, ops = script
        inserts = [(u, v) for ins, u, v in ops if ins]
        removes = [(u, v) for ins, u, v in ops if not ins]
        for name in BACKEND_NAMES:
            seq = Graph(n, backend=name)
            added_seq = sum(1 for u, v in inserts if seq.add_edge(u, v))
            bulk = Graph(n, backend=name)
            assert bulk.add_edges(inserts) == added_seq, name
            assert sorted(bulk.edges()) == sorted(seq.edges()), name
            removed_seq = sum(1 for u, v in removes if seq.remove_edge(u, v))
            assert bulk.remove_edges(removes) == removed_seq, name
            assert sorted(bulk.edges()) == sorted(seq.edges()), name

    def test_bulk_validation_messages(self):
        for name in BACKEND_NAMES:
            g = Graph(3, backend=name)
            with pytest.raises(ValueError, match="out of range"):
                g.add_edges([(0, 1), (0, 3)])
            with pytest.raises(ValueError, match="self-loop"):
                g.add_edges([(0, 1), (2, 2)])

    def test_apply_all_invalid_update_mutates_nothing(self):
        for name in BACKEND_NAMES:
            dg = DynamicGraph(5, backend=name)
            dg.insert(0, 1)
            with pytest.raises(ValueError, match="out of range"):
                dg.apply_all([Update.insert(2, 3), Update.insert(0, 99)])
            # the failed batch must not have touched snapshot, log or max
            assert dg.m == 1 and dg.num_updates == 1, name
            assert dg.max_edges_seen == 1, name
            assert sorted(dg.replay().edges()) == sorted(dg.graph.edges()), name

    @given(edge_scripts(max_n=10, max_ops=30))
    @settings(max_examples=40, deadline=None)
    def test_dynamic_graph_batched_replay_agrees(self, script):
        n, ops = script
        updates = [Update.insert(u, v) if ins else Update.delete(u, v)
                   for ins, u, v in ops]
        # sequential reference on the default backend
        ref = DynamicGraph(n)
        ref_changed = sum(1 for upd in updates if ref.apply(upd))
        for name in BACKEND_NAMES:
            dg = DynamicGraph(n, backend=name)
            changed = dg.apply_all(updates)
            assert changed == ref_changed, name
            assert dg.m == ref.m and dg.num_updates == ref.num_updates, name
            assert dg.max_edges_seen == ref.max_edges_seen, name
            assert sorted(dg.graph.edges()) == sorted(ref.graph.edges()), name
            assert sorted(dg.replay().edges()) == sorted(ref.replay().edges())


# ---------------------------------------------------------------------------
# matching parity
# ---------------------------------------------------------------------------

class TestMatchingParity:
    @given(edge_scripts(max_n=14, max_ops=50),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_greedy_identical_across_backends(self, script, seed):
        n, ops = script
        graphs = build_pair(n, ops)
        ref = random_greedy_matching(graphs["adjset"], seed=seed)
        for name, g in graphs.items():
            assert random_greedy_matching(g, seed=seed) == ref, name

    @given(edge_scripts(max_n=14, max_ops=50),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_subset_greedy_identical_across_backends(self, script, seed):
        n, ops = script
        graphs = build_pair(n, ops)
        subset = list(range(0, n, 2))
        ref = greedy_on_vertex_subset(graphs["adjset"], subset, seed=seed)
        for name, g in graphs.items():
            assert greedy_on_vertex_subset(g, subset, seed=seed) == ref, name

    @given(edge_scripts(max_n=14, max_ops=50))
    @settings(max_examples=40, deadline=None)
    def test_explicit_order_greedy_identical_across_backends(self, script):
        n, ops = script
        graphs = build_pair(n, ops)
        order = sorted(graphs["adjset"].edge_list())
        ref = greedy_maximal_matching(graphs["adjset"], edge_order=order)
        for name, g in graphs.items():
            assert greedy_maximal_matching(g, edge_order=order) == ref, name

    def test_vectorized_greedy_equals_sequential(self):
        # adversarial-for-the-round-cap orders (paths scanned end to end)
        # and random orders, well past the vectorization threshold
        cases = []
        n = 6000
        cases.append((n, [(i, i + 1) for i in range(n - 1)]))  # path order
        cases.append((n, sorted(random_edge_list(n, 3 * n, seed=1))))
        cases.append((n, random_edge_list(n, 3 * n, seed=2)))  # random order
        for n, edges in cases:
            sequential = []
            used = set()
            for u, v in edges:
                if u not in used and v not in used:
                    used.add(u)
                    used.add(v)
                    sequential.append((u, v))
            assert _greedy_select_vectorized(edges, n, None) == sequential

    def test_vectorized_greedy_respects_forbidden(self):
        n = 5000
        edges = random_edge_list(n, 3 * n, seed=3)
        blocked = set(range(0, n, 7))
        sequential = []
        used = set(blocked)
        for u, v in edges:
            if u not in used and v not in used:
                used.add(u)
                used.add(v)
                sequential.append((u, v))
        assert _greedy_select_vectorized(edges, n, blocked) == sequential

    def test_generator_workload_greedy_is_valid_on_both_backends(self):
        for name in BACKEND_NAMES:
            g = erdos_renyi(120, 0.08, seed=5, backend=name)
            m = greedy_maximal_matching(g)
            m.validate(g)


# ---------------------------------------------------------------------------
# backend selection / error handling
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown graph backend"):
            Graph(3, backend="nope")

    def test_backend_instance_size_checked(self):
        with pytest.raises(ValueError, match="sized for"):
            Graph(3, backend=make_backend("adjset", 5))

    def test_backend_instance_is_copied_not_aliased(self):
        for name in BACKEND_NAMES:
            inst = make_backend(name, 4)
            g1 = Graph(4, [(0, 1)], backend=inst)
            g2 = Graph(4, backend=inst)
            assert inst.m == 0, name      # caller's instance untouched
            g2.add_edge(2, 3)
            assert g1.m == 1 and not g1.has_edge(2, 3), name

    def test_with_backend_round_trip(self):
        g = erdos_renyi(40, 0.2, seed=9)
        h = g.with_backend("csr")
        assert h.backend_name == "csr"
        assert sorted(h.edges()) == sorted(g.edges())
        back = h.with_backend("adjset")
        assert back.backend_name == "adjset"
        assert sorted(back.edges()) == sorted(g.edges())

    def test_profile_backend_selector_end_to_end(self):
        from repro.core.config import ParameterProfile
        from repro.core.streaming import semi_streaming_matching

        g = erdos_renyi(30, 0.15, seed=11)
        profile = ParameterProfile.practical(0.25, backend="csr")
        m = semi_streaming_matching(g, 0.25, profile=profile, seed=0)
        m.validate(g)

    def test_default_profile_keeps_input_backend(self):
        # profile.backend defaults to None = "keep the input graph's
        # backend": an explicitly CSR-built graph must not be silently
        # converted back to adjset by the framework entry points
        from repro.core.config import ParameterProfile
        assert ParameterProfile.practical(0.25).backend is None
        from repro.core.streaming import semi_streaming_matching

        g = erdos_renyi(25, 0.15, seed=13, backend="csr")
        m = semi_streaming_matching(g, 0.25, seed=0)
        m.validate(g)

    def test_csr_backend_is_registered(self):
        assert isinstance(Graph(4, backend="csr").backend, CSRBackend)


# ---------------------------------------------------------------------------
# CSR memoisation invalidation
# ---------------------------------------------------------------------------

@st.composite
def mutation_scripts(draw, max_n=10, max_ops=25):
    """A script mixing every mutation API: single, bulk, and DynamicGraph."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    pair = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda e: e[0] != e[1])
    ops = draw(st.lists(st.tuples(
        st.sampled_from(("add_edge", "remove_edge", "add_edges",
                         "remove_edges", "apply_all")),
        st.lists(pair, min_size=1, max_size=4)), max_size=max_ops))
    return n, ops


class TestCSRMemoInvalidation:
    """Every mutation API must invalidate the compiled-view memos.

    ``neighbor_list`` and ``csr_arrays`` cache the compiled CSR view between
    mutations; a mutation path that forgets to mark the backend dirty would
    serve stale neighbours.  The property: after *any* interleaving of the
    mutation APIs, reads through the memoised paths equal a from-scratch
    backend holding the same edge set -- with the memos deliberately kept hot
    (read after every single mutation).
    """

    @staticmethod
    def _apply(dyn, backend, op, edges):
        if op == "add_edge":
            backend.add_edge(*edges[0])
        elif op == "remove_edge":
            backend.remove_edge(*edges[0])
        elif op == "add_edges":
            backend.add_edges(edges)
        elif op == "remove_edges":
            backend.remove_edges(edges)
        else:  # apply_all through the DynamicGraph layer (bulk-run grouping)
            updates = [Update.insert(u, v) if not dyn.graph.has_edge(u, v)
                       else Update.delete(u, v) for u, v in edges]
            dyn.apply_all(updates)

    @given(script=mutation_scripts())
    @settings(max_examples=60, deadline=None)
    def test_every_mutation_api_invalidates_memos(self, script):
        n, ops = script
        dyn = DynamicGraph(n, backend="csr", log_updates=False)
        backend = dyn.graph.backend
        for op, edges in ops:
            # warm the memos so the mutation has something stale to kill
            backend.neighbor_list(edges[0][0])
            backend.csr_arrays()
            self._apply(dyn, backend, op, edges)
            fresh = make_backend("csr", n)
            fresh.add_edges(backend.edge_list())
            for v in range(n):
                assert backend.neighbor_list(v) == fresh.neighbor_list(v), op
            got_ptr, got_idx = backend.csr_arrays()
            want_ptr, want_idx = fresh.csr_arrays()
            assert got_ptr.tolist() == want_ptr.tolist(), op
            assert got_idx.tolist() == want_idx.tolist(), op

    def test_noop_mutations_keep_compiled_view(self):
        """Failed mutations (dup add, missing remove) need no recompile."""
        backend = make_backend("csr", 6)
        backend.add_edges([(0, 1), (2, 3)])
        ptr, idx = backend.csr_arrays()
        assert backend.add_edge(0, 1) is False
        assert backend.remove_edge(4, 5) is False
        assert backend.add_edges([(1, 0)]) == 0
        assert backend.remove_edges([(4, 5)]) == 0
        ptr2, idx2 = backend.csr_arrays()
        assert ptr2 is ptr and idx2 is idx  # cache untouched by no-ops

    def test_property_covers_every_declared_mutator(self):
        """The hypothesis script exercises the full @invalidates registry.

        The static checker (repro.analysis, memo-contract family) reads the
        same declarations; this test is the completeness oracle keeping the
        runtime property and the static contract in sync.  If a new mutator
        is declared, the script above must learn to drive it -- directly or
        through a declared method it delegates to.
        """
        from repro.utils.contracts import declared_mutators

        assert set(declared_mutators(CSRBackend)) == {
            "add_edge", "remove_edge", "add_edges", "remove_edges"}
        # the script drives apply_all; insert/delete/insert_edges/
        # delete_edges are declared delegates of apply/apply_all
        dg_declared = set(declared_mutators(DynamicGraph))
        assert {"apply", "apply_all"} <= dg_declared
        # restore_accounting guards the update/edge bookkeeping scalars, not
        # a compiled view -- nothing memoised to stale, so the script has no
        # business driving it; checkpoint resume-parity tests cover it
        assert dg_declared == {"apply", "insert", "delete", "apply_all",
                               "insert_edges", "delete_edges",
                               "restore_accounting"}
        script_ops = {"add_edge", "remove_edge", "add_edges", "remove_edges",
                      "apply_all"}
        assert script_ops <= (set(declared_mutators(CSRBackend)) | dg_declared)

    def test_declared_guards_exist_on_instances(self):
        """Every declared guard attribute is a real attribute (no typos)."""
        from repro.utils.contracts import declared_mutators

        csr = make_backend("csr", 4)
        for attrs in declared_mutators(CSRBackend).values():
            for attr in attrs:
                assert hasattr(csr, attr), attr
        dyn = DynamicGraph(4, backend="csr")
        for attrs in declared_mutators(DynamicGraph).values():
            for attr in attrs:
                assert hasattr(dyn, attr), attr


# ---------------------------------------------------------------------------
# benchmark smoke (tier-1 runs the harness in seconds)
# ---------------------------------------------------------------------------

def test_bench_backends_smoke(tmp_path, monkeypatch, capsys):
    bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    monkeypatch.syspath_prepend(os.path.abspath(bench_dir))
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    import bench_backends

    speedups = bench_backends.emit_comparison(smoke=True)
    out = capsys.readouterr().out
    assert "csr" in out and "adjset" in out
    assert speedups  # at least one workload produced a speedup figure
