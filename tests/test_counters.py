"""Tests for instrumentation counters and reporting."""

import math

import pytest

from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table, format_table, geometric_fit, ratio_series


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("x")
        c.add("x", 2.5)
        assert c["x"] == 3.5
        assert c.get("missing") == 0
        assert "x" in c and "missing" not in c

    def test_reset(self):
        c = Counters()
        c.add("a")
        c.add("b")
        c.reset("a")
        assert c["a"] == 0 and c["b"] == 1
        c.reset()
        assert c["b"] == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a["x"] == 5 and a["y"] == 1
        assert b["x"] == 3  # unchanged

    def test_snapshot_and_diff(self):
        c = Counters()
        c.add("calls", 4)
        snap = c.snapshot()
        c.add("calls", 3)
        c.add("rounds", 2)
        diff = c.diff(snap)
        assert diff == {"calls": 3, "rounds": 2}
        # snapshot is independent
        assert snap["calls"] == 4

    def test_as_dict_and_iter(self):
        c = Counters()
        c.add("a", 1)
        c.add("b", 2)
        assert c.as_dict() == {"a": 1, "b": 2}
        assert set(iter(c)) == {"a", "b"}


class TestReporting:
    def test_table_rendering(self):
        t = Table("demo", ["eps", "calls"])
        t.add_row(0.25, 120)
        t.add_row(0.125, 960.0)
        text = t.render()
        assert "demo" in text and "eps" in text and "960" in text

    def test_table_rejects_wrong_arity(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_table_handles_floats(self):
        text = format_table("t", ["v"], [[0.000123], [12345.6]])
        assert "0.000123" in text and "1.23e+04" in text

    def test_geometric_fit_recovers_exponent(self):
        xs = [2, 4, 8, 16, 32]
        ys = [3 * x ** 2.5 for x in xs]
        a, b = geometric_fit(xs, ys)
        assert b == pytest.approx(2.5, abs=1e-6)
        assert a == pytest.approx(3.0, rel=1e-6)

    def test_geometric_fit_degenerate(self):
        a, b = geometric_fit([1], [1])
        assert math.isnan(b)

    def test_ratio_series(self):
        assert ratio_series([4, 9], [2, 3]) == [2, 3]
        assert ratio_series([1], [0]) == [float("inf")]
