"""Checkpoint/resume tests for the dynamic maintainer.

The contract under test: a maintainer restored from a
:class:`~repro.resilience.checkpoint.MaintainerCheckpoint` and replayed over
the remaining updates is *byte-identical* to one that never crashed -- same
mates, same counters, same RNG substreams, same epoch/rebuild schedule.
That parity is pinned across the full configuration matrix (graph backends
x phase engines x repair modes), through full ``.npz`` disk round-trips,
and at the awkward positions: the zeroth checkpoint, a checkpoint on a
rebuild boundary, and a crash on the final update.  Loader hardening
(truncated, corrupt, wrong-version, non-checkpoint files) raises the typed
:class:`CheckpointError`.
"""

import dataclasses
import os

import pytest

from repro.core.config import ParameterProfile
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.instrumentation.counters import Counters
from repro.resilience import FaultPlan
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    MaintainerCheckpoint,
)
from repro.resilience.harness import RecoveryStats, run_with_recovery
from repro.workloads.sources import planted_matching_churn
from repro.workloads.trace import Trace

EPS = 0.25


def _profile(engine, repair):
    return dataclasses.replace(ParameterProfile.practical(EPS),
                               engine=engine, repair=repair)


def _workload(pairs=24, rounds=2, seed=0):
    return Trace.record(planted_matching_churn(pairs, rounds=rounds,
                                               seed=seed))


def _maintainer(trace, profile, backend, counters, seed=0):
    return FullyDynamicMatching(trace.n, EPS, profile=profile,
                                counters=counters, seed=seed, backend=backend)


def _end_state(alg):
    """The full comparable state: mates + counters + RNGs + schedule."""
    return alg.checkpoint_state()


def _run_fault_free(trace, profile, backend):
    alg = _maintainer(trace, profile, backend, Counters())
    for upd in trace.stream():
        alg.update(upd)
    return alg


# ------------------------------------------------------------ parity matrix
@pytest.mark.parametrize("backend", ["adjset", "csr"])
@pytest.mark.parametrize("engine", ["array", "reference", "kernel"])
@pytest.mark.parametrize("repair", ["rebuild", "incremental"])
def test_resume_parity_across_configurations(backend, engine, repair,
                                             tmp_path):
    """Crash + restore-from-disk + replay lands byte-identical end state."""
    trace = _workload()
    profile = _profile(engine, repair)
    reference = _run_fault_free(trace, profile, backend)

    chaotic = _maintainer(trace, profile, backend, Counters())
    plan = FaultPlan(seed=11, update_crash_rate=0.03,
                     crash_updates=(len(trace) // 2,))
    survivor, stats = run_with_recovery(
        chaotic, trace, plan=plan, checkpoint_every=10,
        checkpoint_path=str(tmp_path / "ckpt.npz"))
    assert stats.crashes >= 1
    assert _end_state(survivor) == _end_state(reference)


def test_in_memory_and_disk_restores_agree(tmp_path):
    trace = _workload()
    profile = _profile("array", "incremental")
    plan = FaultPlan(seed=2, crash_updates=(7, len(trace) // 2))

    on_disk, _ = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace, plan=plan,
        checkpoint_every=5, checkpoint_path=str(tmp_path / "c.npz"))
    in_memory, _ = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace, plan=plan,
        checkpoint_every=5)
    assert _end_state(on_disk) == _end_state(in_memory)


# ------------------------------------------------------- delta-aware writer
@pytest.mark.parametrize("backend", ["adjset", "csr"])
@pytest.mark.parametrize("engine", ["array", "kernel"])
def test_delta_and_stateless_snapshots_agree(backend, engine, tmp_path):
    """``delta_snapshots`` changes the cost of a snapshot, never its bytes."""
    trace = _workload()
    profile = _profile(engine, "incremental")
    plan = FaultPlan(seed=5, crash_updates=(9, len(trace) // 2))
    results = []
    for delta in (True, False):
        survivor, stats = run_with_recovery(
            _maintainer(trace, profile, backend, Counters()), trace,
            plan=plan, checkpoint_every=6,
            checkpoint_path=str(tmp_path / f"d{delta}.npz"),
            delta_snapshots=delta)
        results.append((_end_state(survivor), stats.crashes,
                        stats.checkpoints, stats.replayed_updates))
        if delta:
            assert stats.sections_reused > 0
        else:
            assert stats.sections_reused == stats.sections_encoded == 0
    assert results[0] == results[1]


def test_delta_writer_matches_one_shot_files(tmp_path):
    """Every delta save is payload-identical to a stateless save."""
    np = pytest.importorskip("numpy")
    from repro.resilience.checkpoint import DeltaCheckpointWriter

    trace = _workload(pairs=12, rounds=2)
    alg = _maintainer(trace, _profile("array", "incremental"), "adjset",
                      Counters())
    writer = DeltaCheckpointWriter()
    delta_path = str(tmp_path / "delta.npz")
    one_shot_path = str(tmp_path / "one_shot.npz")
    for position, upd in enumerate(trace.stream(), start=1):
        alg.update(upd)
        if position % 7:
            continue
        writer.save(writer.capture(alg, position), delta_path)
        MaintainerCheckpoint.capture(alg, position).save(one_shot_path)
        with np.load(delta_path, allow_pickle=False) as got, \
                np.load(one_shot_path, allow_pickle=False) as want:
            assert sorted(got.files) == sorted(want.files)
            for key in want.files:
                assert np.array_equal(got[key], want[key]), key
        restored = MaintainerCheckpoint.load(delta_path)
        assert restored.position == position
        assert restored.state == MaintainerCheckpoint.load(one_shot_path).state
    assert writer.stats["sections_reused"] > 0


def test_delta_writer_resets_on_new_maintainer(tmp_path):
    """Revisions are meaningless across maintainers; caches must not leak."""
    from repro.resilience.checkpoint import DeltaCheckpointWriter

    trace = _workload(pairs=10, rounds=1)
    profile = _profile("array", "rebuild")
    writer = DeltaCheckpointWriter()
    path = str(tmp_path / "swap.npz")

    first = _maintainer(trace, profile, "adjset", Counters())
    for upd in trace.stream():
        first.update(upd)
    writer.save(writer.capture(first, len(trace)), path)

    second = _maintainer(trace, profile, "adjset", Counters(), seed=7)
    for upd in trace.stream():
        second.update(upd)
    writer.save(writer.capture(second, len(trace)), path)

    restored = MaintainerCheckpoint.load(path)
    assert restored.state == second.checkpoint_state()
    assert restored.state != first.checkpoint_state()


# ------------------------------------------------------------- edge cases
def test_resume_from_zeroth_checkpoint_replays_everything(tmp_path):
    """A crash before any periodic snapshot restores the empty prefix."""
    trace = _workload()
    profile = _profile("array", "incremental")
    reference = _run_fault_free(trace, profile, "adjset")

    survivor, stats = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace,
        plan=FaultPlan(seed=0, crash_updates=(0,)), checkpoint_every=0,
        checkpoint_path=str(tmp_path / "c.npz"))
    assert stats.crashes == 1 and stats.restores == 1
    assert stats.replayed_updates == 0  # crash at 0: nothing to replay yet
    assert _end_state(survivor) == _end_state(reference)


def test_crash_on_final_update_recovers(tmp_path):
    trace = _workload()
    profile = _profile("array", "rebuild")
    reference = _run_fault_free(trace, profile, "adjset")

    survivor, stats = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace,
        plan=FaultPlan(seed=0, crash_updates=(len(trace) - 1,)),
        checkpoint_every=16, checkpoint_path=str(tmp_path / "c.npz"))
    assert stats.crashes == 1
    assert _end_state(survivor) == _end_state(reference)


def test_checkpoint_every_update_hits_rebuild_boundaries(tmp_path):
    """checkpoint_every=1 snapshots on every boundary the schedule has --
    including immediately after epoch rebuilds -- and parity must hold when
    restores land exactly there."""
    trace = _workload(pairs=16, rounds=2)
    profile = _profile("array", "incremental")
    reference = _run_fault_free(trace, profile, "adjset")

    survivor, stats = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace,
        plan=FaultPlan(seed=5, update_crash_rate=0.08),
        checkpoint_every=1, checkpoint_path=str(tmp_path / "c.npz"))
    # every crash restores the immediately preceding update's snapshot
    assert stats.replayed_updates == 0
    assert _end_state(survivor) == _end_state(reference)


def test_stats_bookkeeping_and_counter_projection():
    trace = _workload(pairs=16, rounds=1)
    profile = _profile("array", "rebuild")
    survivor, stats = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace,
        plan=FaultPlan(seed=0, crash_updates=(3, 9)), checkpoint_every=4)
    assert stats.crashes == 2
    assert stats.crash_positions == [3, 9]
    assert stats.checkpoints >= 1 + len(trace) // 4
    projected = stats.as_counters()
    assert projected["chaos_crashes"] == 2.0
    assert projected["chaos_restores"] == float(stats.restores)


def test_run_with_recovery_rejects_negative_period():
    trace = _workload(pairs=4, rounds=1)
    alg = _maintainer(trace, _profile("array", "rebuild"), "adjset",
                      Counters())
    with pytest.raises(ValueError, match="checkpoint_every"):
        run_with_recovery(alg, trace, checkpoint_every=-1)


def test_recovery_stats_default_clean_run():
    trace = _workload(pairs=8, rounds=1)
    profile = _profile("array", "rebuild")
    reference = _run_fault_free(trace, profile, "adjset")
    survivor, stats = run_with_recovery(
        _maintainer(trace, profile, "adjset", Counters()), trace)
    # timing / delta-writer fields are nondeterministic; zero them out
    comparable = dataclasses.replace(stats, checkpoint_ns=0,
                                     sections_reused=0, sections_encoded=0)
    assert comparable == RecoveryStats(crashes=0, restores=0, checkpoints=1,
                                       replayed_updates=0, crash_positions=[])
    assert stats.checkpoint_ns > 0
    assert _end_state(survivor) == _end_state(reference)


# ----------------------------------------------------------- capture/restore
def test_capture_rejects_negative_position():
    trace = _workload(pairs=4, rounds=1)
    alg = _maintainer(trace, _profile("array", "rebuild"), "adjset",
                      Counters())
    with pytest.raises(ValueError, match="position"):
        MaintainerCheckpoint.capture(alg, -1)


def test_snapshot_is_isolated_from_live_maintainer():
    trace = _workload(pairs=8, rounds=1)
    updates = trace.updates()
    alg = _maintainer(trace, _profile("array", "rebuild"), "adjset",
                      Counters())
    for upd in updates[: len(updates) // 2]:
        alg.update(upd)
    snapshot = MaintainerCheckpoint.capture(alg, len(updates) // 2)
    frozen = dict(snapshot.state)
    for upd in updates[len(updates) // 2:]:
        alg.update(upd)
    # the live maintainer moved on; the snapshot must not have
    assert snapshot.state == frozen
    assert snapshot.state != alg.checkpoint_state()


# ------------------------------------------------------------ loader errors
def _saved_checkpoint(tmp_path):
    trace = _workload(pairs=8, rounds=1)
    alg = _maintainer(trace, _profile("array", "rebuild"), "adjset",
                      Counters())
    for upd in trace.stream():
        alg.update(upd)
    snapshot = MaintainerCheckpoint.capture(alg, len(trace))
    return snapshot, snapshot.save(str(tmp_path / "good.npz"))


def test_save_load_round_trip(tmp_path):
    snapshot, path = _saved_checkpoint(tmp_path)
    loaded = MaintainerCheckpoint.load(path)
    assert loaded.position == snapshot.position
    assert loaded.state == snapshot.state


def test_load_missing_file_is_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        MaintainerCheckpoint.load(str(tmp_path / "absent.npz"))


def test_load_truncated_file_raises_typed_error(tmp_path):
    _, path = _saved_checkpoint(tmp_path)
    blob = open(path, "rb").read()
    bad = str(tmp_path / "truncated.npz")
    with open(bad, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError) as excinfo:
        MaintainerCheckpoint.load(bad)
    assert excinfo.value.path == bad
    assert "corrupt" in str(excinfo.value)


def test_load_garbage_bytes_raises_typed_error(tmp_path):
    bad = str(tmp_path / "garbage.npz")
    with open(bad, "wb") as handle:
        handle.write(b"this is not a zip archive at all")
    with pytest.raises(CheckpointError):
        MaintainerCheckpoint.load(bad)


def test_load_non_checkpoint_npz_raises_typed_error(tmp_path):
    np = pytest.importorskip("numpy")
    bad = str(tmp_path / "other.npz")
    np.savez(bad, foo=np.zeros(3))
    with pytest.raises(CheckpointError, match="missing keys"):
        MaintainerCheckpoint.load(bad)


def test_load_wrong_kind_raises_typed_error(tmp_path):
    # a Trace file has real content but the wrong shape entirely
    trace_path = Trace.record(
        planted_matching_churn(4, rounds=1, seed=0)).save(
        str(os.path.join(tmp_path, "trace.npz")))
    with pytest.raises(CheckpointError, match="missing keys"):
        MaintainerCheckpoint.load(trace_path)


def test_load_version_skew_reports_both_versions(tmp_path):
    np = pytest.importorskip("numpy")
    _, path = _saved_checkpoint(tmp_path)
    with np.load(path) as payload:
        arrays = {name: payload[name] for name in payload.files}
    arrays["version"] = np.int64(CHECKPOINT_VERSION + 41)
    skewed = str(tmp_path / "skewed.npz")
    np.savez(skewed, **arrays)
    with pytest.raises(CheckpointError) as excinfo:
        MaintainerCheckpoint.load(skewed)
    err = excinfo.value
    assert err.expected_version == CHECKPOINT_VERSION
    assert err.found_version == CHECKPOINT_VERSION + 41
    assert err.path == skewed
    assert "version" in str(err)
