"""Tests for the exact blossom matcher (the ground-truth substrate)."""

import pytest

from conftest import brute_force_maximum_matching_size

from repro.graph.generators import (
    blossom_gadget,
    cycle_graph,
    erdos_renyi,
    nested_blossom_gadget,
    path_graph,
    planted_matching,
    random_bipartite,
)
from repro.graph.graph import Graph
from repro.matching.blossom import (
    augment_to_optimal,
    find_augmenting_path,
    maximum_matching,
    maximum_matching_size,
)
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching


class TestExactness:
    def test_matches_brute_force_on_small_graphs(self, small_graphs):
        for name, g in small_graphs:
            if g.n > 16 or g.m > 24:
                continue
            assert maximum_matching_size(g) == brute_force_maximum_matching_size(g), name

    def test_matches_brute_force_on_random_small(self):
        for seed in range(10):
            g = erdos_renyi(9, 0.35, seed=seed)
            assert maximum_matching_size(g) == brute_force_maximum_matching_size(g)

    def test_matches_networkx_on_random(self):
        nx = pytest.importorskip("networkx")
        for seed in range(5):
            g = erdos_renyi(40, 0.1, seed=seed)
            nxg = nx.Graph()
            nxg.add_nodes_from(range(g.n))
            nxg.add_edges_from(g.edges())
            nx_size = len(nx.max_weight_matching(nxg, maxcardinality=True))
            assert maximum_matching_size(g) == nx_size

    def test_known_structures(self):
        assert maximum_matching_size(path_graph(9)) == 4
        assert maximum_matching_size(cycle_graph(9)) == 4
        assert maximum_matching_size(blossom_gadget(2, 3)) == 6
        assert maximum_matching_size(nested_blossom_gadget()) == 5

    def test_planted_matching_found(self):
        g, planted = planted_matching(25, 0.03, seed=1)
        m = maximum_matching(g)
        m.validate(g)
        assert m.size == 25

    def test_bipartite_agrees_with_hopcroft_karp(self):
        from repro.matching.hopcroft_karp import hopcroft_karp

        for seed in range(4):
            g, _, _ = random_bipartite(12, 15, 0.2, seed=seed)
            assert maximum_matching_size(g) == hopcroft_karp(g).size

    def test_output_is_valid_matching(self, small_graphs):
        for name, g in small_graphs:
            maximum_matching(g).validate(g)


class TestWarmStartAndIncremental:
    def test_warm_start_respects_initial(self):
        g = path_graph(6)
        initial = Matching(6, [(1, 2)])
        m = maximum_matching(g, initial=initial)
        m.validate(g)
        assert m.size == 3

    def test_find_augmenting_path_increases_by_one(self):
        g = path_graph(4)
        m = Matching(4, [(1, 2)])
        assert find_augmenting_path(g, m)
        assert m.size == 2
        m.validate(g)
        assert not find_augmenting_path(g, m)

    def test_find_augmenting_path_through_blossom(self):
        # triangle 0-1-2 with stems 0-3 and 1-4: maximum matching is 2 but a
        # greedy matching on the triangle edge (0,1) must go through a blossom
        g = Graph(5, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 4)])
        m = Matching(5, [(0, 1)])
        assert find_augmenting_path(g, m)
        m.validate(g)
        assert m.size == 2

    def test_augment_to_optimal_counts(self):
        g = path_graph(8)
        m = Matching(8)
        count = augment_to_optimal(g, m)
        assert m.size == 4 and count == 4

    def test_greedy_then_augment_reaches_optimum(self, medium_graphs):
        for name, g in medium_graphs:
            m = greedy_maximal_matching(g)
            augment_to_optimal(g, m)
            assert m.size == maximum_matching_size(g), name
            m.validate(g)
