"""Tests for trace record/replay and real-graph ingestion.

The load-bearing guarantees:

* a recorded trace round-trips through save -> load byte-identically and
  replays the exact update sequence it recorded;
* replaying one trace through the dynamic maintainer produces byte-identical
  counters and matchings on the ``adjset`` and ``csr`` backends, and through
  the bench runner with ``--jobs 1`` vs ``--jobs 2``;
* long generated streams replay in O(1) extra memory (peak independent of
  stream length).
"""

import os
import sys

import numpy as np
import pytest

from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.instrumentation.counters import Counters
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.workloads import (
    Trace,
    insertion_only,
    load_edge_list,
    planted_matching_churn,
    resolve_workload,
    sliding_window,
    temporal_insertions,
    temporal_sliding_window,
    workload_names,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
KARATE_EDGES = os.path.join(REPO_ROOT, "benchmarks", "data", "karate.txt")
KARATE_TRACE = os.path.join(REPO_ROOT, "benchmarks", "data", "karate_w40.npz")


class TestTraceRoundTrip:
    def test_record_save_load_identical(self, tmp_path):
        stream = sliding_window(18, 120, window=14, seed=1)
        trace = Trace.record(stream)
        path = trace.save(tmp_path / "t.npz")
        loaded = Trace.load(path)
        assert loaded == trace
        assert np.array_equal(loaded.kind, trace.kind)
        assert np.array_equal(loaded.u, trace.u)
        assert np.array_equal(loaded.v, trace.v)
        assert loaded.n == trace.n == 18

    def test_replay_reproduces_updates_exactly(self, tmp_path):
        stream = planted_matching_churn(9, rounds=3, seed=2)
        trace = Trace.load(Trace.record(stream).save(tmp_path / "t"))
        assert trace.updates() == stream.materialize()
        # replay is itself re-iterable
        replay = trace.stream()
        assert list(replay) == list(replay)

    def test_empty_stream_and_plain_iterable(self, tmp_path):
        empty = Trace.record([], n=5)
        assert len(empty) == 0 and empty.n == 5
        loaded = Trace.load(empty.save(tmp_path / "e"))
        assert loaded == empty and loaded.updates() == []
        with pytest.raises(ValueError, match="explicit n"):
            Trace.record(iter([Update.insert(0, 1)]))

    def test_load_rejects_non_trace_and_bad_version(self, tmp_path):
        from repro.workloads.trace import FORMAT_VERSION, TraceFormatError

        bad = tmp_path / "bad.npz"
        np.savez(bad, foo=np.zeros(3))
        with pytest.raises(TraceFormatError, match="not a trace") as excinfo:
            Trace.load(bad)
        assert excinfo.value.path == str(bad)
        worse = tmp_path / "worse.npz"
        np.savez(worse, version=np.int64(99), n=np.int64(1),
                 kind=np.zeros(0, dtype=np.int64),
                 u=np.zeros(0, dtype=np.int64),
                 v=np.zeros(0, dtype=np.int64))
        with pytest.raises(TraceFormatError, match="file is v99") as excinfo:
            Trace.load(worse)
        # the typed error carries both versions for "re-record vs wrong file"
        assert excinfo.value.expected_version == FORMAT_VERSION
        assert excinfo.value.found_version == 99
        # TraceFormatError subclasses ValueError: pre-hardening callers that
        # caught ValueError keep working
        assert isinstance(excinfo.value, ValueError)

    def test_load_truncated_file_raises_typed_error(self, tmp_path):
        from repro.workloads.trace import TraceFormatError

        trace = Trace.record(sliding_window(8, 30, window=6, seed=0))
        path = trace.save(tmp_path / "whole.npz")
        blob = open(path, "rb").read()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError, match="corrupt") as excinfo:
            Trace.load(truncated)
        assert excinfo.value.path == str(truncated)

    def test_load_garbage_bytes_raises_typed_error(self, tmp_path):
        from repro.workloads.trace import TraceFormatError

        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"definitely not a zip container")
        with pytest.raises(TraceFormatError, match="corrupt"):
            Trace.load(garbage)

    def test_load_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(tmp_path / "absent.npz")

    def test_rejects_unknown_kind_codes(self):
        with pytest.raises(ValueError, match="kind codes"):
            Trace(4, np.array([7], dtype=np.int64),
                  np.array([0], dtype=np.int64),
                  np.array([1], dtype=np.int64))


class TestBackendReplayParity:
    """One trace, two backends: byte-identical counters and matchings."""

    def _replay(self, trace, backend, collect=True):
        counters = Counters()
        alg = FullyDynamicMatching(trace.n, 0.25, counters=counters, seed=0,
                                   backend=backend)
        sizes = alg.process(trace.stream(), collect_sizes=collect)
        return (counters.as_dict(), sorted(alg.current_matching().edges()),
                None if sizes is None else list(sizes))

    @pytest.mark.parametrize("make_stream", [
        lambda: sliding_window(20, 150, window=16, seed=3),
        lambda: planted_matching_churn(8, rounds=2, seed=4),
    ])
    def test_generated_trace_parity(self, tmp_path, make_stream):
        trace = Trace.load(Trace.record(make_stream()).save(tmp_path / "t"))
        adjset = self._replay(trace, "adjset")
        csr = self._replay(trace, "csr")
        assert adjset == csr

    def test_committed_karate_trace_parity(self):
        trace = Trace.load(KARATE_TRACE)
        adjset = self._replay(trace, "adjset")
        csr = self._replay(trace, "csr")
        assert adjset == csr
        # and the sizes trajectory is a packed int64 array
        assert self._replay(trace, "adjset", collect=True)[2] is not None

    def test_collect_sizes_false_returns_none(self):
        trace = Trace.record(insertion_only(10, 15, seed=5))
        counters, matching, sizes = self._replay(trace, "adjset",
                                                 collect=False)
        assert sizes is None
        with_sizes = self._replay(trace, "adjset", collect=True)
        assert (counters, matching) == with_sizes[:2]


class TestJobsParity:
    def test_jobs_1_vs_2_identical_records(self):
        """The realgraph trace scenario emits identical records under the
        serial and the pooled runner (modulo wall-clock/timestamp)."""
        from repro.bench import discovery, registry, runner

        discovery.load_benchmark_modules()
        scenario = registry.get_scenario("table2_realgraph")

        def run(jobs):
            records = runner.run_scenarios([scenario], jobs=jobs, smoke=True)
            for record in records:
                record.pop("wall_s")
                record.pop("timestamp")
            return records

        assert run(1) == run(2)


class TestIngestion:
    def test_karate_parse_and_remap(self):
        data = load_edge_list(KARATE_EDGES)
        assert data.n == 34 and data.m == 78
        assert data.timestamps is None
        # 1-indexed labels remapped to contiguous 0-based ids, first-seen order
        assert data.labels[0] == "1"
        assert all(0 <= u < 34 and 0 <= v < 34 for u, v in data.edges)

    def test_timestamped_file(self, tmp_path):
        path = tmp_path / "temporal.txt"
        path.write_text("# t graph\nb c 30\na b 10\na c 20\n")
        data = load_edge_list(path)
        assert data.n == 3 and data.timestamps == [30, 10, 20]
        stream = temporal_insertions(data)
        # replayed in timestamp order: (a,b) then (a,c) then (b,c)
        kinds = [(u.kind, u.u, u.v) for u in stream]
        ab = (data.labels.index("a"), data.labels.index("b"))
        assert kinds[0] == (Update.INSERT, min(ab), max(ab))
        assert len(kinds) == 3

    def test_mixed_timestamp_lines_rejected(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("a b 10\nb c\n")
        with pytest.raises(ValueError, match="mixed"):
            load_edge_list(path)

    def test_self_loops_and_comments_skipped(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("# header\n\nx x\nx y\n")
        data = load_edge_list(path)
        assert data.m == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c d\n")
        with pytest.raises(ValueError, match="expected"):
            load_edge_list(path)

    def test_no_remap_mode(self, tmp_path):
        path = tmp_path / "ids.txt"
        path.write_text("0 2\n2 5\n")
        data = load_edge_list(path, remap=False)
        assert data.n == 6 and data.edges == [(0, 2), (2, 5)]

    def test_sliding_window_expiry(self, tmp_path):
        path = tmp_path / "seq.txt"
        path.write_text("a b\nb c\nc d\nd e\n")
        data = load_edge_list(path)
        updates = list(temporal_sliding_window(data, window=2))
        dg = DynamicGraph(data.n)
        for upd in updates:
            dg.apply(upd)
            assert dg.m <= 2  # never more than `window` live edges
        deletes = [u for u in updates if u.kind == Update.DELETE]
        assert len(deletes) == 2  # the two oldest edges aged out

    def test_rearrival_refreshes_instead_of_reinserting(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("a b 1\na b 2\nb c 3\n")
        data = load_edge_list(path)
        updates = list(temporal_sliding_window(data, window=10))
        # the duplicate arrival emits nothing; only two inserts appear
        assert [u.kind for u in updates] == [Update.INSERT, Update.INSERT]

    def test_window_validation(self):
        data = load_edge_list(KARATE_EDGES)
        with pytest.raises(ValueError, match="window"):
            temporal_sliding_window(data, window=0)

    def test_committed_fixture_matches_ingestion(self):
        """Record/replay parity of the committed karate trace (fixture
        drift in either the ingestion code or the file fails here and in
        the smoke gate's table2_realgraph scenario)."""
        data = load_edge_list(KARATE_EDGES)
        fresh = Trace.record(temporal_sliding_window(data, window=40))
        assert fresh == Trace.load(KARATE_TRACE)


class TestWorkloadRegistry:
    def test_builtin_names_resolve(self):
        assert {"churn", "sliding_window", "insertion_only",
                "ors_reveal"} <= set(workload_names())
        stream = resolve_workload("churn", smoke=True, seed=3)
        assert stream.n > 0 and stream.count() > 0

    def test_trace_spec_resolves(self):
        stream = resolve_workload("trace:" + KARATE_TRACE)
        assert stream.n == 34 and stream.count() == 116

    def test_unknown_name_and_empty_trace_path(self):
        with pytest.raises(KeyError, match="unknown workload"):
            resolve_workload("_no_such_workload")
        with pytest.raises(ValueError, match="needs a path"):
            resolve_workload("trace:")


def test_long_stream_replay_is_memory_flat():
    """Peak extra memory of a stream replay is independent of its length.

    Replays a short and a 10x longer sliding-window stream through the
    maintainer (log-free graph, ``collect_sizes=False``) and requires the
    peak traced allocation of the long run to stay within a constant factor
    of the short run -- with an eagerly materialized list the long run
    would allocate ~10x more.
    """
    import tracemalloc

    def replay(num_updates):
        stream = sliding_window(64, num_updates, window=24, seed=11)
        alg = FullyDynamicMatching(64, 0.5, seed=11, min_rebuild_gap=2000)
        tracemalloc.start()
        alg.process(stream, collect_sizes=False)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert alg.dynamic_graph.num_updates == num_updates
        return peak

    short_peak = replay(2_000)
    long_peak = replay(20_000)
    assert long_peak < 3 * short_peak + 1_000_000, (
        f"peak grew with stream length: {short_peak} -> {long_peak}")
