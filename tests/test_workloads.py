"""Unit tests for the legacy eager workload API (``repro.graph.workloads``).

The module is now a deprecation shim over the lazy stream sources in
``repro.workloads``; these tests keep the historical list-based contracts
pinned (counts, determinism, termination) and additionally pin the shim's
draw-for-draw equivalence with the streams it wraps.
"""

import pytest

from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.workloads import (
    adversarial_matched_edge_deletions,
    insertion_only,
    ors_reveal,
    planted_matching_churn,
    sliding_window,
)


class TestInsertionOnly:
    def test_counts_and_kinds(self):
        updates = insertion_only(20, 30, seed=1)
        assert len(updates) == 30
        assert all(u.kind == Update.INSERT for u in updates)

    def test_no_duplicate_insertions(self):
        updates = insertion_only(10, 40, seed=2)
        edges = [(u.u, u.v) for u in updates]
        assert len(edges) == len(set(edges))

    def test_applies_cleanly(self):
        updates = insertion_only(15, 25, seed=3)
        dg = DynamicGraph(15)
        changed = dg.apply_all(updates)
        assert changed == 25

    def test_m_capped_at_possible_edges(self):
        updates = insertion_only(4, 100, seed=10)
        assert len(updates) == 6  # 4*3/2 distinct edges exist

    def test_degenerate_n_terminates(self):
        assert insertion_only(0, 5, seed=10) == []
        assert insertion_only(1, 5, seed=10) == []

    def test_seeded_determinism(self):
        assert insertion_only(12, 20, seed=11) == insertion_only(12, 20, seed=11)
        assert insertion_only(12, 20, seed=11) != insertion_only(12, 20, seed=12)


class TestSlidingWindow:
    def test_length_and_window_bound(self):
        updates = sliding_window(20, 100, window=10, seed=4)
        assert len(updates) == 100
        dg = DynamicGraph(20)
        for upd in updates:
            dg.apply(upd)
            assert dg.m <= 10

    def test_deletions_follow_insertions(self):
        updates = sliding_window(10, 60, window=5, seed=5)
        dg = DynamicGraph(10)
        for upd in updates:
            if upd.kind == Update.DELETE:
                assert dg.graph.has_edge(upd.u, upd.v)
            dg.apply(upd)

    def test_window_exceeding_possible_edges_terminates(self):
        # used to loop forever: all 3 possible edges live, no delete due
        updates = sliding_window(3, 10, window=10, seed=6)
        assert len(updates) == 10
        dg = DynamicGraph(3)
        for upd in updates:
            dg.apply(upd)
            assert dg.m <= 3  # the effective window is the edge count

    def test_degenerate_n_terminates(self):
        assert sliding_window(0, 10, window=4, seed=6) == []
        assert sliding_window(1, 10, window=4, seed=6) == []
        assert sliding_window(5, 0, window=4, seed=6) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            sliding_window(5, 10, window=0)
        with pytest.raises(ValueError, match="window"):
            sliding_window(5, 10, window=-3)

    def test_seeded_determinism(self):
        a = sliding_window(10, 50, window=7, seed=13)
        b = sliding_window(10, 50, window=7, seed=13)
        assert a == b


class TestPlantedChurn:
    def test_matching_stays_large(self):
        from repro.matching.blossom import maximum_matching_size

        n, updates = planted_matching_churn(12, rounds=4, seed=6)
        dg = DynamicGraph(n)
        dg.apply_all(updates)
        # after all churn rounds the planted matching is restored
        assert maximum_matching_size(dg.graph) == 12

    def test_invalid_churn_fraction_rejected(self):
        for bad in (1.5, 0.0, -0.25):
            with pytest.raises(ValueError, match="churn_fraction"):
                planted_matching_churn(8, rounds=1, churn_fraction=bad)

    def test_degenerate_n_pairs_rejected(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="n_pairs"):
                planted_matching_churn(bad, rounds=1)

    def test_full_churn_fraction_allowed(self):
        n, updates = planted_matching_churn(6, rounds=2, churn_fraction=1.0,
                                            seed=7)
        dg = DynamicGraph(n)
        dg.apply_all(updates)

    def test_exact_update_counts(self):
        n_pairs, rounds, frac = 10, 3, 0.3
        n, updates = planted_matching_churn(n_pairs, rounds=rounds,
                                            churn_fraction=frac, seed=8)
        k = max(1, int(frac * n_pairs))
        deletes = sum(1 for u in updates if u.kind == Update.DELETE)
        assert deletes == k * rounds
        # prefix: one insert per initial graph edge (planted + noise); then
        # each churn round deletes k planted edges and re-inserts them
        initial = len(updates) - 2 * k * rounds
        assert initial >= n_pairs
        assert all(u.kind == Update.INSERT for u in updates[:initial])

    def test_seeded_determinism(self):
        assert planted_matching_churn(9, rounds=2, seed=21) == \
            planted_matching_churn(9, rounds=2, seed=21)
        assert planted_matching_churn(9, rounds=2, seed=21) != \
            planted_matching_churn(9, rounds=2, seed=22)


class TestOrsReveal:
    def test_reveal_then_remove(self):
        n, updates = ors_reveal(40, 4, 3, seed=7)
        dg = DynamicGraph(n)
        dg.apply_all(updates)
        assert dg.m == 0  # everything inserted is deleted again
        assert dg.max_edges_seen > 0

    def test_seeded_determinism(self):
        assert ors_reveal(30, 3, 3, seed=9) == ors_reveal(30, 3, 3, seed=9)


class TestAdversarial:
    def test_targets_current_matching(self):
        from repro.matching.matching import Matching

        matching = Matching(10, [(0, 1), (2, 3)])
        n, next_update = adversarial_matched_edge_deletions(
            5, rounds=5, current_matching=matching.edge_list, seed=8)
        assert n == 10
        upd = next_update()
        assert upd is not None
        if upd.kind == Update.DELETE:
            assert matching.contains_edge(upd.u, upd.v)

    def test_terminates(self):
        from repro.matching.matching import Matching

        matching = Matching(10, [(0, 1)])
        _, next_update = adversarial_matched_edge_deletions(
            5, rounds=3, current_matching=matching.edge_list, seed=9)
        pulls = [next_update() for _ in range(10)]
        assert any(p is None for p in pulls)


class TestShimStreamEquivalence:
    """The shim must return exactly what its stream source generates."""

    def test_deprecation_warning_on_import(self):
        import importlib
        import warnings

        import repro.graph.workloads as shim

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(shim)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_deprecation_warning_on_fresh_import(self):
        # a genuinely fresh import (not a reload) must warn too: pop the
        # cached module so the import machinery re-executes the shim
        import sys

        sys.modules.pop("repro.graph.workloads", None)
        with pytest.warns(DeprecationWarning, match="repro.workloads"):
            import repro.graph.workloads  # noqa: F401

    def test_eager_results_match_streams(self):
        from repro import workloads as streams

        assert insertion_only(18, 25, seed=40) == \
            list(streams.insertion_only(18, 25, seed=40))
        assert sliding_window(12, 70, window=9, seed=41) == \
            list(streams.sliding_window(12, 70, window=9, seed=41))
        n, updates = planted_matching_churn(9, rounds=3, seed=42)
        stream = streams.planted_matching_churn(9, rounds=3, seed=42)
        assert (n, updates) == (stream.n, list(stream))
        n, updates = ors_reveal(28, 3, 3, seed=43)
        stream = streams.ors_reveal(28, 3, 3, seed=43)
        assert (n, updates) == (stream.n, list(stream))

    def test_adversarial_callable_matches_stream(self):
        from repro import workloads as streams
        from repro.matching.matching import Matching

        def pulls(make_matching):
            matching = make_matching()
            n, next_update = adversarial_matched_edge_deletions(
                5, rounds=4, current_matching=matching.edge_list, seed=44)
            out = []
            while True:
                upd = next_update()
                if upd is None:
                    break
                out.append(upd)
            return n, out

        n_old, old = pulls(lambda: Matching(10, [(0, 1), (2, 3)]))
        stream = streams.adversarial_matched_edge_deletions(
            5, rounds=4,
            current_matching=Matching(10, [(0, 1), (2, 3)]).edge_list,
            seed=44)
        assert (n_old, old) == (stream.n, list(stream))
