"""Unit tests for the dynamic workload generators."""

from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.workloads import (
    adversarial_matched_edge_deletions,
    insertion_only,
    ors_reveal,
    planted_matching_churn,
    sliding_window,
)


class TestInsertionOnly:
    def test_counts_and_kinds(self):
        updates = insertion_only(20, 30, seed=1)
        assert len(updates) == 30
        assert all(u.kind == Update.INSERT for u in updates)

    def test_no_duplicate_insertions(self):
        updates = insertion_only(10, 40, seed=2)
        edges = [(u.u, u.v) for u in updates]
        assert len(edges) == len(set(edges))

    def test_applies_cleanly(self):
        updates = insertion_only(15, 25, seed=3)
        dg = DynamicGraph(15)
        changed = dg.apply_all(updates)
        assert changed == 25


class TestSlidingWindow:
    def test_length_and_window_bound(self):
        updates = sliding_window(20, 100, window=10, seed=4)
        assert len(updates) == 100
        dg = DynamicGraph(20)
        for upd in updates:
            dg.apply(upd)
            assert dg.m <= 10

    def test_deletions_follow_insertions(self):
        updates = sliding_window(10, 60, window=5, seed=5)
        dg = DynamicGraph(10)
        for upd in updates:
            if upd.kind == Update.DELETE:
                assert dg.graph.has_edge(upd.u, upd.v)
            dg.apply(upd)


class TestPlantedChurn:
    def test_matching_stays_large(self):
        from repro.matching.blossom import maximum_matching_size

        n, updates = planted_matching_churn(12, rounds=4, seed=6)
        dg = DynamicGraph(n)
        dg.apply_all(updates)
        # after all churn rounds the planted matching is restored
        assert maximum_matching_size(dg.graph) == 12


class TestOrsReveal:
    def test_reveal_then_remove(self):
        n, updates = ors_reveal(40, 4, 3, seed=7)
        dg = DynamicGraph(n)
        dg.apply_all(updates)
        assert dg.m == 0  # everything inserted is deleted again
        assert dg.max_edges_seen > 0


class TestAdversarial:
    def test_targets_current_matching(self):
        from repro.matching.matching import Matching

        matching = Matching(10, [(0, 1), (2, 3)])
        n, next_update = adversarial_matched_edge_deletions(
            5, rounds=5, current_matching=matching.edge_list, seed=8)
        assert n == 10
        upd = next_update()
        assert upd is not None
        if upd.kind == Update.DELETE:
            assert matching.contains_edge(upd.u, upd.v)

    def test_terminates(self):
        from repro.matching.matching import Matching

        matching = Matching(10, [(0, 1)])
        _, next_update = adversarial_matched_edge_deletions(
            5, rounds=3, current_matching=matching.edge_list, seed=9)
        pulls = [next_update() for _ in range(10)]
        assert any(p is None for p in pulls)
