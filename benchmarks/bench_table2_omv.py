"""Table 2 (OMv rows / Theorems 7.10 & 7.12): the OMv-backed dynamic algorithm.

Theorem 7.12 maintains a (1+eps)-approximate matching in amortized
``poly(1/eps) * n / 2^{Omega(sqrt(log n))}`` time by routing the weak-oracle
queries through a dynamic approximate OMv data structure over the bipartite
double cover (Theorem 7.10 / Lemma 7.9); the improvement of this paper is that
the reduction's 1/eps factor is polynomial for general (not only bipartite)
graphs.

Measured here, per eps: the OMv query / row-probe / update counts and the
amortized update work of the maintainer when its weak oracle is OMv-backed,
side by side with the greedy-induced oracle (which touches edges directly).
The poly(1/eps) growth of the OMv query count -- rather than exponential -- is
the reproduced quantity; the 2^{Omega(sqrt(log n))} substrate factor is
substituted by the simulator.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ParameterProfile
from repro.workloads import planted_matching_churn
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle, OMvWeakOracle

from repro.bench import register

from _common import EPS_SWEEP_SMALL, emit, scenario_main


def run_table2_omv(seed: int = 0) -> Table:
    updates = planted_matching_churn(12, rounds=3, seed=seed)
    n = updates.n
    table = Table(
        "Table 2 (OMv rows): OMv-backed vs direct weak oracle",
        ["eps", "oracle", "amortized work/update", "weak-oracle calls",
         "omv queries", "omv row probes", "omv updates", "final size/opt"])
    for eps in EPS_SWEEP_SMALL:
        for label, factory in (
                ("OMv-backed (Thm 7.12)", lambda g, c: OMvWeakOracle(g, counters=c)),
                ("greedy-induced (direct)", lambda g, c: GreedyInducedWeakOracle(g, seed=seed))):
            counters = Counters()
            alg = FullyDynamicMatching(
                n, eps, counters=counters, seed=seed,
                oracle_factory=lambda g, c=counters, f=factory: f(g, c))
            for upd in updates:
                alg.update(upd)
            opt = maximum_matching_size(alg.graph)
            table.add_row(
                eps, label,
                counters.get("update_work") / max(1, counters.get("dyn_updates")),
                counters.get("weak_oracle_calls"),
                counters.get("omv_queries"),
                counters.get("omv_row_probes"),
                counters.get("omv_updates"),
                alg.current_matching().size / max(1, opt))
    return table


def test_table2_omv(benchmark):
    """Regenerate the OMv rows and time one OMv-backed maintainer run."""
    stream = planted_matching_churn(12, rounds=2, seed=0)
    n, updates = stream.n, stream

    def run():
        counters = Counters()
        alg = FullyDynamicMatching(n, 0.25, counters=counters, seed=0,
                                   oracle_factory=lambda g: OMvWeakOracle(g, counters=counters))
        for upd in updates:
            alg.update(upd)
        return alg.current_matching().size

    benchmark(run)
    emit(run_table2_omv(), "table2_omv.txt")


# ------------------------------------------------------------ repro.bench
@register("table2_omv", suite="table2", backends=("adjset", "csr"),
          description="OMv-backed weak oracle inside the dynamic maintainer: "
                      "query/probe/update counts (kernel engine tier)")
def _table2_omv_scenario(spec, counters):
    eps = spec.resolved_eps()
    pairs, rounds = (8, 2) if spec.smoke else (12, 3)
    updates = planted_matching_churn(pairs, rounds=rounds, seed=spec.seed)
    # engine="kernel" routes hot passes through the packed-bitset kernels;
    # byte-identical to "array" (pinned by tests/test_engine_parity.py), so
    # the counter columns stay comparable against historical records
    profile = dataclasses.replace(ParameterProfile.practical(eps),
                                  engine="kernel")
    alg = FullyDynamicMatching(
        updates.n, eps, counters=counters, seed=spec.seed,
        backend=spec.backend, profile=profile,
        oracle_factory=lambda g: OMvWeakOracle(g, counters=counters))
    alg.process(updates, collect_sizes=False)
    opt = maximum_matching_size(alg.graph)
    return {"amortized_update_work": alg.amortized_update_work(),
            "size_over_opt": alg.current_matching().size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("table2_omv", argv)


if __name__ == "__main__":
    raise SystemExit(main())
