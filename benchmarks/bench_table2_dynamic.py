"""Table 2 (ORS row / Theorem 7.4): fully dynamic matching trade-offs.

Table 2 compares fully dynamic (1+eps)-approximate matching algorithms built
on the [McG05]-style boosting reduction.  The headline of this paper's row is
that the 1/eps dependence of the amortized update time drops from exponential
((1/eps)^{O(1/eps)}, [BG24]/[AKK25]) to polynomial, while the n- and
ORS-dependence is unchanged.

Measured part: the periodic-rebuild maintainer with this paper's weak-oracle
framework (polynomial 1/eps) versus the same maintainer with the
McGregor-style rebuild engine (exponential schedule, executed capped), plus a
lazy-greedy 2-approximation and exact recomputation as the two walls, all on
the same churn workload.  Reported per algorithm: amortized update work,
weak-oracle / matching-oracle calls per rebuild, and final approximation
ratio.

Formula part: the Theorem 7.4 vs [AKK25] update-time expressions evaluated on
the constructed ORS instances (both depend on the same unknown ORS(n, r); the
table shows the 1/eps gap at fixed n, k, ORS).
"""

from __future__ import annotations

import pytest

from repro.workloads import planted_matching_churn, resolve_workload
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.dynamic.baselines import ExponentialBoostingDynamic, LazyGreedyDynamic, RecomputeFromScratchDynamic
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.ors import akk25_update_time, ors_lower_bound_construction, thm74_update_time
from repro.baselines.mcgregor import mcgregor_scheduled_calls

from repro.bench import register

from _common import EPS_SWEEP_SMALL, emit, scenario_main


def _run_maintainer(alg, updates):
    for upd in updates:
        alg.update(upd)
    return alg


def run_table2_measured(seed: int = 0) -> Table:
    stream = planted_matching_churn(15, rounds=4, seed=seed)
    n, updates = stream.n, stream.materialize()
    table = Table(
        "Table 2 (measured): fully dynamic maintainers on a churn workload",
        ["eps", "algorithm", "amortized work/update", "rebuilds",
         "oracle calls", "final size/opt", "scheduled 1/eps dependence"])
    for eps in EPS_SWEEP_SMALL:
        rows = []

        counters = Counters()
        ours = _run_maintainer(
            FullyDynamicMatching(n, eps, counters=counters, seed=seed), updates)
        opt = maximum_matching_size(ours.graph)
        rows.append(("this work (Thm 7.1 + Thm 6.2)",
                     counters.get("update_work") / max(1, counters.get("dyn_updates")),
                     counters.get("dyn_rebuilds"),
                     counters.get("weak_oracle_calls"),
                     ours.current_matching().size / max(1, opt),
                     f"poly: ~{(1/eps)**7:.3g}"))

        counters = Counters()
        expo = _run_maintainer(
            ExponentialBoostingDynamic(n, eps, counters=counters, seed=seed), updates)
        rows.append(("McGregor-style rebuild [BKS23/AKK25]",
                     counters.get("update_work") / max(1, counters.get("dyn_updates")),
                     counters.get("dyn_rebuilds"),
                     counters.get("oracle_calls"),
                     expo.current_matching().size / max(1, opt),
                     f"exp: ~{mcgregor_scheduled_calls(eps):.3g}"))

        counters = Counters()
        lazy = _run_maintainer(LazyGreedyDynamic(n, counters=counters), updates)
        rows.append(("lazy greedy (2-approx wall)",
                     counters.get("update_work") / max(1, counters.get("dyn_updates")),
                     0, 0,
                     lazy.current_matching().size / max(1, opt), "-"))

        counters = Counters()
        exact = _run_maintainer(RecomputeFromScratchDynamic(n, counters=counters),
                                updates)
        rows.append(("exact recompute (quality wall)",
                     counters.get("update_work") / max(1, counters.get("dyn_updates")),
                     0, 0,
                     exact.current_matching().size / max(1, opt), "-"))

        for name, work, rebuilds, calls, ratio, sched in rows:
            table.add_row(eps, name, work, rebuilds, calls, ratio, sched)
    return table


def run_table2_formulas(n: int = 10 ** 5, k: int = 2) -> Table:
    graph, matchings = ors_lower_bound_construction(200, 5)
    ors_value = float(len(matchings))
    table = Table(
        f"Table 2 (formulas): amortized update time at n={n}, k={k}, "
        f"ORS={ors_value:g} (constructed instance)",
        ["eps", "this work (Thm 7.4)", "[AKK25]", "gap factor"])
    for eps in (0.5, 0.25, 0.125, 0.0625):
        ours = thm74_update_time(n, eps, k, ors_value)
        theirs = akk25_update_time(n, eps, k, ors_value)
        table.add_row(eps, ours, theirs,
                      theirs / ours if ours and theirs != float("inf") else float("inf"))
    return table


def test_table2_dynamic(benchmark):
    """Regenerate Table 2 (dynamic) and time this work's maintainer at eps=1/4."""
    stream = planted_matching_churn(15, rounds=4, seed=0)
    n, updates = stream.n, stream

    def run():
        alg = FullyDynamicMatching(n, 0.25, seed=0)
        for upd in updates:
            alg.update(upd)
        return alg.current_matching().size

    benchmark(run)
    emit(run_table2_measured(), "table2_dynamic_measured.txt")
    emit(run_table2_formulas(), "table2_dynamic_formulas.txt")


# ------------------------------------------------------------ repro.bench
@register("table2_dynamic", suite="table2", selectors=("workload",),
          backends=("adjset", "csr"),
          description="fully dynamic maintainer on a selectable workload "
                      "(default: planted churn): amortized work, rebuilds, "
                      "oracle calls")
def _table2_dynamic_scenario(spec, counters):
    eps = spec.resolved_eps()
    if spec.workload == "default":
        pairs, rounds = (8, 2) if spec.smoke else (15, 4)
        stream = planted_matching_churn(pairs, rounds=rounds, seed=spec.seed)
    else:
        # any registered workload name or a "trace:<path>" spec
        stream = resolve_workload(spec.workload, smoke=spec.smoke,
                                  seed=spec.seed)
    alg = FullyDynamicMatching(stream.n, eps, counters=counters,
                               seed=spec.seed, backend=spec.backend)
    alg.process(stream, collect_sizes=False)
    opt = maximum_matching_size(alg.graph)
    return {"amortized_update_work": alg.amortized_update_work(),
            "size_over_opt": alg.current_matching().size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("table2_dynamic", argv)


if __name__ == "__main__":
    raise SystemExit(main())
