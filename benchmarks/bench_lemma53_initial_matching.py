"""Lemma 5.3 / Lemma 6.7: the constant-approximate initial matching.

Both frameworks start by peeling: repeatedly invoke the oracle on the
still-unmatched vertices and keep everything it returns.  Lemma 5.3 proves 2c
invocations of a c-approximate oracle yield a 4-approximation; Lemma 6.7 gives
the analogous statement for the weak oracle (a 3-approximation).

This benchmark measures, per oracle, the number of invocations actually used
and the approximation factor actually achieved, across random workloads --
both should be comfortably inside the lemma's budget/guarantee.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.core.boosting import BoostingFramework
from repro.core.dynamic_boosting import WeakOracleBoostingFramework
from repro.core.oracles import ExactMatchingOracle, GreedyMatchingOracle, RandomGreedyMatchingOracle
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle

from repro.bench import register

from _common import emit, scenario_main


def run_lemma53(seeds=(0, 1, 2)) -> Table:
    table = Table(
        "Lemma 5.3 / 6.7: initial-matching peeling (oracle calls and quality)",
        ["oracle", "c", "avg oracle calls", "lemma call budget",
         "worst approx factor", "lemma guarantee"])
    oracles = [
        ("greedy (Amatching)", GreedyMatchingOracle(), 2 * 2 + 1, 4.0),
        ("random-greedy (Amatching)", RandomGreedyMatchingOracle(seed=0), 2 * 2 + 1, 4.0),
        ("exact (Amatching)", ExactMatchingOracle(), 2 * 1 + 1, 4.0),
    ]
    for name, oracle, budget, guarantee in oracles:
        calls = 0.0
        worst = 1.0
        for seed in seeds:
            g = erdos_renyi(80, 0.06, seed=seed)
            counters = Counters()
            framework = BoostingFramework(0.25, oracle=oracle, counters=counters, seed=seed)
            m = framework.initial_matching(g)
            calls += counters.get("oracle_calls")
            opt = maximum_matching_size(g)
            worst = max(worst, opt / max(1, m.size))
        table.add_row(name, oracle.c, calls / len(seeds), budget, worst, guarantee)

    # the weak-oracle variant (Lemma 6.7)
    calls = 0.0
    worst = 1.0
    for seed in seeds:
        g = erdos_renyi(80, 0.06, seed=seed)
        counters = Counters()
        framework = WeakOracleBoostingFramework(
            0.25, GreedyInducedWeakOracle(g, seed=seed), counters=counters, seed=seed)
        m = framework.initial_matching(g)
        calls += counters.get("weak_oracle_calls")
        worst = max(worst, maximum_matching_size(g) / max(1, m.size))
    table.add_row("greedy-induced (Aweak)", "-", calls / len(seeds),
                  "O(1/(lambda delta))", worst, 3.0)
    return table


def test_lemma53_initial_matching(benchmark):
    """Regenerate the Lemma 5.3 table and time one peeling run."""
    g = erdos_renyi(80, 0.06, seed=0)
    framework = BoostingFramework(0.25, seed=0)
    benchmark(lambda: framework.initial_matching(g))
    emit(run_lemma53(), "lemma53_initial_matching.txt")


# ------------------------------------------------------------ repro.bench
@register("lemma53_initial_matching", suite="lemmas",
          description="initial-matching peeling: oracle calls used and "
                      "approximation achieved (Lemma 5.3 / 6.7)")
def _lemma53_scenario(spec, counters):
    eps = spec.resolved_eps()
    n = 40 if spec.smoke else 80
    g = erdos_renyi(n, 0.06, seed=spec.seed)
    framework = BoostingFramework(eps, oracle=GreedyMatchingOracle(),
                                  counters=counters, seed=spec.seed)
    matching = framework.initial_matching(g)
    opt = maximum_matching_size(g)
    return {"approx_factor": opt / max(1, matching.size)}


def main(argv=None) -> int:
    return scenario_main("lemma53_initial_matching", argv)


if __name__ == "__main__":
    raise SystemExit(main())
