"""Table 1 (MPC rows): oracle invocations of the boosting frameworks in MPC.

The paper's Table 1 compares, for the MPC setting, the number of invocations
of a Theta(1)-approximate maximum-matching oracle needed to reach a (1+eps)
approximation:

    [FMU22]                O(1/eps^52)
    [FMU22] + [MMSS25]     O(1/eps^39)
    this work (Thm 1.1)    O(1/eps^7 * log(1/eps))

This benchmark regenerates the comparison on executable instances: for each
eps it runs (a) this paper's framework and (b) the FMU22-style schedule on the
same workload with the same greedy oracle, and reports measured oracle calls,
measured MPC rounds of the full Corollary A.1 instantiation, and the paper's
scheduled bounds (the quantities the table actually states).  The expectation
is on the *shape*: the scheduled-bound columns separate by dozens of orders of
magnitude, and the measured columns show this work never issuing more calls
than the FMU22-style schedule while both reach the same (1+eps) quality.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import disjoint_paths, erdos_renyi
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.core.boosting import boost_matching
from repro.core.config import ParameterProfile
from repro.core.oracles import GreedyMatchingOracle
from repro.baselines.fmu22 import fmu22_boost, fmu22_scheduled_calls
from repro.mpc.boost_mpc import mpc_boosted_matching

from repro.bench import register

from _common import EPS_SWEEP, boosting_workload, emit, scenario_main


def _workload(seed: int = 0):
    # a workload with long augmenting paths (where boosting actually works)
    # plus random structure
    return boosting_workload(seed)


def run_table1_mpc(seeds=(0, 1)) -> Table:
    table = Table(
        "Table 1 (MPC): oracle invocations to reach (1+eps), ours vs FMU22-style",
        ["eps", "ours calls", "fmu22-style calls", "ours rounds (Cor A.1)",
         "ours size/opt", "fmu22 size/opt",
         "scheduled ours O(eps^-7 log)", "scheduled FMU22 O(eps^-52)"])
    for eps in EPS_SWEEP:
        ours_calls = fmu_calls = rounds = 0.0
        ours_ratio = fmu_ratio = 0.0
        for seed in seeds:
            g = _workload(seed)
            opt = maximum_matching_size(g)

            ours_counters = Counters()
            m_ours, _ = mpc_boosted_matching(g, eps, counters=ours_counters, seed=seed)
            ours_calls += ours_counters.get("oracle_calls")
            rounds += ours_counters.get("mpc_total_rounds")
            ours_ratio += m_ours.size / max(1, opt)

            fmu_counters = Counters()
            m_fmu = fmu22_boost(g, eps, oracle=GreedyMatchingOracle(),
                                counters=fmu_counters, seed=seed)
            fmu_calls += fmu_counters.get("oracle_calls")
            fmu_ratio += m_fmu.size / max(1, opt)

        k = len(seeds)
        profile = ParameterProfile.paper(eps)
        table.add_row(eps, ours_calls / k, fmu_calls / k, rounds / k,
                      ours_ratio / k, fmu_ratio / k,
                      profile.paper_invocation_bound(),
                      fmu22_scheduled_calls(eps, "mpc"))
    return table


def test_table1_mpc(benchmark):
    """Regenerate Table 1 (MPC) and time one framework run at eps = 1/4."""
    g = _workload(0)
    benchmark(lambda: boost_matching(g, 0.25, oracle=GreedyMatchingOracle(), seed=0))
    emit(run_table1_mpc(), "table1_mpc.txt")


# ------------------------------------------------------------ repro.bench
@register("table1_mpc", suite="table1", backends=("adjset", "csr"),
          description="MPC boosting: oracle calls, rounds and quality at one "
                      "eps on the Table 1 workload")
def _table1_mpc_scenario(spec, counters):
    eps = spec.resolved_eps()
    if spec.smoke:
        g = boosting_workload(spec.seed, er_n=40, er_p=0.06, num_paths=2,
                              path_len=5, backend=spec.backend)
    else:
        g = boosting_workload(spec.seed, backend=spec.backend)
    matching, _ = mpc_boosted_matching(g, eps, counters=counters, seed=spec.seed)
    opt = maximum_matching_size(g)
    return {"size_over_opt": matching.size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("table1_mpc", argv)


if __name__ == "__main__":
    raise SystemExit(main())
