"""Scaling with n: runtime and oracle calls at fixed eps.

Theorem 1.1's oracle-call bound is independent of n (it only depends on eps);
the per-call cost and the bookkeeping scale with the instance.  This benchmark
sweeps n at fixed eps = 1/4 and reports wall-clock time, oracle calls and
oracle work (vertices handed to the oracle) for the static boosting framework,
plus a log-log fit of the time against n.  The oracle-call count is bounded by
the eps-schedule, not by n, but with early exit enabled it does grow on
instances whose random structure leaves more long augmenting paths at larger
n; the wall-clock column (dominated by the Python-level derived-graph
construction, which is O(m) per oracle call) is the honest cost to report.
"""

from __future__ import annotations

import time

import pytest

from repro.graph.generators import erdos_renyi
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table, geometric_fit
from repro.matching.blossom import maximum_matching_size
from repro.core.boosting import boost_matching

from repro.bench import register

from _common import emit, scenario_main


SIZES = (40, 80, 160, 320)


def run_scaling(eps: float = 0.25, seed: int = 0) -> Table:
    table = Table(
        "Scaling with n at eps = 1/4 (static boosting, greedy oracle)",
        ["n", "m", "time (s)", "oracle calls", "oracle vertices seen", "size/opt"])
    ns, times = [], []
    for n in SIZES:
        g = erdos_renyi(n, 4.0 / n, seed=seed)
        counters = Counters()
        start = time.perf_counter()
        m = boost_matching(g, eps, counters=counters, seed=seed)
        elapsed = time.perf_counter() - start
        opt = maximum_matching_size(g)
        table.add_row(n, g.m, elapsed, counters.get("oracle_calls"),
                      counters.get("oracle_vertices_seen"),
                      m.size / max(1, opt))
        ns.append(n)
        times.append(elapsed)
    _, exponent = geometric_fit(ns, times)
    table.add_row("fit", "-", f"time ~ n^{exponent:.2f}", "-", "-", "-")
    return table


def test_scaling_n(benchmark):
    """Regenerate the n-scaling series; time the n = 160 instance."""
    g = erdos_renyi(160, 4.0 / 160, seed=0)
    benchmark(lambda: boost_matching(g, 0.25, seed=0))
    emit(run_scaling(), "scaling_n.txt")


# ------------------------------------------------------------ repro.bench
@register("scaling_n", suite="scaling", backends=("adjset", "csr"),
          description="static boosting at the largest sweep size: wall-clock "
                      "and oracle work vs n")
def _scaling_scenario(spec, counters):
    eps = spec.resolved_eps()
    n = 80 if spec.smoke else SIZES[-1]
    g = erdos_renyi(n, 4.0 / n, seed=spec.seed, backend=spec.backend)
    matching = boost_matching(g, eps, counters=counters, seed=spec.seed)
    opt = maximum_matching_size(g)
    return {"n": n, "m": g.m, "size_over_opt": matching.size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("scaling_n", argv)


if __name__ == "__main__":
    raise SystemExit(main())
