"""Figure 1 / Lemma 4.5: structure anatomy during a phase.

Figure 1 of the paper illustrates a structure S_alpha: an alternating tree of
contracted blossoms with a working vertex and an active path.  There is no
measured data behind the figure, so this benchmark reports the corresponding
*statistics* of the reproduction: over one phase on a blossom-rich workload,
the number of structures, their maximum size (which Lemma 4.5 bounds by
Delta_h = 36 h / eps), the number of non-trivial blossom nodes, and the active
path lengths -- i.e. everything the figure depicts, measured.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import blossom_gadget, erdos_renyi
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.greedy import greedy_maximal_matching
from repro.core.config import ParameterProfile
from repro.core.phase import DirectDriver, backtrack_pass, contract_pass, run_phase
from repro.core.structures import PhaseState

from repro.bench import register

from _common import emit, scenario_main


def _workload(seed: int = 0, er_n: int = 60, num_gadgets: int = 6) -> Graph:
    er = erdos_renyi(er_n, 0.06, seed=seed)
    gadgets = blossom_gadget(num_gadgets, 4)
    g = Graph(er.n + gadgets.n)
    for u, v in er.edges():
        g.add_edge(u, v)
    for u, v in gadgets.edges():
        g.add_edge(er.n + u, er.n + v)
    return g


def structure_statistics(eps: float, seed: int = 0, er_n: int = 60,
                         num_gadgets: int = 6):
    g = _workload(seed, er_n=er_n, num_gadgets=num_gadgets)
    matching = greedy_maximal_matching(g)
    profile = ParameterProfile.practical(eps)
    h = 0.5
    state = PhaseState(g, matching, profile.ell_max)
    state.init_structures()
    driver = DirectDriver(random.Random(seed))
    limit = profile.structure_limit(h)

    # run a few pass-bundles manually so intermediate statistics can be read
    stats = []
    for bundle in range(6):
        for s in state.live_structures():
            s.reset_marks(limit)
        driver.extend_active_path(state)
        driver.contract_and_augment(state)
        backtrack_pass(state)
        structures = state.live_structures()
        sizes = [s.size for s in structures] or [0]
        blossoms = sum(1 for s in structures for node in s.nodes
                       if node.outer and not node.is_trivial)
        active_paths = [len(s.active_path()) for s in structures if s.active] or [0]
        stats.append((bundle + 1, len(structures), max(sizes), blossoms,
                      max(active_paths), profile.structure_size_bound(h)))
        state.check_invariants()
    return stats


def run_fig1(eps: float = 0.25) -> Table:
    table = Table(
        "Figure 1 statistics: structures across pass-bundles (eps=%.3g)" % eps,
        ["pass-bundle", "#structures", "max |S_alpha|", "#non-trivial blossoms",
         "max active-path length", "Lemma 4.5 bound Delta_h"])
    for row in structure_statistics(eps):
        table.add_row(*row)
    return table


def test_fig1_structures(benchmark):
    """Measure structure anatomy and time one full phase on the workload."""
    g = _workload(0)
    matching = greedy_maximal_matching(g)
    profile = ParameterProfile.practical(0.25)

    benchmark(lambda: run_phase(g, matching, profile, 0.5,
                                DirectDriver(random.Random(0))))
    emit(run_fig1(), "fig1_structures.txt")


# ------------------------------------------------------------ repro.bench
@register("fig1_structures", suite="figures",
          description="structure anatomy across pass-bundles (Lemma 4.5 "
                      "size bound)")
def _fig1_scenario(spec, counters):
    eps = spec.resolved_eps()
    er_n, num_gadgets = (30, 3) if spec.smoke else (60, 6)
    stats = structure_statistics(eps, seed=spec.seed, er_n=er_n,
                                 num_gadgets=num_gadgets)
    return {"pass_bundles": len(stats),
            "max_structures": max(row[1] for row in stats),
            "max_structure_size": max(row[2] for row in stats),
            "max_blossoms": max(row[3] for row in stats),
            "max_active_path": max(row[4] for row in stats)}


def main(argv=None) -> int:
    return scenario_main("fig1_structures", argv)


if __name__ == "__main__":
    raise SystemExit(main())
