"""Theorem 1.1 / 6.2 end-to-end: approximation quality versus eps.

The theorems promise a (1+eps)-approximate matching.  This benchmark sweeps
eps and reports, for every framework in the library (semi-streaming, static
boosting with a greedy oracle, weak-oracle boosting, the FMU22-style schedule
and the McGregor-style baseline), the worst measured approximation factor over
the workload suite -- all of which should sit below the corresponding 1+eps
line (the capped McGregor baseline is allowed to miss it; that is the point of
the comparison).
"""

from __future__ import annotations

import pytest

from repro.graph.generators import blossom_gadget, disjoint_paths, erdos_renyi, planted_matching
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.core.streaming import semi_streaming_matching
from repro.core.boosting import boost_matching
from repro.core.dynamic_boosting import boost_matching_weak
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle
from repro.baselines.fmu22 import fmu22_boost
from repro.baselines.mcgregor import mcgregor_boost

from repro.bench import register

from _common import EPS_SWEEP, emit, scenario_main


def _suite(seed: int = 0):
    yield "er", erdos_renyi(60, 0.08, seed=seed)
    yield "paths", disjoint_paths(5, 9)
    yield "blossoms", blossom_gadget(5, 4)
    g, _ = planted_matching(30, 0.02, seed=seed)
    yield "planted", g


def run_quality() -> Table:
    table = Table(
        "Approximation factor (mu / |M|, worst over the workload suite) vs eps",
        ["eps", "target 1+eps", "streaming [MMSS25]", "boosting (Thm 1.1)",
         "weak-oracle (Thm 6.2)", "FMU22-style", "McGregor-style (capped)"])
    for eps in EPS_SWEEP:
        worst = {"stream": 1.0, "boost": 1.0, "weak": 1.0, "fmu": 1.0, "mcg": 1.0}
        for name, g in _suite():
            opt = maximum_matching_size(g)
            if opt == 0:
                continue
            runs = {
                "stream": semi_streaming_matching(g, eps, seed=1),
                "boost": boost_matching(g, eps, seed=1),
                "weak": boost_matching_weak(g, eps, GreedyInducedWeakOracle(g, seed=1), seed=1),
                "fmu": fmu22_boost(g, eps, seed=1),
                "mcg": mcgregor_boost(g, eps, seed=1),
            }
            for key, matching in runs.items():
                worst[key] = max(worst[key], opt / max(1, matching.size))
        table.add_row(eps, 1 + eps, worst["stream"], worst["boost"],
                      worst["weak"], worst["fmu"], worst["mcg"])
    return table


def test_quality_vs_eps(benchmark):
    """Regenerate the quality-vs-eps series; time one boosted run at eps=1/8."""
    g = disjoint_paths(5, 9)
    benchmark(lambda: boost_matching(g, 0.125, seed=1))
    emit(run_quality(), "quality_vs_eps.txt")


# ------------------------------------------------------------ repro.bench
@register("quality_vs_eps", suite="quality",
          description="worst approximation factor of every framework at one "
                      "eps over the workload suite")
def _quality_scenario(spec, counters):
    eps = spec.resolved_eps()
    suite = list(_suite(spec.seed))
    if spec.smoke:
        suite = suite[:2]  # er + paths keep the run seconds-scale
    worst = {"stream": 1.0, "boost": 1.0, "weak": 1.0}
    for _, g in suite:
        opt = maximum_matching_size(g)
        if opt == 0:
            continue
        runs = {
            "stream": semi_streaming_matching(g, eps, seed=spec.seed + 1,
                                              counters=counters),
            "boost": boost_matching(g, eps, counters=counters,
                                    seed=spec.seed + 1),
            "weak": boost_matching_weak(
                g, eps, GreedyInducedWeakOracle(g, seed=spec.seed + 1),
                counters=counters, seed=spec.seed + 1),
        }
        for key, matching in runs.items():
            worst[key] = max(worst[key], opt / max(1, matching.size))
    return {"target": 1 + eps,
            "worst_streaming": worst["stream"],
            "worst_boosting": worst["boost"],
            "worst_weak_oracle": worst["weak"]}


def main(argv=None) -> int:
    return scenario_main("quality_vs_eps", argv)


if __name__ == "__main__":
    raise SystemExit(main())
