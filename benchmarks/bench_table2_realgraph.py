"""Table 2 (real-graph row): the dynamic maintainer on an ingested real graph.

The paper evaluates on synthetic constructions only; this row exercises the
same fully dynamic maintainer on a *real* graph turned dynamic by the
workload subsystem's ingestion path: Zachary's karate club
(``benchmarks/data/karate.txt``, the classic 34-vertex/78-edge social
network) is replayed in arrival order with sliding-window expiry
(``repro.workloads.temporal_sliding_window``), so edges age out and the
maintainer must survive genuine deletions, not just churn it chose itself.

The workload ships as a committed trace (``benchmarks/data/karate_w40.npz``)
so every run -- any host, any backend, any ``--jobs`` -- replays the exact
same update sequence.  The scenario first *re-records* the stream from the
raw edge list and verifies it matches the committed trace byte-for-byte
(record/replay parity: drift in the ingestion code or the fixture fails the
smoke gate loudly), then replays the trace through
:class:`~repro.dynamic.fully_dynamic.FullyDynamicMatching`.

Reported: amortized update work, rebuilds, weak-oracle calls, and the final
size against the exact optimum of the end-of-stream snapshot.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.workloads import (
    Trace,
    load_edge_list,
    register_workload,
    temporal_sliding_window,
)

from repro.bench import register

from _common import EPS_SWEEP_SMALL, emit, scenario_main

DATA_DIR = Path(__file__).resolve().parent / "data"
KARATE_EDGES = DATA_DIR / "karate.txt"
KARATE_TRACE = DATA_DIR / "karate_w40.npz"
#: expiry window (in arrival index units; karate.txt carries no timestamps)
WINDOW = 40


def karate_window_stream():
    """The karate-club sliding-window stream, rebuilt from the raw edge list."""
    return temporal_sliding_window(load_edge_list(KARATE_EDGES), window=WINDOW)


_VERIFIED_TRACE = None  # per-process cache of the parity-checked trace


def check_trace_parity() -> Trace:
    """Re-record the stream and require byte-identity with the committed trace.

    Returns the committed trace (the workload every run replays).  A
    mismatch means the ingestion/stream code or the fixture drifted; the
    fix is deliberate regeneration via ``karate_window_stream()`` --
    silently measuring a different workload is the failure mode this
    guards against.  The check runs once per process and is cached, so
    warmup/repeat executions of the bench scenario time only the maintainer
    replay, not fixture parsing and re-recording.
    """
    global _VERIFIED_TRACE
    if _VERIFIED_TRACE is not None:
        return _VERIFIED_TRACE
    committed = Trace.load(KARATE_TRACE)
    fresh = Trace.record(karate_window_stream())
    if fresh != committed:
        raise RuntimeError(
            f"record/replay parity violated: re-recorded karate stream "
            f"({len(fresh)} updates) differs from committed trace "
            f"{KARATE_TRACE.name} ({len(committed)} updates); regenerate "
            "the fixture only if the ingestion change is intentional")
    _VERIFIED_TRACE = committed
    return committed


@register_workload("karate_window",
                   "karate-club real graph, sliding-window expiry "
                   "(committed trace)")
def _karate_workload(smoke: bool, seed: int):
    # a trace is its bytes: smoke and seed do not change what is replayed
    return Trace.load(KARATE_TRACE).stream(name="karate_window")


def run_table2_realgraph(seed: int = 0) -> Table:
    trace = check_trace_parity()
    table = Table(
        "Table 2 (real-graph row): maintainer on the karate-club "
        "sliding-window trace",
        ["eps", "amortized work/update", "rebuilds", "weak-oracle calls",
         "final size/opt"])
    for eps in EPS_SWEEP_SMALL:
        counters = Counters()
        alg = FullyDynamicMatching(trace.n, eps, counters=counters, seed=seed)
        alg.process(trace.stream(), collect_sizes=False)
        opt = maximum_matching_size(alg.graph)
        table.add_row(eps, alg.amortized_update_work(),
                      counters.get("dyn_rebuilds"),
                      counters.get("weak_oracle_calls"),
                      alg.current_matching().size / max(1, opt))
    return table


def test_table2_realgraph(benchmark):
    """Parity-check the fixture and time one replay at eps = 1/4."""
    trace = check_trace_parity()

    def run():
        alg = FullyDynamicMatching(trace.n, 0.25, seed=0)
        alg.process(trace.stream(), collect_sizes=False)
        return alg.current_matching().size

    benchmark(run)
    emit(run_table2_realgraph(), "table2_realgraph.txt")


# ------------------------------------------------------------ repro.bench
@register("table2_realgraph", suite="table2", backends=("adjset", "csr"),
          description="dynamic maintainer replaying the committed "
                      "karate-club trace; record/replay parity enforced")
def _table2_realgraph_scenario(spec, counters):
    trace = check_trace_parity()
    alg = FullyDynamicMatching(trace.n, spec.resolved_eps(),
                               counters=counters, seed=spec.seed,
                               backend=spec.backend)
    alg.process(trace.stream(), collect_sizes=False)
    opt = maximum_matching_size(alg.graph)
    return {"amortized_update_work": alg.amortized_update_work(),
            "size_over_opt": alg.current_matching().size / max(1, opt),
            "trace_updates": float(len(trace))}


def main(argv=None) -> int:
    return scenario_main("table2_realgraph", argv)


if __name__ == "__main__":
    raise SystemExit(main())
