"""Table 1 (CONGEST rows): oracle invocations and rounds in CONGEST.

The CONGEST rows of Table 1 quote

    [FMU22]                O(1/eps^63)
    [FMU22] + [MMSS25]     O(1/eps^42)
    this work (Cor. A.2)   O(1/eps^10 * log(1/eps))

The extra 1/eps^3 factor over the MPC rows is the per-pass-bundle Aprocess
cost: aggregating a structure of poly(1/eps) vertices at a representative
takes Theta(structure size) CONGEST rounds.  This benchmark measures, per eps,
the oracle invocations, the total CONGEST rounds (oracle rounds + aggregation
rounds), and the fraction of rounds spent on aggregation -- the quantity that
grows as eps shrinks and produces the eps^-10 vs eps^-7 separation between the
two corollaries.
"""

from __future__ import annotations

import pytest

from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.core.config import ParameterProfile
from repro.baselines.fmu22 import fmu22_scheduled_calls
from repro.congest.boost_congest import congest_boosted_matching

from repro.bench import register

from _common import EPS_SWEEP, boosting_workload, emit, scenario_main


def run_table1_congest(seeds=(0, 1)) -> Table:
    table = Table(
        "Table 1 (CONGEST): oracle invocations and rounds (Corollary A.2)",
        ["eps", "oracle calls", "congest rounds", "aggregation rounds",
         "aggregation share", "size/opt",
         "scheduled ours O(eps^-10 log)", "scheduled FMU22 O(eps^-63)"])
    for eps in EPS_SWEEP:
        calls = rounds = agg = ratio = 0.0
        for seed in seeds:
            g = boosting_workload(seed, er_n=60, er_p=0.06)
            opt = maximum_matching_size(g)
            counters = Counters()
            matching, _ = congest_boosted_matching(g, eps, counters=counters, seed=seed)
            calls += counters.get("oracle_calls")
            rounds += counters.get("congest_rounds")
            agg += counters.get("congest_aggregation_rounds")
            ratio += matching.size / max(1, opt)
        k = len(seeds)
        profile = ParameterProfile.paper(eps)
        scheduled_ours = profile.paper_invocation_bound() / (eps ** 3)
        table.add_row(eps, calls / k, rounds / k, agg / k,
                      (agg / rounds) if rounds else 0.0, ratio / k,
                      scheduled_ours, fmu22_scheduled_calls(eps, "congest"))
    return table


def test_table1_congest(benchmark):
    """Regenerate Table 1 (CONGEST) and time one instantiation at eps = 1/4."""
    g = boosting_workload(0, er_n=60, er_p=0.06)
    benchmark(lambda: congest_boosted_matching(g, 0.25, seed=0))
    emit(run_table1_congest(), "table1_congest.txt")


# ------------------------------------------------------------ repro.bench
@register("table1_congest", suite="table1", backends=("adjset", "csr"),
          description="CONGEST boosting: oracle calls, rounds and "
                      "aggregation share at one eps")
def _table1_congest_scenario(spec, counters):
    eps = spec.resolved_eps()
    er_n = 36 if spec.smoke else 60
    g = boosting_workload(spec.seed, er_n=er_n, er_p=0.06,
                          num_paths=2 if spec.smoke else 4,
                          path_len=5 if spec.smoke else 9,
                          backend=spec.backend)
    matching, _ = congest_boosted_matching(g, eps, counters=counters,
                                           seed=spec.seed)
    opt = maximum_matching_size(g)
    rounds = counters.get("congest_rounds")
    agg = counters.get("congest_aggregation_rounds")
    return {"size_over_opt": matching.size / max(1, opt),
            "aggregation_share": (agg / rounds) if rounds else 0.0}


def main(argv=None) -> int:
    return scenario_main("table1_congest", argv)


if __name__ == "__main__":
    raise SystemExit(main())
