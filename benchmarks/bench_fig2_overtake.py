"""Figure 2: the Overtake operation (label decreases, cross-structure steals).

Figure 2 illustrates Case 2.2 of Overtake: one structure re-parents an inner
vertex of another structure, moving the whole subtree.  This benchmark
measures the operation in bulk: on an overtake-heavy workload (long disjoint
paths whose greedy matching is maximally misaligned), it reports per eps how
many overtakes each phase performs, how many of them are cross-structure
steals, how much the labels decrease in total, and how many augmenting paths
the phase ultimately finds -- connecting the figure's mechanism to the
progress it creates.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import disjoint_paths
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.core.boosting import boost_matching
from repro.core.oracles import RandomGreedyMatchingOracle
from repro.matching.blossom import maximum_matching_size

from repro.bench import register

from _common import EPS_SWEEP, emit, scenario_main


def run_fig2() -> Table:
    # A random-order greedy oracle leaves the initial matching misaligned on
    # the long paths, so reaching the optimum requires the structures to grow
    # by overtakes and, when two structures compete for the same matched edge,
    # by the cross-structure steals that Figure 2 depicts.
    table = Table(
        "Figure 2 statistics: Overtake activity of the boosted run",
        ["eps", "overtakes", "cross-structure overtakes", "in-structure overtakes",
         "augmentations", "contractions", "size/opt"])
    g = disjoint_paths(8, 11)
    opt = maximum_matching_size(g)
    for eps in EPS_SWEEP:
        counters = Counters()
        m = boost_matching(g, eps, oracle=RandomGreedyMatchingOracle(seed=2),
                           counters=counters, seed=1)
        overtakes = counters.get("overtakes")
        cross = counters.get("cross_structure_overtakes")
        table.add_row(eps, overtakes, cross, overtakes - cross,
                      counters.get("augmentations"),
                      counters.get("contractions"),
                      m.size / max(1, opt))
    return table


def test_fig2_overtake(benchmark):
    """Regenerate the Overtake statistics and time one boosted run."""
    g = disjoint_paths(8, 11)
    benchmark(lambda: boost_matching(
        g, 0.25, oracle=RandomGreedyMatchingOracle(seed=2), seed=1))
    emit(run_fig2(), "fig2_overtake.txt")


# ------------------------------------------------------------ repro.bench
@register("fig2_overtake", suite="figures",
          description="Overtake activity (total / cross-structure) of one "
                      "boosted run on the misaligned-paths workload")
def _fig2_scenario(spec, counters):
    eps = spec.resolved_eps()
    g = disjoint_paths(4, 7) if spec.smoke else disjoint_paths(8, 11)
    opt = maximum_matching_size(g)
    matching = boost_matching(
        g, eps, oracle=RandomGreedyMatchingOracle(seed=spec.seed + 2),
        counters=counters, seed=spec.seed + 1)
    return {"size_over_opt": matching.size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("fig2_overtake", argv)


if __name__ == "__main__":
    raise SystemExit(main())
