"""Table 2 (latency row): per-update latency of the dynamic maintainer.

``table2_dynamic`` reports *amortized* update work -- the quantity Theorem
7.1 bounds -- but a dynamic data structure's operational story is the
latency *distribution*: almost every update is an O(1) patch, and the tail
is the periodic epoch rebuild.  This scenario pins that tail on a
100k-vertex churn workload (10k in smoke mode) and measures the incremental
epoch-repair path (``profile.repair="incremental"``, see
``repro.core.repair``) against the warm-start rebuild path it replaces, on
the identical update sequence and seed.

Workload: a perfect planted matching is loaded edge by edge (the
opportunistic insert rule matches each pair on arrival), one untimed cold
rebuild establishes the epoch schedule, then the timed phase repeatedly
deletes a random matched pair-edge and reinserts it.  The rebuild gap is
pinned to an even number of updates so epoch boundaries land on reinsert
updates (matching perfect again); rebuild-path epochs then pay the full
warm-start overhead -- per-phase O(n) state allocation, the O(n) free-vertex
scan, ``restricted_to`` and the matching copy -- while the incremental path
pays only for what the updates dirtied.  Both paths execute byte-identical
algorithms (asserted at the end of the run).

Reported: the ``latency`` record section {p50, p99, max, count} (seconds)
for the incremental path -- the committed baseline the smoke gate regresses
against -- plus the rebuild path's percentiles and the p99 speedup as plain
counters.
"""

from __future__ import annotations

import dataclasses
import random

from repro.bench import LatencyRecorder, register
from repro.core.config import ParameterProfile
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.graph.dynamic_graph import Update
from repro.instrumentation.counters import Counters

from _common import scenario_main

#: timed churn updates and the (even) rebuild gap per mode
FULL = {"pairs": 50_000, "timed": 2_000, "gap": 24}
SMOKE = {"pairs": 5_000, "timed": 400, "gap": 12}


def _churn_sequence(pairs: int, timed: int, seed: int):
    """Deterministic delete/reinsert pairs over the planted matching."""
    rng = random.Random(seed)
    updates = []
    for _ in range(timed // 2):
        i = rng.randrange(pairs)
        updates.append(Update.delete(2 * i, 2 * i + 1))
        updates.append(Update.insert(2 * i, 2 * i + 1))
    return updates


def _run_mode(profile: ParameterProfile, cfg: dict, seed: int, backend: str,
              counters: Counters):
    """Load the planted matching, pin the epoch schedule, time the churn."""
    pairs, timed, gap = cfg["pairs"], cfg["timed"], cfg["gap"]
    n = 2 * pairs
    eps = profile.eps
    # load phase: huge slack so no rebuild fires while the matching fills up
    alg = FullyDynamicMatching(n, eps, profile=profile, counters=counters,
                               seed=seed, backend=backend,
                               rebuild_slack=1e9)
    for i in range(pairs):
        alg.insert(2 * i, 2 * i + 1)
    assert alg.current_matching().size == pairs, "load phase must match all"
    # pin the rebuild threshold to exactly `gap` updates (int() truncation of
    # (gap + 0.5) at size == pairs), then take the cold rebuild untimed
    alg.rebuild_slack = (gap + 0.5) / (eps * pairs)
    alg.rebuild()

    recorder = LatencyRecorder()
    for upd in _churn_sequence(pairs, timed, seed):
        recorder.measure(lambda u=upd: alg.update(u))
    return alg, recorder


@register("table2_latency", suite="table2", backends=("adjset", "csr"),
          description="per-update latency distribution (p50/p99/max) of the "
                      "dynamic maintainer on a planted-matching churn "
                      "workload: incremental epoch repair vs the warm-start "
                      "rebuild path on the identical update sequence")
def _table2_latency_scenario(spec, counters):
    cfg = SMOKE if spec.smoke else FULL
    eps = spec.resolved_eps()
    rebuild_profile = ParameterProfile.practical(eps)
    incremental_profile = dataclasses.replace(rebuild_profile,
                                              repair="incremental")

    baseline = Counters()
    reb_alg, reb_rec = _run_mode(rebuild_profile, cfg, spec.seed,
                                 spec.backend, baseline)
    inc_alg, inc_rec = _run_mode(incremental_profile, cfg, spec.seed,
                                 spec.backend, counters)

    # the two repair modes are pinned byte-identical (see the repair parity
    # suite); a cheap end-state check keeps this scenario honest about it
    n = reb_alg.current_matching().n
    assert ([reb_alg.current_matching().mate(v) for v in range(n)]
            == [inc_alg.current_matching().mate(v) for v in range(n)]), \
        "repair modes diverged on the churn workload"
    assert baseline.as_dict() == counters.as_dict(), \
        "repair modes diverged in counters"

    inc = inc_rec.summary()
    reb = reb_rec.summary()
    return {
        "latency": inc,
        "rebuild_p50_s": reb["p50"],
        "rebuild_p99_s": reb["p99"],
        "rebuild_max_s": reb["max"],
        "p99_speedup_vs_rebuild": reb["p99"] / max(inc["p99"], 1e-12),
        "timed_rebuilds": cfg["timed"] // cfg["gap"],
    }


def test_table2_latency(benchmark):
    """Time the incremental maintainer's smoke churn once for pytest-benchmark."""
    cfg = SMOKE
    profile = dataclasses.replace(ParameterProfile.practical(0.25),
                                  repair="incremental")

    def run():
        _, recorder = _run_mode(profile, cfg, seed=0, backend="adjset",
                                counters=Counters())
        return recorder.summary()["p99"]

    benchmark(run)


def main(argv=None) -> int:
    return scenario_main("table2_latency", argv)


if __name__ == "__main__":
    raise SystemExit(main())
