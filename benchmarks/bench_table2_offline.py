"""Table 2 (offline row / Theorem 7.15): offline dynamic matching.

Theorem 7.15 processes a known-in-advance update sequence with amortized
``poly(1/eps) * n^{0.58}`` work by batching the per-snapshot computations
(Lemma 7.13/7.14).  The reproduction keeps the batching/epoch structure and
substitutes the shared-query machinery; what is reproduced here is
the *shape*: the offline algorithm's amortized work per update stays well
below both the online maintainer run on the same sequence (which cannot plan
epochs ahead) and exact recomputation, while delivering the same (1+eps)
quality, and its 1/eps dependence is polynomial.
"""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads import resolve_workload, sliding_window
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.dynamic.baselines import RecomputeFromScratchDynamic
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.offline import OfflineDynamicMatching

from repro.bench import register

from _common import EPS_SWEEP_SMALL, emit, scenario_main


def run_table2_offline(seed: int = 0) -> Table:
    n = 30
    updates = sliding_window(n, 240, window=45, seed=seed).materialize()
    final_graph = DynamicGraph(n)
    final_graph.apply_all(updates)
    opt = maximum_matching_size(final_graph.graph)

    table = Table(
        "Table 2 (offline row): amortized work per update, offline vs online vs exact",
        ["eps", "algorithm", "amortized work/update", "epochs/rebuilds",
         "weak-oracle calls", "final size/opt"])
    for eps in EPS_SWEEP_SMALL:
        counters = Counters()
        offline = OfflineDynamicMatching(n, eps, counters=counters, seed=seed)
        sizes = offline.run(updates)
        table.add_row(eps, "offline (Thm 7.15 flavour)",
                      offline.amortized_update_work(),
                      counters.get("offline_epochs"),
                      counters.get("weak_oracle_calls"),
                      sizes[-1] / max(1, opt))

        counters = Counters()
        online = FullyDynamicMatching(n, eps, counters=counters, seed=seed)
        for upd in updates:
            online.update(upd)
        table.add_row(eps, "online (Thm 7.1)",
                      online.amortized_update_work(),
                      counters.get("dyn_rebuilds"),
                      counters.get("weak_oracle_calls"),
                      online.current_matching().size / max(1, opt))

    counters = Counters()
    exact = RecomputeFromScratchDynamic(n, counters=counters)
    for upd in updates:
        exact.update(upd)
    table.add_row("-", "exact recompute (reference)",
                  counters.get("update_work") / max(1, counters.get("dyn_updates")),
                  0, 0, exact.current_matching().size / max(1, opt))
    return table


def test_table2_offline(benchmark):
    """Regenerate the offline row and time one offline run at eps = 1/4."""
    updates = sliding_window(30, 160, window=40, seed=0).materialize()
    benchmark(lambda: OfflineDynamicMatching(30, 0.25, seed=0).run(updates))
    emit(run_table2_offline(), "table2_offline.txt")


# ------------------------------------------------------------ repro.bench
@register("table2_offline", suite="table2", selectors=("workload",),
          backends=("adjset", "csr"),
          description="offline dynamic matching on a selectable workload "
                      "(default: sliding window): amortized work and epochs")
def _table2_offline_scenario(spec, counters):
    eps = spec.resolved_eps()
    if spec.workload == "default":
        n, num_updates, window = (20, 80, 20) if spec.smoke else (30, 240, 45)
        stream = sliding_window(n, num_updates, window=window, seed=spec.seed)
    else:
        stream = resolve_workload(spec.workload, smoke=spec.smoke,
                                  seed=spec.seed)
    n = stream.n
    updates = stream.materialize()  # run() and opt both need it; once
    offline = OfflineDynamicMatching(n, eps, counters=counters,
                                     seed=spec.seed, backend=spec.backend)
    sizes = offline.run(updates)
    final_graph = DynamicGraph(n, log_updates=False)
    final_graph.apply_all(updates)
    opt = maximum_matching_size(final_graph.graph)
    return {"amortized_update_work": offline.amortized_update_work(),
            "size_over_opt": int(sizes[-1]) / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("table2_offline", argv)


if __name__ == "__main__":
    raise SystemExit(main())
