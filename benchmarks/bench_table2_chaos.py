"""Table 2 (chaos row): crash/recovery resilience of the dynamic maintainer.

The other Table 2 rows measure the maintainer's *cost*; this row measures
whether those numbers survive the maintainer being killed.  A planted-
matching churn workload is recorded to a :class:`~repro.workloads.trace.Trace`
and replayed twice on the same seed and backend:

* **fault-free**: every update applied in order -- the reference end state;
* **chaos**: :func:`~repro.resilience.harness.run_with_recovery` drives the
  same trace under a :class:`~repro.resilience.faults.FaultPlan` that kills
  the maintainer at two pinned positions (one third and two thirds through
  the workload) plus a seeded background crash rate.  Recovery restores the
  latest periodic checkpoint through a full ``.npz`` disk round-trip and
  replays the suffix.

Because checkpoints capture every RNG substream, the packed matching/graph
state and the counters bag, the chaos run must land on the *byte-identical*
end state: same mates, same counters, same epoch schedule.  The scenario
asserts that equality (a divergence fails the run, it is not a data point)
and reports ``end_state_equal`` alongside the chaos bookkeeping.

Reported: the ``latency`` record section {p50, p99, max, count} (seconds)
of *recovery* -- checkpoint load plus state reconstruction, not the replay
-- which is the committed baseline the smoke gate regresses against, plus
``chaos_crashes`` / ``chaos_restores`` / ``chaos_checkpoints`` /
``chaos_replayed_updates`` and the workload size.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile

from repro.bench import LatencyRecorder, register
from repro.core.config import ParameterProfile
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.instrumentation.counters import Counters
from repro.resilience import FaultPlan
from repro.resilience.harness import run_with_recovery
from repro.workloads.sources import planted_matching_churn
from repro.workloads.trace import Trace

from _common import scenario_main

#: workload size, snapshot period, and background crash rate per mode
FULL = {"pairs": 200, "rounds": 3, "checkpoint_every": 80,
        "crash_rate": 0.005}
SMOKE = {"pairs": 64, "rounds": 2, "checkpoint_every": 40,
         "crash_rate": 0.01}


def _build(n: int, eps: float, profile: ParameterProfile, seed: int,
           backend: str, counters: Counters) -> FullyDynamicMatching:
    return FullyDynamicMatching(n, eps, profile=profile, counters=counters,
                                seed=seed, backend=backend)


def _run_chaos(cfg: dict, eps: float, seed: int, backend: str,
               counters: Counters):
    """Record the trace, run fault-free and chaotic replays, compare."""
    profile = dataclasses.replace(ParameterProfile.practical(eps),
                                  repair="incremental")
    trace = Trace.record(planted_matching_churn(cfg["pairs"],
                                                rounds=cfg["rounds"],
                                                seed=seed))

    baseline = Counters()
    reference = _build(trace.n, eps, profile, seed, backend, baseline)
    for upd in trace.stream():
        reference.update(upd)

    survivor = _build(trace.n, eps, profile, seed, backend, counters)
    plan = FaultPlan(seed=seed, update_crash_rate=cfg["crash_rate"],
                     crash_updates=(len(trace) // 3, 2 * len(trace) // 3))
    recorder = LatencyRecorder()
    with tempfile.TemporaryDirectory() as tmp:
        # a real path: every restore pays the full .npz disk round-trip and
        # exercises the versioned checkpoint loader
        survivor, stats = run_with_recovery(
            survivor, trace, plan=plan,
            checkpoint_every=cfg["checkpoint_every"],
            checkpoint_path=os.path.join(tmp, "checkpoint.npz"),
            recorder=recorder)

    ref_matching = reference.current_matching()
    got_matching = survivor.current_matching()
    mates_equal = ([ref_matching.mate(v) for v in range(trace.n)]
                   == [got_matching.mate(v) for v in range(trace.n)])
    counters_equal = baseline.as_dict() == counters.as_dict()
    return trace, stats, recorder, mates_equal, counters_equal


@register("table2_chaos", suite="table2", backends=("adjset", "csr"),
          description="crash/recovery drill for the dynamic maintainer: "
                      "replay a recorded churn trace under injected crashes "
                      "with periodic on-disk checkpoints, assert the "
                      "recovered end state is byte-identical to the "
                      "fault-free run, and report recovery latency")
def _table2_chaos_scenario(spec, counters):
    cfg = SMOKE if spec.smoke else FULL
    trace, stats, recorder, mates_equal, counters_equal = _run_chaos(
        cfg, spec.resolved_eps(), spec.seed, spec.backend, counters)

    # equality is the whole point of the drill: a divergent end state is a
    # scenario failure, not a measurement
    assert mates_equal, "chaos run diverged from fault-free run in mates"
    assert counters_equal, "chaos run diverged from fault-free run in counters"
    assert stats.crashes >= 2, "fault plan injected no pinned crashes"

    return {
        "latency": recorder.summary(),
        **stats.as_counters(),
        "end_state_equal": 1.0,
        "workload_updates": float(len(trace)),
    }


def test_table2_chaos(benchmark):
    """Time one smoke chaos drill (record/crash/recover/verify) for pytest."""

    def run():
        _, stats, _, mates_equal, counters_equal = _run_chaos(
            SMOKE, 0.25, seed=0, backend="adjset", counters=Counters())
        assert mates_equal and counters_equal
        return stats.crashes

    benchmark(run)


def main(argv=None) -> int:
    return scenario_main("table2_chaos", argv)


if __name__ == "__main__":
    raise SystemExit(main())
