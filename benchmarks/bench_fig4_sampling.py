"""Figure 4 / Lemma 6.8: per-structure vertex sampling preserves H' edges.

Figure 4 illustrates the Section 6 sampling step: one vertex is sampled from
each structure, and an edge between two structures survives into G[S] with
probability at least 1/Delta^2 (each endpoint is picked with probability at
least 1/|structure|).  Lemma 6.8/6.11 turn this into the oracle guarantee.

This benchmark measures the preservation probability empirically: structures
of controlled size are built, the sampling step is repeated many times, and
the fraction of trials in which a fixed cross-structure edge survives is
compared to the 1/Delta^2 lower bound.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.graph import Graph
from repro.instrumentation.reporting import Table
from repro.matching.matching import Matching
from repro.core.structures import PhaseState
from repro.core.operations import overtake_op

from repro.bench import register

from _common import emit, scenario_main


def _two_structures_of_size(size_edges: int):
    """Two path structures of `size_edges` matched edges each, joined by one
    cross edge between their working (outer) endpoints."""
    per = 1 + 2 * size_edges          # free vertex + matched pairs
    n = 2 * per
    g = Graph(n)
    matching = Matching(n)
    for base in (0, per):
        for i in range(size_edges):
            a = base + 1 + 2 * i
            b = a + 1
            g.add_edge(base + 2 * i, a)   # unmatched tree edge
            g.add_edge(a, b)
            matching.add(a, b)
    tip_left = per - 1
    tip_right = 2 * per - 1
    g.add_edge(tip_left, tip_right)       # the cross (type-2) edge
    state = PhaseState(g, matching, ell_max=4 * size_edges + 4)
    state.init_structures()
    for base in (0, per):
        structure = state.structures[base]
        for i in range(size_edges):
            w = structure.working
            a = base + 1 + 2 * i
            overtake_op(state, w.base, a, state.distance(w) + 1)
    return state, (tip_left, tip_right)


def preservation_probability(size_edges: int, trials: int = 3000,
                             seed: int = 0) -> float:
    state, (x, y) = _two_structures_of_size(size_edges)
    rng = random.Random(seed)
    structures = state.live_structures()
    hits = 0
    for _ in range(trials):
        sampled = set()
        for s in structures:
            outs = s.outer_vertices()
            sampled.add(rng.choice(outs))
        if x in sampled and y in sampled:
            hits += 1
    return hits / trials


def run_fig4() -> Table:
    table = Table(
        "Figure 4 / Lemma 6.8: sampling preservation probability vs structure size",
        ["matched edges per structure", "#outer vertices per structure",
         "measured Pr[edge preserved]", "lower bound 1/Delta^2"])
    for size_edges in (1, 2, 3, 4):
        outer = size_edges + 1
        measured = preservation_probability(size_edges)
        table.add_row(size_edges, outer, measured, 1.0 / (2 * size_edges + 1) ** 2)
    return table


def test_fig4_sampling(benchmark):
    """Regenerate the preservation-probability series; time the sampling loop."""
    benchmark(lambda: preservation_probability(3, trials=500, seed=1))
    emit(run_fig4(), "fig4_sampling.txt")


# ------------------------------------------------------------ repro.bench
@register("fig4_sampling", suite="figures",
          description="per-structure vertex-sampling preservation "
                      "probability vs the 1/Delta^2 bound (Lemma 6.8)")
def _fig4_scenario(spec, counters):
    size_edges = 3
    trials = 300 if spec.smoke else 3000
    measured = preservation_probability(size_edges, trials=trials,
                                        seed=spec.seed)
    bound = 1.0 / (2 * size_edges + 1) ** 2
    return {"trials": trials, "preservation_prob": measured,
            "lower_bound": bound}


def main(argv=None) -> int:
    return scenario_main("fig4_sampling", argv)


if __name__ == "__main__":
    raise SystemExit(main())
