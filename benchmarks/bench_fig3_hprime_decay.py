"""Figure 3 / Lemma 5.5: the derived graph H' and its exponential decay.

Figure 3 illustrates the structure-level graph H' used by the
Contract-and-Augment simulation (Definition 5.4); Lemma 5.5 proves that
mu(H') decays by a factor (1 - 1/c) per oracle iteration, which is why
O(log 1/eps) iterations suffice -- the central quantitative insight behind
Theorem 1.1's eps^-7 (vs eps^-52 before).

This benchmark constructs H' on a workload with many pending augmentations
and runs the Algorithm 4 iteration loop, recording mu(H') after every oracle
call.  The reported series should drop geometrically (the measured decay
factor is printed alongside the (1 - 1/c) bound).
"""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import erdos_renyi
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.matching.greedy import greedy_maximal_matching
from repro.core.boosting import OracleDriver, build_structure_graph
from repro.core.config import ParameterProfile
from repro.core.oracles import GreedyMatchingOracle
from repro.core.operations import augment_op
from repro.core.phase import contract_pass
from repro.core.structures import PhaseState
from repro.core.operations import overtake_op

from repro.bench import register

from _common import boosting_workload, emit, scenario_main


def hprime_decay_series(seed: int = 0, eps: float = 0.25, er_n: int = 120,
                        num_paths: int = 6, path_len: int = 7):
    """Grow structures one overtake each, then iterate Algorithm 4 on H'."""
    g = boosting_workload(seed, er_n=er_n, er_p=0.05, num_paths=num_paths,
                          path_len=path_len)
    matching = greedy_maximal_matching(g)
    profile = ParameterProfile.practical(eps)
    state = PhaseState(g, matching, profile.ell_max)
    state.init_structures()

    # one round of direct extension so structures are one matched edge deep
    rng = random.Random(seed)
    for alpha, structure in list(state.structures.items()):
        w = structure.working
        if w is None:
            continue
        for x in w.vertices:
            extended = False
            for y in g.neighbors(x):
                if state.arc_type(x, y) == 3:
                    overtake_op(state, x, y, state.distance(w) + 1)
                    extended = True
                    break
            if extended:
                break

    oracle = GreedyMatchingOracle()
    series = []
    for iteration in range(10):
        hprime, witness = build_structure_graph(state)
        mu = maximum_matching_size(hprime)
        series.append((iteration, hprime.n, hprime.m, mu))
        if hprime.m == 0:
            break
        matched = oracle.find_matching(hprime)
        for a, b in matched:
            key = (a, b) if a < b else (b, a)
            if key in witness:
                u, v = witness[key]
                if state.arc_type(u, v) == 2:
                    augment_op(state, u, v)
    return series


def run_fig3(eps: float = 0.25) -> Table:
    table = Table(
        "Figure 3 / Lemma 5.5: decay of mu(H') across oracle iterations",
        ["iteration", "|V(H')|", "|E(H')|", "mu(H')", "decay vs previous",
         "Lemma 5.5 bound (1 - 1/c)"])
    series = hprime_decay_series(eps=eps)
    prev_mu = None
    for iteration, nv, ne, mu in series:
        decay = (mu / prev_mu) if prev_mu else 1.0
        table.add_row(iteration, nv, ne, mu, decay, 0.5)
        prev_mu = mu if mu else None
    return table


def test_fig3_hprime_decay(benchmark):
    """Regenerate the H' decay series and time one series computation."""
    benchmark(lambda: hprime_decay_series(seed=1))
    emit(run_fig3(), "fig3_hprime_decay.txt")


# ------------------------------------------------------------ repro.bench
@register("fig3_hprime_decay", suite="figures",
          description="mu(H') decay across Algorithm 4 oracle iterations "
                      "(Lemma 5.5)")
def _fig3_scenario(spec, counters):
    eps = spec.resolved_eps()
    er_n, num_paths = (48, 3) if spec.smoke else (120, 6)
    series = hprime_decay_series(seed=spec.seed, eps=eps, er_n=er_n,
                                 num_paths=num_paths)
    values = {"iterations": len(series),
              "initial_mu": series[0][3] if series else 0,
              "final_mu": series[-1][3] if series else 0}
    if len(series) >= 2 and series[0][3]:
        values["overall_decay"] = series[-1][3] / series[0][3]
    return values


def main(argv=None) -> int:
    return scenario_main("fig3_hprime_decay", argv)


if __name__ == "__main__":
    raise SystemExit(main())
