"""Backend comparison: adjacency-set vs CSR/NumPy on generator workloads.

The pluggable-backend refactor is justified by throughput, so this module
measures it head-to-head.  For each workload the *same* edge set is pushed
through both backends and the phases the matching layer actually exercises
are timed separately:

* ``construct`` -- bulk edge insertion (``Graph.add_edges``),
* ``greedy``    -- greedy maximal matching (edge-list export + selection),
* ``induce``    -- induced-subgraph extraction on a random 25% vertex subset,
* ``matrix``    -- boolean adjacency-matrix export (the OMv substrate load).

Run directly (``PYTHONPATH=src python benchmarks/bench_backends.py``) or via
``python -m repro.bench run --suite backends``; ``--smoke`` (or
``REPRO_BENCH_SMOKE=1``) selects a seconds-scale configuration and the tier-1
suite runs the smoke mode via ``tests/test_backends.py``.  The headline
acceptance number is the total (construct + greedy) speedup on the 100k-edge
uniform random workload.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from repro.bench import register
from repro.graph.generators import random_edge_list
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.greedy import greedy_maximal_matching

from _common import emit, scenario_main

BACKEND_NAMES = ("adjset", "csr")

#: (label, n, m) generator workloads for the full sweep
WORKLOADS = (
    ("uniform-10k", 4_000, 10_000),
    ("uniform-100k", 40_000, 100_000),
    ("dense-100k", 1_000, 100_000),
)

SMOKE_WORKLOADS = (
    ("uniform-5k", 2_000, 5_000),
)


def _warm_backend(backend: str) -> None:
    """Exercise every timed phase once on a toy graph, untimed.

    The first NumPy bulk call of a process (``fromiter``/``unique``/ufunc
    dispatch set-up) costs tens of milliseconds; without this warm-up that
    one-time cost landed inside the CSR ``construct`` measurement of
    whichever backend ran first and made the smoke row misreport CSR as
    slower than adjset.
    """
    g = Graph(8, backend=backend)
    g.add_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
    greedy_maximal_matching(g)
    g.induced_subgraph([0, 1, 2, 3])
    g.adjacency_matrix()


def time_backend(backend: str, n: int, edges: List[Tuple[int, int]],
                 seed: int = 0) -> Dict[str, float]:
    """Time the four phases on one backend; returns seconds per phase."""
    rng = random.Random(seed)
    subset = rng.sample(range(n), max(2, n // 4))
    _warm_backend(backend)

    t0 = time.perf_counter()
    g = Graph(n, backend=backend)
    g.add_edges(edges)
    t1 = time.perf_counter()
    matching = greedy_maximal_matching(g)
    t2 = time.perf_counter()
    g.induced_subgraph(subset)
    t3 = time.perf_counter()
    # The dense matrix is O(n^2) memory; only export it where that is sane.
    if n <= 5_000:
        g.adjacency_matrix()
    t4 = time.perf_counter()

    return {
        "construct": t1 - t0,
        "greedy": t2 - t1,
        "induce": t3 - t2,
        "matrix": (t4 - t3) if n <= 5_000 else float("nan"),
        "total": t2 - t0,  # the acceptance-criterion quantity
        "matching_size": matching.size,
    }


def run_comparison(smoke: bool = False, seed: int = 0) -> Tuple[Table, Dict[str, float]]:
    """Sweep the workloads; returns the table and per-workload total speedups."""
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    table = Table(
        "Graph backends: adjacency-set vs CSR/NumPy (seconds per phase)",
        ["workload", "backend", "construct", "greedy", "induce", "matrix",
         "construct+greedy", "speedup"])
    speedups: Dict[str, float] = {}
    for label, n, m in workloads:
        edges = random_edge_list(n, m, seed=seed)
        results = {b: time_backend(b, n, edges, seed=seed) for b in BACKEND_NAMES}
        # Default greedy scans each backend's native edge order, so the two
        # (both maximal) matchings may differ slightly in size; exact
        # fixed-seed parity is covered by tests/test_backends.py.  Guard
        # against real bugs with a 2-approximation-style sanity band.
        sizes = [results[b]["matching_size"] for b in BACKEND_NAMES]
        assert min(sizes) * 2 >= max(sizes), f"greedy sizes implausible: {sizes}"
        base = results["adjset"]["total"]
        for backend in BACKEND_NAMES:
            r = results[backend]
            speedup = base / r["total"] if r["total"] > 0 else float("inf")
            table.add_row(label, backend, f"{r['construct']:.4f}",
                          f"{r['greedy']:.4f}", f"{r['induce']:.4f}",
                          f"{r['matrix']:.4f}", f"{r['total']:.4f}",
                          f"{speedup:.2f}x")
            if backend == "csr":
                speedups[label] = speedup
    return table, speedups


def emit_comparison(smoke: bool = False, seed: int = 0) -> Dict[str, float]:
    """The historical text-table rendering of the full two-backend sweep."""
    table, speedups = run_comparison(smoke=smoke, seed=seed)
    emit(table, "backends_smoke.txt" if smoke else "backends.txt")
    for label, speedup in speedups.items():
        print(f"csr total speedup on {label}: {speedup:.2f}x")
    return speedups


# ------------------------------------------------------------ repro.bench
@register("backends", suite="backends", backends=BACKEND_NAMES,
          selectors=("workload",),
          description="construct/greedy/induce/matrix phase times per graph "
                      "backend (the PR 1 CSR speedup)")
def _backends_scenario(spec, counters: Counters):
    by_label = {label: (n, m) for label, n, m in WORKLOADS + SMOKE_WORKLOADS}
    if spec.workload == "default":
        label = SMOKE_WORKLOADS[0][0] if spec.smoke else WORKLOADS[1][0]
    elif spec.workload in by_label:
        label = spec.workload
    else:
        # reject rather than fall back: the emitted record carries
        # params.workload, so running anything else would mislabel it
        raise ValueError(f"unknown backends workload {spec.workload!r}; "
                         f"known: {sorted(by_label)}")
    n, m = by_label[label]
    edges = random_edge_list(n, m, seed=spec.seed)
    phases = time_backend(spec.backend, n, edges, seed=spec.seed)
    for key, value in phases.items():
        if value == value:  # the matrix phase is NaN on large n
            counters.add(key if key == "matching_size" else f"{key}_s", value)
    return {"n": n, "m": m}


def main(argv=None) -> int:
    return scenario_main("backends", argv)


if __name__ == "__main__":
    raise SystemExit(main())
