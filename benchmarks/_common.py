"""Shared helpers for the benchmark modules.

Every benchmark module regenerates one table or figure of the paper: it
sweeps the relevant parameter, prints the resulting rows/series, and persists
them as text under ``benchmarks/results/``.  Each module also registers its
sweep as a ``repro.bench`` scenario (see the "Benchmark harness" section of
ARCHITECTURE.md), which is what gives every suite ``--smoke``, backend
selection, seed control and JSON emission through the single
``python -m repro.bench`` CLI; the text tables are a rendering of the same
measured quantities.  The pytest-benchmark fixture times one representative
unit of work per module so that ``pytest benchmarks/ --benchmark-only`` also
produces wall-clock numbers.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, Sequence

# Re-exported so modules (and their callers) keep one definition of smoke.
from repro.bench import smoke_mode  # noqa: F401
from repro.instrumentation.reporting import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: epsilon sweep used by most benchmarks (1/eps a power of two, Section 3)
EPS_SWEEP = (0.5, 0.25, 0.125)

#: smaller sweep for the more expensive dynamic benchmarks
EPS_SWEEP_SMALL = (0.5, 0.25)


def scenario_main(name: str, argv: Optional[Sequence[str]] = None) -> int:
    """Run one registered scenario through the unified CLI.

    Every ``bench_*.py`` module's ``main()`` delegates here, so
    ``python benchmarks/bench_x.py --smoke --backend csr --seed 1`` is the
    same run as ``python -m repro.bench run --scenario x ...``.
    """
    from repro.bench.cli import main as bench_main

    args = list(sys.argv[1:] if argv is None else argv)
    return bench_main(["run", "--scenario", name, *args])


def boosting_workload(seed: int = 0, er_n: int = 80, er_p: float = 0.05,
                      num_paths: int = 4, path_len: int = 9,
                      backend: str = "adjset"):
    """The standard Table 1 workload: a sparse random graph plus disjoint long
    paths (the paths force augmenting paths of length up to ``path_len``, the
    regime where boosting beyond a maximal matching actually matters).

    ``backend`` selects the graph storage backend (``"adjset"`` / ``"csr"``);
    the edge set is identical on every backend for a given seed.
    """
    from repro.graph.generators import disjoint_paths, erdos_renyi
    from repro.graph.graph import Graph

    er = erdos_renyi(er_n, er_p, seed=seed)
    paths = disjoint_paths(num_paths, path_len)
    g = Graph(er.n + paths.n, backend=backend)
    g.add_edges(er.edges())
    g.add_edges((er.n + u, er.n + v) for u, v in paths.edges())
    return g


def emit(table: Table, filename: str) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text
