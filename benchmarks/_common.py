"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md): it sweeps the relevant parameter, prints
the resulting rows/series, and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.  The pytest-benchmark fixture times one
representative unit of work per module so that ``pytest benchmarks/
--benchmark-only`` also produces wall-clock numbers.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.instrumentation.reporting import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: epsilon sweep used by most benchmarks (1/eps a power of two, Section 3)
EPS_SWEEP = (0.5, 0.25, 0.125)

#: smaller sweep for the more expensive dynamic benchmarks
EPS_SWEEP_SMALL = (0.5, 0.25)


def smoke_mode() -> bool:
    """Whether benchmarks should run their seconds-scale smoke configuration.

    Set ``REPRO_BENCH_SMOKE=1`` (tier-1 test runs do) to shrink workloads so a
    benchmark module executes in a few seconds instead of minutes.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def boosting_workload(seed: int = 0, er_n: int = 80, er_p: float = 0.05,
                      num_paths: int = 4, path_len: int = 9,
                      backend: str = "adjset"):
    """The standard Table 1 workload: a sparse random graph plus disjoint long
    paths (the paths force augmenting paths of length up to ``path_len``, the
    regime where boosting beyond a maximal matching actually matters).

    ``backend`` selects the graph storage backend (``"adjset"`` / ``"csr"``);
    the edge set is identical on every backend for a given seed.
    """
    from repro.graph.generators import disjoint_paths, erdos_renyi
    from repro.graph.graph import Graph

    er = erdos_renyi(er_n, er_p, seed=seed)
    paths = disjoint_paths(num_paths, path_len)
    g = Graph(er.n + paths.n, backend=backend)
    g.add_edges(er.edges())
    g.add_edges((er.n + u, er.n + v) for u, v in paths.edges())
    return g


def emit(table: Table, filename: str) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text
