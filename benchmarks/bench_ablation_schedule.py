"""Ablation: the two schedule refinements behind Theorem 1.1.

Two changes turn the [FMU22] schedule into this
paper's: (1) only O(log 1/eps) oracle iterations per simulated procedure
(justified by the exponential decay of the derived graphs, Lemma 5.5), and
(2) splitting the Overtake simulation into l_max label stages (Algorithm 5).

This ablation runs the same framework on the same workload/oracle/seed with

* the full refined schedule (stages + log iterations)      -- "ours",
* stages but a single oracle iteration per stage            -- "ours, 1 iter"
  (does the log factor matter at all in practice?),
* no stages and poly(1/eps) iterations (FMU22-style driver)  -- "no stages",

and reports oracle calls and achieved quality for each, isolating what each
refinement buys.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.instrumentation.counters import Counters
from repro.instrumentation.reporting import Table
from repro.matching.blossom import maximum_matching_size
from repro.core.boosting import boost_matching
from repro.core.config import ParameterProfile
from repro.core.oracles import RandomGreedyMatchingOracle
from repro.baselines.fmu22 import fmu22_boost

from repro.bench import register

from _common import EPS_SWEEP, boosting_workload, emit, scenario_main


def run_ablation(seed: int = 0) -> Table:
    table = Table(
        "Ablation: schedule refinements (stages, log-iterations) at fixed workload",
        ["eps", "variant", "oracle calls", "size/opt"])
    g = boosting_workload(seed, er_n=80, er_p=0.05, num_paths=5, path_len=9)
    opt = maximum_matching_size(g)
    for eps in EPS_SWEEP:
        base_profile = ParameterProfile.practical(eps)
        variants = [
            ("ours (stages + log iters)", base_profile, "ours"),
            ("ours, 1 iteration/stage",
             dataclasses.replace(base_profile, sim_iterations=1), "ours"),
            ("no stages, poly iters (FMU22-style)", base_profile, "fmu22"),
        ]
        for label, profile, kind in variants:
            counters = Counters()
            oracle = RandomGreedyMatchingOracle(seed=seed)
            if kind == "ours":
                m = boost_matching(g, eps, oracle=oracle, profile=profile,
                                   counters=counters, seed=seed)
            else:
                m = fmu22_boost(g, eps, oracle=oracle, profile=profile,
                                counters=counters, seed=seed)
            table.add_row(eps, label, counters.get("oracle_calls"),
                          m.size / max(1, opt))
    return table


def test_ablation_schedule(benchmark):
    """Regenerate the ablation table; time the refined schedule at eps=1/4."""
    g = boosting_workload(0, er_n=80, er_p=0.05, num_paths=5, path_len=9)
    benchmark(lambda: boost_matching(g, 0.25, seed=0))
    emit(run_ablation(), "ablation_schedule.txt")


# ------------------------------------------------------------ repro.bench
@register("ablation_schedule", suite="ablation", backends=("adjset", "csr"),
          description="refined schedule vs FMU22-style driver: oracle calls "
                      "and quality on the same workload/oracle/seed")
def _ablation_scenario(spec, counters):
    eps = spec.resolved_eps()
    if spec.smoke:
        g = boosting_workload(spec.seed, er_n=40, er_p=0.06, num_paths=3,
                              path_len=7, backend=spec.backend)
    else:
        g = boosting_workload(spec.seed, er_n=80, er_p=0.05, num_paths=5,
                              path_len=9, backend=spec.backend)
    opt = maximum_matching_size(g)
    ours = boost_matching(g, eps, oracle=RandomGreedyMatchingOracle(seed=spec.seed),
                          counters=counters, seed=spec.seed)
    fmu_counters = Counters()
    fmu = fmu22_boost(g, eps, oracle=RandomGreedyMatchingOracle(seed=spec.seed),
                      counters=fmu_counters, seed=spec.seed)
    return {"size_over_opt": ours.size / max(1, opt),
            "fmu22_oracle_calls": fmu_counters.get("oracle_calls"),
            "fmu22_size_over_opt": fmu.size / max(1, opt)}


def main(argv=None) -> int:
    return scenario_main("ablation_schedule", argv)


if __name__ == "__main__":
    raise SystemExit(main())
