"""Setuptools packaging for the reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so ``pip install -e .``
works in offline environments without the ``wheel`` package -- legacy
editable installs need exactly this file.  The ``repro-lint`` console script
is the installable face of ``python -m repro.analysis`` (stdlib-only, so it
works even where NumPy is absent).
"""

from setuptools import find_packages, setup

setup(
    name="repro-matching",
    version="0.8.0",
    description="Reproduction: incremental (1+eps)-approximate matching "
                "(dynamic, MPC and CONGEST models)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
