#!/usr/bin/env python3
"""MPC scenario (Corollary A.1): boosting on the simulated MPC substrate.

The paper's motivating setting: a Theta(1)-approximate matching algorithm that
runs in few MPC rounds (here: a randomized proposal algorithm standing in for
[GU19]) is turned into a (1+eps)-approximation, multiplying its round count by
only O(log(1/eps)/eps^7).  The example compares the boosted run against the
FMU22-style schedule on the same oracle and prints the round/invocation
accounting.

Run:  python examples/mpc_boosting.py
"""

from repro import Counters, maximum_matching
from repro.baselines.fmu22 import fmu22_boost, fmu22_scheduled_calls
from repro.core.config import ParameterProfile
from repro.graph.generators import disjoint_paths, erdos_renyi
from repro.graph.graph import Graph
from repro.mpc.boost_mpc import mpc_boosted_matching
from repro.mpc.matching_mpc import MPCMatchingOracle


def build_workload(seed: int = 3) -> Graph:
    """Random graph plus long induced paths (so boosting has work to do)."""
    er = erdos_renyi(150, 0.025, seed=seed)
    paths = disjoint_paths(6, 9)
    g = Graph(er.n + paths.n)
    for u, v in er.edges():
        g.add_edge(u, v)
    for u, v in paths.edges():
        g.add_edge(er.n + u, er.n + v)
    return g


def main() -> None:
    graph = build_workload()
    optimum = maximum_matching(graph).size
    eps = 0.25
    print(f"workload: n={graph.n}, m={graph.m}, mu={optimum}, eps={eps}")

    # --- this paper's framework on the MPC oracle ---------------------------
    counters = Counters()
    matching, _ = mpc_boosted_matching(graph, eps, counters=counters, seed=1)
    print("\n[this work, Corollary A.1]")
    print(f"  matching size       : {matching.size} "
          f"(factor {optimum / matching.size:.3f}, target <= {1 + eps})")
    print(f"  oracle invocations  : {int(counters['oracle_calls'])}")
    print(f"  MPC rounds (oracle) : {int(counters['mpc_rounds'])}")
    print(f"  MPC rounds (total)  : {int(counters['mpc_total_rounds'])} "
          f"(incl. Aprocess clean-up)")

    # --- the FMU22-style schedule on the same oracle ------------------------
    fmu_counters = Counters()
    fmu_matching = fmu22_boost(graph, eps, oracle=MPCMatchingOracle(counters=fmu_counters, seed=1),
                               counters=fmu_counters, seed=1)
    print("\n[FMU22-style schedule, same oracle]")
    print(f"  matching size       : {fmu_matching.size} "
          f"(factor {optimum / fmu_matching.size:.3f})")
    print(f"  oracle invocations  : {int(fmu_counters['oracle_calls'])}")
    print(f"  MPC rounds (oracle) : {int(fmu_counters['mpc_rounds'])}")

    # --- the scheduled (worst-case) bounds the paper's Table 1 states -------
    profile = ParameterProfile.paper(eps)
    print("\n[Table 1 scheduled bounds at this eps]")
    print(f"  this work  O(eps^-7 log 1/eps) ~ {profile.paper_invocation_bound():.3g}")
    print(f"  FMU22+MMSS O(eps^-39)          ~ {profile.fmu22_mmss25_invocation_bound():.3g}")
    print(f"  FMU22      O(eps^-52)          ~ {fmu22_scheduled_calls(eps, 'mpc'):.3g}")


if __name__ == "__main__":
    main()
