#!/usr/bin/env python3
"""Semi-streaming scenario: the [MMSS25] algorithm the framework simulates.

Runs Algorithm 1 (scales -> phases -> pass-bundles over the edge stream)
directly, reporting the number of passes and the evolution of the matching
size, and then shows that the oracle-driven simulation (Section 5) reaches the
same quality -- the equivalence at the heart of the boosting framework.

Run:  python examples/streaming_demo.py
"""

from repro import Counters, boost_matching, maximum_matching, semi_streaming_matching
from repro.core.config import ParameterProfile
from repro.graph.generators import blossom_gadget, erdos_renyi
from repro.graph.graph import Graph


def build_workload(seed: int = 13) -> Graph:
    er = erdos_renyi(120, 0.035, seed=seed)
    gadgets = blossom_gadget(8, 4)   # odd cycles: the blossoms of Figure 1
    g = Graph(er.n + gadgets.n)
    for u, v in er.edges():
        g.add_edge(u, v)
    for u, v in gadgets.edges():
        g.add_edge(er.n + u, er.n + v)
    return g


def main() -> None:
    eps = 0.125
    graph = build_workload()
    optimum = maximum_matching(graph).size
    print(f"stream: n={graph.n}, m={graph.m}, mu={optimum}, eps={eps}")

    profile = ParameterProfile.practical(eps)
    print(f"schedule: l_max={profile.ell_max}, scales={['%.3g' % h for h in profile.scales]}")

    counters = Counters()
    matching = semi_streaming_matching(graph, eps, counters=counters, seed=2)
    print("\n[semi-streaming algorithm, Algorithm 1]")
    print(f"  matching size   : {matching.size} "
          f"(factor {optimum / matching.size:.3f}, target <= {1 + eps})")
    print(f"  passes          : {int(counters['passes'])}")
    print(f"  phases          : {int(counters['phases'])}")
    print(f"  augmentations   : {int(counters['augmentations'])}, "
          f"contractions: {int(counters['contractions'])}, "
          f"overtakes: {int(counters['overtakes'])}")

    boost_counters = Counters()
    boosted = boost_matching(graph, eps, counters=boost_counters, seed=2)
    print("\n[oracle-driven simulation of the same algorithm, Section 5]")
    print(f"  matching size   : {boosted.size} "
          f"(factor {optimum / boosted.size:.3f})")
    print(f"  oracle calls    : {int(boost_counters['oracle_calls'])} "
          f"(each replaces one streaming pass over a derived graph)")


if __name__ == "__main__":
    main()
