#!/usr/bin/env python3
"""Fully dynamic scenario (Theorems 6.2 / 7.1 / 7.12): maintain (1+eps) under churn.

A planted perfect matching is repeatedly broken by deletions and repaired by
re-insertions while the maintainer keeps a (1+eps)-approximate matching at all
times.  Two weak oracles are compared: the direct greedy induced-subgraph
oracle and the OMv-backed oracle of Section 7.4 (queries answered through
online matrix-vector products over the bipartite double cover).  The offline
variant (Theorem 7.15 flavour) processes the same sequence with epochs planned
in advance.

Run:  python examples/dynamic_matching.py
"""

from repro import Counters
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.dynamic.offline import OfflineDynamicMatching
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle, OMvWeakOracle
from repro.workloads import planted_matching_churn
from repro.matching.blossom import maximum_matching_size


def run_online(n, updates, eps, label, oracle_factory, counters):
    alg = FullyDynamicMatching(n, eps, counters=counters, seed=0,
                               oracle_factory=oracle_factory)
    worst_factor = 1.0
    for idx, upd in enumerate(updates):
        alg.update(upd)
        if idx % 40 == 0:  # spot-check the approximation as the graph evolves
            opt = maximum_matching_size(alg.graph)
            if opt:
                worst_factor = max(worst_factor, opt / max(1, alg.current_matching().size))
    opt = maximum_matching_size(alg.graph)
    print(f"\n[{label}]")
    print(f"  final matching size      : {alg.current_matching().size} (mu = {opt})")
    print(f"  worst spot-check factor  : {worst_factor:.3f} (target <= {1 + eps})")
    print(f"  rebuilds                 : {int(counters['dyn_rebuilds'])}")
    print(f"  weak-oracle calls        : {int(counters['weak_oracle_calls'])}")
    print(f"  amortized work / update  : {alg.amortized_update_work():.1f}")
    return alg


def main() -> None:
    eps = 0.25
    updates = planted_matching_churn(20, rounds=6, churn_fraction=0.3, seed=4)
    n = updates.n
    print(f"workload: n={n}, {updates.length} updates "
          f"(planted matching churn, mu stays Theta(n); lazy stream, "
          f"re-iterated per algorithm)")

    counters = Counters()
    run_online(n, updates, eps, "online, greedy induced Aweak (Thm 7.1 + 6.2)",
               lambda g: GreedyInducedWeakOracle(g, seed=0), counters)

    omv_counters = Counters()
    run_online(n, updates, eps, "online, OMv-backed Aweak (Thm 7.12 flavour)",
               lambda g: OMvWeakOracle(g, counters=omv_counters), omv_counters)
    print(f"  OMv queries / row probes : {int(omv_counters['omv_queries'])} / "
          f"{int(omv_counters['omv_row_probes'])}")

    off_counters = Counters()
    offline = OfflineDynamicMatching(n, eps, counters=off_counters, seed=0)
    sizes = offline.run(updates)
    print("\n[offline, epochs planned in advance (Thm 7.15 flavour)]")
    print(f"  final matching size      : {sizes[-1]}")
    print(f"  epochs                   : {int(off_counters['offline_epochs'])}")
    print(f"  amortized work / update  : {offline.amortized_update_work():.1f}")


if __name__ == "__main__":
    main()
