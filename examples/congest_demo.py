#!/usr/bin/env python3
"""CONGEST scenario (Corollary A.2): distributed boosting with round accounting.

Runs the distributed Israeli--Itai-style Theta(1)-approximate matching under
the CONGEST simulator, boosts it to (1+eps), and breaks the round count into
oracle rounds vs Aprocess component-aggregation rounds -- the term responsible
for the extra 1/eps^3 factor in the CONGEST row of Table 1.

Run:  python examples/congest_demo.py
"""

from repro import Counters, maximum_matching
from repro.congest.boost_congest import congest_boosted_matching
from repro.congest.matching_congest import CongestMatchingOracle
from repro.congest.simulator import CongestSimulator
from repro.graph.generators import erdos_renyi
from repro.matching.matching import Matching


def main() -> None:
    eps = 0.25
    graph = erdos_renyi(120, 0.04, seed=11)
    optimum = maximum_matching(graph).size
    print(f"network: n={graph.n}, m={graph.m}, mu={optimum}")

    # --- one raw oracle call: the distributed 2-approximation ---------------
    raw_counters = Counters()
    oracle = CongestMatchingOracle(counters=raw_counters, seed=5)
    raw = Matching(graph.n, oracle.find_matching(graph))
    print("\n[one Theta(1)-approximate CONGEST matching]")
    print(f"  size   : {raw.size} (factor {optimum / max(1, raw.size):.3f})")
    print(f"  rounds : {int(raw_counters['congest_rounds'])}")
    print(f"  msgs   : {int(raw_counters['congest_messages'])}")

    # --- boosted to (1 + eps) ------------------------------------------------
    counters = Counters()
    boosted, _ = congest_boosted_matching(graph, eps, counters=counters, seed=5)
    agg = counters["congest_aggregation_rounds"]
    total = counters["congest_rounds"]
    print(f"\n[boosted to (1+{eps}), Corollary A.2]")
    print(f"  size                  : {boosted.size} "
          f"(factor {optimum / boosted.size:.3f}, target <= {1 + eps})")
    print(f"  oracle invocations    : {int(counters['oracle_calls'])}")
    print(f"  CONGEST rounds total  : {int(total)}")
    print(f"    - inside the oracle : {int(total - agg)}")
    print(f"    - Aprocess (struct. aggregation, the extra eps^-3 factor) : {int(agg)}")

    # --- the simulator is also usable directly ------------------------------
    sim = CongestSimulator(graph)
    sim.charge_component_aggregation(component_size=8)
    print(f"\naggregating one 8-vertex structure costs "
          f"{sim.rounds} CONGEST rounds (2 x component size).")


if __name__ == "__main__":
    main()
