#!/usr/bin/env python3
"""Quickstart: boost a 2-approximate matching oracle to a (1+eps)-approximation.

This is the smallest end-to-end use of the library's headline API
(Theorem 1.1): build a graph, pick a Theta(1)-approximate matching oracle,
run the boosting framework, and inspect the quality and the number of oracle
invocations it needed.

Run:  python examples/quickstart.py
"""

from repro import Counters, boost_matching, maximum_matching
from repro.core.oracles import GreedyMatchingOracle
from repro.graph.generators import erdos_renyi


def main() -> None:
    # 1. a workload: a sparse random graph on 200 vertices
    graph = erdos_renyi(200, 0.03, seed=7)
    print(f"graph: n={graph.n}, m={graph.m}")

    # 2. the oracle the framework boosts: a plain greedy maximal matching
    #    (c = 2 approximation). Any MatchingOracle works here -- see
    #    repro.mpc / repro.congest for the simulated-model oracles.
    oracle = GreedyMatchingOracle()

    # 3. boost it to a (1 + eps)-approximation
    eps = 0.25
    counters = Counters()
    matching = boost_matching(graph, eps, oracle=oracle, counters=counters, seed=0)

    # 4. verify against the exact optimum (Edmonds' blossom algorithm)
    optimum = maximum_matching(graph).size
    print(f"boosted matching size : {matching.size}")
    print(f"exact optimum         : {optimum}")
    print(f"approximation factor  : {optimum / matching.size:.4f} "
          f"(target <= {1 + eps})")
    print(f"oracle invocations    : {int(counters['oracle_calls'])} "
          f"(Theorem 1.1 bounds this by O(log(1/eps)/eps^7))")
    print(f"phases / pass-bundles : {int(counters['phases'])} / "
          f"{int(counters['pass_bundles'])}")

    # the output is always a valid matching of the input graph
    matching.validate(graph)
    print("matching validated.")


if __name__ == "__main__":
    main()
