#!/usr/bin/env python3
"""Workload subsystem quickstart: streams, traces, and real-graph replay.

Walks the record-once/replay-forever path of ``repro.workloads``:

1. build a *lazy* update stream (no list is ever materialized),
2. record it to a packed int64 trace and round-trip it through disk,
3. replay the trace through the fully dynamic maintainer on both storage
   backends and check the runs are byte-identical,
4. ingest a real graph (Zachary's karate club) and replay it with
   sliding-window expiry.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro import Counters
from repro.dynamic.fully_dynamic import FullyDynamicMatching
from repro.workloads import (
    Trace,
    interleave,
    load_edge_list,
    planted_matching_churn,
    sliding_window,
    temporal_sliding_window,
)

DATA = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "data")


def replay(trace, backend):
    counters = Counters()
    alg = FullyDynamicMatching(trace.n, eps=0.25, counters=counters, seed=0,
                               backend=backend)
    alg.process(trace.stream(), collect_sizes=False)
    return alg, counters


def main() -> None:
    # 1. compose a lazy stream: churn workload interleaved with a turnstile
    #    stream -- combinators make new scenarios one-liners, and nothing
    #    is generated until an algorithm pulls updates.
    churn = planted_matching_churn(12, rounds=3, seed=7)
    turnstile = sliding_window(churn.n, 120, window=20, seed=7)
    stream = interleave(churn, turnstile)
    print(f"stream: {stream.name}")
    print(f"  n={stream.n}, declared length={stream.length}")

    # 2. record -> save -> load: a trace is the stream's bytes; replays are
    #    identical on every host, which is what makes benchmarks shareable.
    trace = Trace.record(stream)
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(os.path.join(tmp, "workload"))
        loaded = Trace.load(path)
    print(f"  recorded {len(trace)} updates, round-trips byte-identically: "
          f"{loaded == trace}")

    # 3. replay through the maintainer on both backends
    runs = {backend: replay(loaded, backend) for backend in ("adjset", "csr")}
    for backend, (alg, counters) in runs.items():
        print(f"  [{backend}] final matching {alg.current_matching().size}, "
              f"rebuilds {int(counters['dyn_rebuilds'])}, "
              f"amortized work/update {alg.amortized_update_work():.1f}")
    identical = (runs["adjset"][1].as_dict() == runs["csr"][1].as_dict())
    print(f"  backend runs byte-identical: {identical}")

    # 4. real-graph ingestion: karate club, replayed with expiry so edges
    #    age out and the maintainer faces real deletions.
    data = load_edge_list(os.path.join(DATA, "karate.txt"))
    real = Trace.record(temporal_sliding_window(data, window=40))
    alg, counters = replay(real, "adjset")
    print(f"\nreal graph: karate club (n={data.n}, {data.m} arrivals, "
          f"window 40 -> {len(real)} updates)")
    print(f"  final matching {alg.current_matching().size}, "
          f"rebuilds {int(counters['dyn_rebuilds'])}, "
          f"weak-oracle calls {int(counters['weak_oracle_calls'])}")
    print("trace replay quickstart done.")


if __name__ == "__main__":
    main()
