"""Static determinism & contract linter plus the runtime sanitizer.

``python -m repro.analysis --check src/repro`` is the CI gate; see
ARCHITECTURE.md ("Static analysis & determinism sanitizer") for the rule
catalogue and the pragma grammar.
"""

from repro.analysis.baseline import (  # noqa: F401
    Baseline,
    DEFAULT_BASELINE_NAME,
    from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (  # noqa: F401
    SourceFile,
    analyze_paths,
    analyze_source,
    find_repo_root,
    load_source_file,
)
from repro.analysis.findings import (  # noqa: F401
    Finding,
    Report,
    findings_from_report,
    render_json,
    render_text,
    validate_report,
)
from repro.analysis.registry import Rule, all_rules, get_rule  # noqa: F401
from repro.analysis.sanitizer import (  # noqa: F401
    SanitizerResult,
    canonical_bytes,
    normalize_record,
    run_sanitizer,
)
