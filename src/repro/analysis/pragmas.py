"""Per-line pragma suppressions.

Grammar (one comment, end of the offending line)::

    # repro: allow[<rule>[,<rule>...]] -- <justification>

``<rule>`` is a rule id (``set-iteration``) or a rule family
(``hash-order``), matching every id in the family.  The justification after
``--`` is **required**: a pragma without one does not suppress anything and
is itself reported (``pragma-missing-justification``).  A pragma that
suppresses nothing is reported too (``pragma-unused``) -- stale suppressions
must not outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$")

#: ids of the findings the pragma machinery itself emits
MISSING_JUSTIFICATION = "pragma-missing-justification"
UNUSED = "pragma-unused"


@dataclass
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int                      # 1-based line it sits on (and covers)
    rules: List[str]               # rule ids / family names listed
    justification: str             # "" when missing
    used: bool = field(default=False)

    @property
    def valid(self) -> bool:
        return bool(self.justification) and bool(self.rules)

    def covers(self, rule_id: str, family: str) -> bool:
        return rule_id in self.rules or family in self.rules


def _comment_tokens(text: str) -> List:
    """(lineno, comment-text) for every real comment token in ``text``.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma text
    inside string literals -- error messages, docstrings, test fixtures --
    from being parsed as live suppressions.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        return [(tok.start[0], tok.string) for tok in tokens
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # unparseable file: the parse-error finding covers it; no pragmas
        return []


def parse_pragmas(lines: List[str]) -> Dict[int, Pragma]:
    """All pragmas of a file, keyed by 1-based line number."""
    out: Dict[int, Pragma] = {}
    for lineno, comment in _comment_tokens("\n".join(lines) + "\n"):
        if "repro:" not in comment:
            continue
        match = PRAGMA_RE.search(comment)
        if not match:
            continue
        rules = [token.strip() for token in match.group("rules").split(",")
                 if token.strip()]
        out[lineno] = Pragma(line=lineno, rules=rules,
                             justification=(match.group("why") or "").strip())
    return out
