"""``python -m repro.analysis``: lint and sanitize subcommands.

Exit codes (``lint --check`` and ``sanitize``):

* ``0`` -- clean (no new findings / byte-identical records),
* ``1`` -- violations found (new findings, stale baseline entries, or a
  determinism mismatch),
* ``2`` -- usage or infrastructure error (bad paths, broken baseline file,
  bench subprocess crash).

Without ``--check``, ``lint`` is report-only and always exits 0 so it can
be run exploratively while triaging.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.engine import analyze_paths, find_repo_root
from repro.analysis.findings import render_json, render_text
from repro.analysis.registry import all_rules
from repro.analysis.sanitizer import DEFAULT_SCENARIO, run_sanitizer

PROG = "python -m repro.analysis"


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{PROG} lint",
        description="determinism & contract linter over the repro sources")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to scan "
                             "(default: src/repro at the repo root)")
    parser.add_argument("--paths", dest="extra_paths", nargs="+",
                        default=None, metavar="FILE",
                        help="additional files/directories to scan (a "
                             "pre-commit-speed subset run; the stale-"
                             "baseline check is restricted to the scanned "
                             "files)")
    parser.add_argument("--changed", action="store_true",
                        help="scan only the repo's changed python files "
                             "(git diff --name-only HEAD) against the full "
                             "baseline")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on new findings or stale baseline "
                             "entries (the CI gate)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             f"{baseline_mod.DEFAULT_BASELINE_NAME} at the "
                             "repo root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current tree's "
                             "unsuppressed findings, then exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also show suppressed/baselined findings "
                             "(text format)")
    return parser


def _build_sanitize_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{PROG} sanitize",
        description="run a seeded smoke scenario under varied "
                    "PYTHONHASHSEED and --jobs; fail on any record diff")
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alt-hashseed", default="1",
                        help="PYTHONHASHSEED of the hash-seed variant run")
    parser.add_argument("--alt-jobs", type=int, default=2,
                        help="--jobs of the worker-count variant run")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-subprocess timeout in seconds")
    return parser


def changed_python_files(root: Path) -> List[Path]:
    """Tracked ``.py`` files with staged or unstaged changes under ``root``.

    ``git diff --name-only HEAD`` covers both the index and the working
    tree (the pre-commit use case); deleted files are skipped -- there is
    nothing left to lint, and the full-tree gate retires their baseline
    entries.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", "HEAD", "--"],
        cwd=str(root), capture_output=True, text=True, check=True)
    out: List[Path] = []
    for line in proc.stdout.splitlines():
        if not line.endswith(".py"):
            continue
        path = root / line
        if path.is_file():
            out.append(path)
    return out


def _list_rules() -> int:
    for entry in all_rules():
        print(f"{entry.id:32s} [{entry.family}] {entry.summary}")
    return 0


def run_lint(argv: Sequence[str]) -> int:
    args = _build_lint_parser().parse_args(list(argv))
    if args.list_rules:
        return _list_rules()
    root = find_repo_root()
    paths: List[Path] = [Path(p) for p in args.paths]
    if args.extra_paths:
        paths.extend(Path(p) for p in args.extra_paths)
    if args.changed:
        try:
            paths.extend(changed_python_files(root))
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: --changed needs a git checkout at {root}: {exc}",
                  file=sys.stderr)
            return 2
        if not paths:
            print("no changed python files; nothing to lint")
            return 0
    # a subset run checks only the named files; the stale-baseline check is
    # then restricted to them (an unscanned file's entry is not stale)
    subset = bool(paths)
    if not paths:
        paths = [root / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / baseline_mod.DEFAULT_BASELINE_NAME)
    try:
        baseline = baseline_mod.load_baseline(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        report = analyze_paths(paths, baseline=None, root=root)
        fresh = baseline_mod.from_findings(
            f for f in report.findings if not f.suppressed)
        baseline_mod.save_baseline(fresh, baseline_path)
        print(f"baseline updated: {len(fresh.entries)} entr"
              f"{'y' if len(fresh.entries) == 1 else 'ies'} "
              f"-> {baseline_path}")
        return 0

    report = analyze_paths(paths, baseline=baseline, root=root)
    stale = baseline_mod.stale_fingerprints(
        baseline, report.findings,
        paths=report.paths_scanned if subset else None)
    if args.format == "json":
        sys.stdout.write(render_json(report))
    else:
        print(render_text(report, verbose_suppressed=args.verbose))
        for fingerprint in stale:
            entry = baseline.entries[fingerprint]
            print(f"stale baseline entry {fingerprint} "
                  f"({entry.get('rule')} @ {entry.get('path')}): the "
                  "finding no longer exists -- remove it from "
                  f"{baseline_path.name}")
    if args.check and (report.new_findings or stale):
        return 1
    return 0


def run_sanitize(argv: Sequence[str]) -> int:
    args = _build_sanitize_parser().parse_args(list(argv))
    try:
        result = run_sanitizer(args.scenario, seed=args.seed,
                               alt_hashseed=args.alt_hashseed,
                               alt_jobs=args.alt_jobs,
                               timeout=args.timeout)
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sanitize":
        return run_sanitize(argv[1:])
    if argv and argv[0] == "lint":
        argv = argv[1:]
    return run_lint(argv)
