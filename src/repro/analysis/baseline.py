"""The committed baseline of grandfathered findings.

The baseline file (``repro-analysis-baseline.json`` at the repo root) lists
fingerprints of findings that predate a rule and are tolerated until paid
down.  ``--check`` fails only on findings *not* in the baseline; removing an
entry (or fixing the code) is how debt is retired, ``--update-baseline``
regenerates the file from the current tree.  This repository's policy is an
**empty** baseline -- the file exists so the mechanism is exercised and so a
future rule can be landed before its last finding is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: default location, relative to the repo root
DEFAULT_BASELINE_NAME = "repro-analysis-baseline.json"


@dataclass
class Baseline:
    """A set of grandfathered fingerprints (plus context for humans)."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def fingerprints(self) -> Set[str]:
        return set(self.entries)

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def add(self, finding: Finding) -> None:
        self.entries[finding.fingerprint] = {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "context": finding.context,
        }

    def remove(self, fingerprint: str) -> bool:
        return self.entries.pop(fingerprint, None) is not None

    def as_dict(self) -> Dict[str, object]:
        return {"version": BASELINE_VERSION,
                "findings": [self.entries[k] for k in sorted(self.entries)]}


def from_findings(findings: Iterable[Finding]) -> Baseline:
    baseline = Baseline()
    for finding in findings:
        baseline.add(finding)
    return baseline


def load_baseline(path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a baseline file "
                         "(expected {'version': 1, 'findings': [...]})")
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version "
                         f"{payload.get('version')!r}")
    entries: Dict[str, Dict[str, object]] = {}
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{path}: baseline entries need a 'fingerprint'")
        entries[str(entry["fingerprint"])] = entry
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path) -> Path:
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def stale_fingerprints(baseline: Baseline, findings: Iterable[Finding],
                       paths: Optional[Iterable[str]] = None) -> List[str]:
    """Baseline entries no longer matched by any current finding.

    ``paths`` restricts the check to entries whose recorded path was
    actually scanned: a subset run (``--paths`` / ``--changed``) must not
    declare entries for *unscanned* files stale just because it never
    looked at them.  ``None`` (a full-tree run) checks every entry.
    """
    current = {f.fingerprint for f in findings}
    candidates = baseline.fingerprints
    if paths is not None:
        scanned = set(paths)
        candidates = {fp for fp in candidates
                      if baseline.entries[fp].get("path") in scanned}
    return sorted(candidates - current)
