"""File walking, rule execution, pragma application and baseline filtering.

The engine is deliberately dumb: parse each file once, hand the
:class:`SourceFile` to every registered rule, then post-process the raw
findings (occurrence numbering for stable fingerprints, pragma suppression,
baseline grandfathering, pragma hygiene findings).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.analysis import pragmas as pragmas_mod
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Report, assign_occurrences
from repro.analysis.registry import Rule, all_rules, known_suppression_targets


@dataclass
class SourceFile:
    """One parsed python file, as rules see it."""

    path: Path                 # absolute
    rel: str                   # posix path reported in findings
    module: str                # dotted module path ("repro.core.phase")
    text: str
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    parse_error: Optional[SyntaxError] = None

    @property
    def package(self) -> str:
        """First package component under ``repro`` ("core", "mpc", ...)."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return parts[0]

    def in_packages(self, *packages: str) -> bool:
        return self.package in packages

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Convenience for rules: a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule_id, path=self.rel, line=lineno, col=col,
                       message=message, context=self.line_text(lineno))


def module_name_for(path: Path) -> str:
    """Dotted module path, anchored at the last ``repro`` path component."""
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def load_source_file(path: Path, root: Optional[Path] = None) -> SourceFile:
    path = Path(path).resolve()
    try:
        rel = str(path.relative_to(root)) if root else str(path)
    except ValueError:
        rel = str(path)
    rel = rel.replace("\\", "/")
    text = path.read_text(encoding="utf-8")
    source = SourceFile(path=path, rel=rel, module=module_name_for(path),
                        text=text, lines=text.splitlines())
    try:
        source.tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        source.parse_error = exc
    return source


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            raise ValueError(f"not a python file or directory: {entry}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def analyze_source(source: SourceFile,
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Raw rule findings for one file (no pragma/baseline processing)."""
    if source.parse_error is not None:
        exc = source.parse_error
        return [Finding(rule="parse-error", path=source.rel,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        context=source.line_text(exc.lineno or 1))]
    found: List[Finding] = []
    for entry in (rules if rules is not None else all_rules()):
        found.extend(entry.check(source))
    return found


def _apply_pragmas(source: SourceFile, findings: List[Finding],
                   families: Dict[str, str]) -> List[Finding]:
    """Suppress pragma-covered findings; emit pragma hygiene findings."""
    pragma_map = pragmas_mod.parse_pragmas(source.lines)
    out: List[Finding] = []
    for finding in findings:
        pragma = pragma_map.get(finding.line)
        if (pragma is not None and pragma.valid
                and pragma.covers(finding.rule,
                                  families.get(finding.rule, ""))):
            pragma.used = True
            finding = replace(finding, suppressed=True)
        out.append(finding)
    known = set(known_suppression_targets())
    for pragma in pragma_map.values():
        if not pragma.valid:
            out.append(Finding(
                rule=pragmas_mod.MISSING_JUSTIFICATION, path=source.rel,
                line=pragma.line, col=0,
                message="pragma needs a justification: "
                        "# repro: allow[<rule>] -- <why this is sound>",
                context=source.line_text(pragma.line)))
        elif not pragma.used:
            unknown = [r for r in pragma.rules if r not in known]
            detail = (f" (unknown rule(s): {', '.join(unknown)})"
                      if unknown else "")
            out.append(Finding(
                rule=pragmas_mod.UNUSED, path=source.rel, line=pragma.line,
                col=0,
                message=f"pragma suppresses nothing{detail}; remove it",
                context=source.line_text(pragma.line)))
    return out


def analyze_paths(paths: Sequence, baseline: Optional[Baseline] = None,
                  rules: Optional[Sequence[Rule]] = None,
                  root: Optional[Path] = None) -> Report:
    """Run every rule over ``paths`` and return the processed report."""
    active = list(rules) if rules is not None else all_rules()
    families = {r.id: r.family for r in active}
    report = Report()
    all_findings: List[Finding] = []
    for path in iter_python_files(paths):
        source = load_source_file(path, root=root)
        report.files_scanned += 1
        report.paths_scanned.append(source.rel)
        file_findings = analyze_source(source, rules=active)
        all_findings.extend(_apply_pragmas(source, file_findings, families))
    processed = assign_occurrences(all_findings)
    if baseline is not None:
        processed = [
            f if f.suppressed or not baseline.covers(f)
            else replace(f, baselined=True)
            for f in processed]
    report.findings = processed
    return report


def find_repo_root(start: Optional[Path] = None) -> Path:
    """The directory holding ``src/repro`` (falls back to the cwd)."""
    candidates = []
    if start is not None:
        candidates.extend([Path(start)] + list(Path(start).resolve().parents))
    here = Path(__file__).resolve()
    # src/repro/analysis/engine.py -> parents[3] is the repo root
    candidates.append(here.parents[3])
    candidates.append(Path.cwd())
    candidates.extend(Path.cwd().parents)
    for candidate in candidates:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()
