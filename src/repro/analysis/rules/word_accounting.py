"""Rule family ``word-accounting``: MPC/CONGEST message paths must be sized.

PR 3 fixed two silent budget bypasses: MPC messages were charged one word
each regardless of payload size, and ``broadcast_round`` skipped the word
accounting entirely.  Both shared a shape: a function that moves message
payloads (into machine storage / vertex inboxes) or charges the
``mpc_messages`` / ``congest_messages`` counters without ever consulting the
shared word-sizing funnel.

The rule: inside :mod:`repro.mpc` and :mod:`repro.congest`, any function
that

* calls ``.append`` / ``.extend`` / ``.insert`` on a storage/inbox
  container,
* assigns into (or rebinds) a storage/inbox container, or
* charges a ``*_messages`` counter

must reference at least one accounting funnel: ``payload_words``,
``_check_size``, ``_check_memory`` or ``_validate_outboxes``.  ``__init__``
(container allocation) is exempt.  This is deliberately a *flow-free*
contract -- it cannot prove the sizing is correct, only that a send path
cannot be written without touching the accounting layer at all, which is
exactly how both PR 3 bugs slipped in.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: substrings identifying message containers in the simulators
_CONTAINER_MARKERS = ("storage", "inbox", "outbox")
#: counters whose charge implies words crossed machines/edges
_MESSAGE_COUNTERS = ("mpc_messages", "congest_messages")
#: the accounting funnels; referencing any one satisfies the contract
_FUNNELS = ("payload_words", "_check_size", "_check_memory",
            "_validate_outboxes")
_MUTATING_METHODS = ("append", "extend", "insert")


def _names_in_chain(node: ast.expr) -> List[str]:
    """All identifier components of an attribute/subscript chain."""
    out: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            out.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            out.append(node.id)
            return out
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return out


def _is_container_ref(node: ast.expr) -> bool:
    return any(marker in name.lower()
               for name in _names_in_chain(node)
               for marker in _CONTAINER_MARKERS)


def _message_path_trigger(fn: ast.AST) -> ast.AST:
    """The first node making ``fn`` a message path, or ``None``."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn:
            continue  # nested defs are checked on their own
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (func.attr in _MUTATING_METHODS
                        and _is_container_ref(func.value)):
                    return node
                if (func.attr == "add" and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and node.args[0].value in _MESSAGE_COUNTERS):
                    return node
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if _is_container_ref(target):
                    return node
    return None


def _references_funnel(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in _FUNNELS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _FUNNELS:
            return True
    return False


@rule("word-accounting-bypass", family="word-accounting",
      summary="MPC/CONGEST message path that never touches the word-sizing "
              "funnel")
def check_word_accounting(source) -> Iterator[Finding]:
    if source.tree is None or not source.in_packages("mpc", "congest"):
        return iter(())
    out: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name == "__init__":
            continue  # container allocation, not a send path
        trigger = _message_path_trigger(node)
        if trigger is not None and not _references_funnel(node):
            out.append(source.finding(
                "word-accounting-bypass", trigger,
                f"{node.name}() moves message payloads or charges a message "
                "counter without consulting payload_words/_check_size/"
                "_check_memory -- words can cross the budget unsized"))
    return iter(out)
