"""Rule family ``repair-journal``: PhaseState mirrors mutate via the funnel.

The array-native phase engine (PR 4) keeps NumPy mirrors of the per-vertex
scalar state (``mate_arr``/``matched_arr``/``removed_arr``/``vlabel_arr``/
``outer_arr``/``sid_arr``/``nid_arr``), and the incremental repair layer
(PR 6) journals every mirror write so ``detach()`` can undo exactly what a
phase touched.  A direct mirror write anywhere else bypasses both: the
scalar state and the mirror drift apart (caught only when
``check_invariants`` happens to run) and the repair journal misses the
vertex, so the *next* phase starts from silently corrupted baseline state.

The rule flags any assignment into (or rebinding of) a mirror attribute
outside the two funnel modules, :mod:`repro.core.structures` (the mutation
funnel itself) and :mod:`repro.core.repair` (the journal/baseline owner).
Reads are always fine -- that is the whole point of the mirrors.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: the PhaseState/RepairContext array mirrors
MIRROR_ATTRS = frozenset({
    "mate_arr", "matched_arr", "removed_arr", "vlabel_arr", "outer_arr",
    "sid_arr", "nid_arr",
})

#: modules allowed to write mirrors: the PhaseState mutation funnel and the
#: RepairContext journal/baseline maintenance (see module docstring)
FUNNEL_MODULES = frozenset({"repro.core.structures", "repro.core.repair"})


def _mirror_attr_of(target: ast.expr) -> str:
    """The mirror attribute a target writes, or "" if none."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr in MIRROR_ATTRS:
        return target.attr
    if isinstance(target, ast.Name) and target.id in MIRROR_ATTRS:
        return target.id
    return ""


@rule("mirror-write-outside-funnel", family="repair-journal",
      summary="direct write to a PhaseState array mirror outside the "
              "mutation funnel")
def check_mirror_writes(source) -> Iterator[Finding]:
    if source.tree is None or source.module in FUNNEL_MODULES:
        return iter(())
    out: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            attr = _mirror_attr_of(target)
            if attr:
                out.append(source.finding(
                    "mirror-write-outside-funnel", node,
                    f"direct write to the {attr} mirror bypasses the "
                    "PhaseState mutation funnel and the repair journal; "
                    "route it through register_node/move_to_structure/"
                    "mark_removed/set_label or the RepairContext"))
    return iter(out)
