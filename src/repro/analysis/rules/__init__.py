"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    hash_order,
    hot_path,
    memo_contracts,
    mirror_writes,
    parallel_safety,
    recovery_paths,
    word_accounting,
)
