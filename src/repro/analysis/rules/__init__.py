"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    hash_order,
    memo_contracts,
    mirror_writes,
    word_accounting,
)
