"""Rule family ``resilience``: recovery paths must not swallow errors.

The fault-tolerant execution layer (:mod:`repro.exec`, the bench runner's
retry/rebuild loop, the checkpoint/restore machinery in
:mod:`repro.resilience`) is exactly the code where a silent ``except
Exception: pass`` is most dangerous: a crash the recovery path eats is a
crash nobody retries, records, or blames, and the suite "passes" with a
hole in it.  The contract throughout is that a broad handler must *convert*
the failure -- re-raise it, return it as data (the ``(ERROR, traceback)``
result shape), or feed it to the failure bookkeeping -- never discard it.

``swallowed-exception`` flags a broad handler (bare ``except``, ``except
Exception``, ``except BaseException``, alone or in a tuple) inside the
resilience-relevant packages whose body does none of:

* re-raise (any ``raise``),
* return a value (a bare ``return`` merely exits),
* touch error machinery -- reference an identifier, attribute, or string
  whose name smells of handling (``error``/``fail``/``record``/``warn``/
  ``traceback``/``timeout``/``crash``/``retry``/``verif``/``abort``/
  ``log``).

Typed handlers (``except ValueError``) are out of scope: naming the type is
already a statement about what is expected.  Intentional swallows -- e.g.
"this child is already dead, terminating it twice is fine" -- carry a
justified ``# repro: allow[swallowed-exception]`` pragma, which is the
point: the justification is reviewable, the silence is not.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: packages whose broad handlers sit on recovery paths
_PACKAGES = ("exec", "dynamic", "resilience", "bench")

#: a handler body referencing any of these substrings is treated as
#: converting the failure rather than discarding it
_HANDLING_MARKERS = ("error", "fail", "record", "warn", "traceback",
                     "timeout", "crash", "retry", "verif", "abort", "log")

#: exception names that make a handler "broad"
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare ``except``, or a type naming Exception/BaseException (anywhere
    in a tuple)."""
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None)
        if name in _BROAD_NAMES:
            return True
    return False


def _converts_failure(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises, returns data, or touches the
    error bookkeeping."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Return) and node.value is not None:
            return True
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        if name is not None:
            lowered = name.lower()
            if any(marker in lowered for marker in _HANDLING_MARKERS):
                return True
    return False


@rule("swallowed-exception", family="resilience",
      summary="broad except handler on a recovery path discards the failure "
              "instead of re-raising, returning, or recording it")
def check_swallowed_exception(source) -> Iterator[Finding]:
    if source.tree is None or not source.in_packages(*_PACKAGES):
        return iter(())
    out: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node) or _converts_failure(node):
            continue
        caught = ("bare except" if node.type is None
                  else f"except {ast.unparse(node.type)}")
        out.append(source.finding(
            "swallowed-exception", node,
            f"{caught} on a recovery path discards the failure: the body "
            "neither re-raises, returns a value, nor records the error -- "
            "a crash this handler eats is never retried or blamed"))
    return iter(out)
