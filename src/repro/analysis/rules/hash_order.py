"""Rule family ``hash-order``: sources of run-to-run nondeterminism.

Three shipped bugs motivate this family: ``Structure.nodes`` iterated a set
of ``StructNode`` objects (address hashes -> per-process order), Contract's
absorbed-path set did the same, and ``WeakOracle.query_bipartite`` scanned
``neighbor_list`` in backend-dependent order.  All three produced seeded runs
that diverged between processes / backends; all three were found by hand,
after the fact.

The checker flags *order-sensitive consumption* of values that are
statically known to be ``set``/``frozenset``:

* syntactically: set literals/comprehensions, ``set(...)``/``frozenset(...)``
  calls and ``.union/.intersection/.difference/.symmetric_difference`` of a
  known set;
* via annotations: names, parameters and ``self.`` attributes annotated
  ``Set[...]``/``FrozenSet[...]`` (including one container unwrap, so
  ``self._adj: List[Set[int]]`` makes ``self._adj[u]`` a set);
* via simple local inference (``x = set(...)`` makes ``x`` a set for the
  rest of the function).

Order-sensitive sinks: ``for``/comprehension iteration, ``list``/``tuple``/
``enumerate``/``iter`` conversion, ``min``/``max`` arguments and bare
``.pop()``.  Order-*insensitive* consumption (``sorted``, ``sum``, ``len``,
``any``, ``all``, membership, building another set) is deliberately not
flagged -- ``sorted(s)`` is the idiomatic fix, not a violation.  Dict views
are insertion-ordered in CPython and are likewise exempt (their order hazard
reduces to the determinism of the inserts, which these rules cover at the
insert site).

Two sibling rules complete the family: ``id-order`` (``id`` used inside a
``key=`` of ``sorted``/``min``/``max``/``.sort`` -- address ordering is never
reproducible) and ``unseeded-random`` (module-level ``random.*`` /
``numpy.random.*`` draws outside :mod:`repro.utils.seeding`, which bypass
every seed the harness pins).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: packages whose algorithm code must be seed-deterministic
ALGORITHM_PACKAGES = ("core", "dynamic", "mpc", "congest", "matching",
                      "graph")

_SET_BASES = {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set",
              "frozenset"}
_CONTAINER_BASES = {"List", "Sequence", "Tuple", "Dict", "Mapping",
                    "DefaultDict", "defaultdict", "list", "tuple", "dict"}
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference", "copy"}
_RANDOM_DRAWS = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes",
}
#: numpy.random attributes that *construct seeded streams* rather than draw
_NP_RANDOM_SAFE = {"default_rng", "Generator", "RandomState", "SeedSequence",
                   "PCG64", "Philox", "MT19937", "SFC64", "BitGenerator"}


def _annotation_kind(node: Optional[ast.expr]) -> Optional[str]:
    """Classify an annotation: "set", "container-of-set" or None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return "set" if node.id in _SET_BASES else None
    if isinstance(node, ast.Attribute):  # typing.Set / t.Set
        return "set" if node.attr in _SET_BASES else None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = (base.id if isinstance(base, ast.Name)
                     else base.attr if isinstance(base, ast.Attribute)
                     else None)
        args = node.slice
        arg_list = (list(args.elts) if isinstance(args, ast.Tuple)
                    else [args])
        if base_name in _SET_BASES:
            return "set"
        if base_name == "Optional":
            return _annotation_kind(arg_list[0]) if arg_list else None
        if base_name in _CONTAINER_BASES:
            # the element/value type is the last subscript argument
            # (List[Set[int]] -> Set[int]; Dict[int, Set[int]] -> Set[int])
            if arg_list and _annotation_kind(arg_list[-1]) == "set":
                return "container-of-set"
    return None


class _ClassSetAttrs(ast.NodeVisitor):
    """Collect ``self.<attr>`` annotation kinds for one class body."""

    def __init__(self) -> None:
        self.kinds: Dict[str, str] = {}

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = node.target
        kind = _annotation_kind(node.annotation)
        if kind:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self.kinds[target.attr] = kind
            elif isinstance(target, ast.Name):  # class-level declaration
                self.kinds[target.id] = kind
        self.generic_visit(node)


class _Env:
    """Name -> kind lookup for one function (plus enclosing class attrs)."""

    def __init__(self, class_attrs: Dict[str, str]) -> None:
        self.names: Dict[str, str] = {}
        self.class_attrs = class_attrs

    def kind_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return self.class_attrs.get(node.attr)
        if isinstance(node, ast.Subscript):
            if self.kind_of(node.value) == "container-of-set":
                return "set"
        return None


def _is_set_expr(node: ast.expr, env: _Env) -> bool:
    """Is ``node`` statically known to produce a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (isinstance(func, ast.Attribute) and func.attr in _SET_METHODS
                and _is_set_expr(func.value, env)):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, env)
                or _is_set_expr(node.right, env))
    if isinstance(node, ast.IfExp):
        return (_is_set_expr(node.body, env)
                or _is_set_expr(node.orelse, env))
    return env.kind_of(node) == "set"


def _uses_id(node: ast.expr) -> bool:
    """Does a ``key=`` expression order by ``id``?"""
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return True
    return False


class _FunctionChecker(ast.NodeVisitor):
    """Flag order-sensitive set consumption within one scope."""

    def __init__(self, source, env: _Env, out: List[Finding]) -> None:
        self.source = source
        self.env = env
        self.out = out

    # --------------------------------------------------- local inference
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        kind = _annotation_kind(node.annotation)
        if kind and isinstance(node.target, ast.Name):
            self.env.names[node.target.id] = kind
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.env):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.names[target.id] = "set"
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:
        # nested scopes are checked by the module driver; don't descend
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    # --------------------------------------------------------------- sinks
    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.out.append(self.source.finding(rule_id, node, message))

    def _check_iter(self, iter_node: ast.expr, node: ast.AST,
                    what: str) -> None:
        if _is_set_expr(iter_node, self.env):
            self._flag("set-iteration", node,
                       f"{what} iterates a set -- iteration order is "
                       "hash/history-dependent; use a canonical order "
                       "(sorted(...), insertion-ordered container)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, what: str) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node, what)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a set from a set is order-insensitive; still infer inside
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("list", "tuple", "enumerate", "iter") and node.args:
                self._check_iter_call(func.id, node)
            elif func.id in ("min", "max"):
                for arg in node.args:
                    if _is_set_expr(arg, self.env):
                        self._flag(
                            "set-minmax", node,
                            f"{func.id}() over a set -- ties resolve in "
                            "iteration order; justify or canonicalise first")
                self._check_key_kwarg(func.id, node)
            elif func.id == "sorted":
                self._check_key_kwarg("sorted", node)
        elif isinstance(func, ast.Attribute):
            if (func.attr == "pop" and not node.args
                    and _is_set_expr(func.value, self.env)):
                self._flag("set-pop", node,
                           "set.pop() removes an arbitrary (hash-order) "
                           "element; pop from a canonical order instead")
            elif func.attr == "sort":
                self._check_key_kwarg("sort", node)
        self.generic_visit(node)

    def _check_iter_call(self, name: str, node: ast.Call) -> None:
        if _is_set_expr(node.args[0], self.env):
            self._flag("set-iteration", node,
                       f"{name}() materialises a set in hash/history order; "
                       "use sorted(...) or an insertion-ordered container")

    def _check_key_kwarg(self, name: str, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "key" and _uses_id(kw.value):
                self._flag("id-order", node,
                           f"{name}(key=id...) orders by object address -- "
                           "never reproducible across processes")


# ---------------------------------------------------------------------------
# module drivers
# ---------------------------------------------------------------------------

def _class_attr_map(tree: ast.Module) -> Dict[str, Dict[str, str]]:
    out: Dict[str, Dict[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            collector = _ClassSetAttrs()
            collector.visit(node)
            out[node.name] = collector.kinds
    return out


def _iter_scopes(tree: ast.Module):
    """Yield (scope_node, enclosing_class_name_or_None, body) pairs."""
    yield tree, None, tree.body
    stack = [(node, None) for node in tree.body]
    while stack:
        node, klass = stack.pop()
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                stack.append((child, node.name))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, klass, node.body
            for child in node.body:
                stack.append((child, klass))
        elif hasattr(node, "body"):
            for child in getattr(node, "body", []):
                stack.append((child, klass))
            for child in getattr(node, "orelse", []):
                stack.append((child, klass))
            for child in getattr(node, "finalbody", []):
                stack.append((child, klass))


@rule("set-iteration", family="hash-order",
      summary="order-sensitive iteration over a set/frozenset")
def check_set_iteration(source) -> Iterator[Finding]:
    return _run_set_checker(source)


@rule("set-pop", family="hash-order",
      summary="set.pop() of an arbitrary element")
def check_set_pop(source) -> Iterator[Finding]:
    return iter(())  # reported by the shared set checker under its own id


@rule("set-minmax", family="hash-order",
      summary="min()/max() directly over a set")
def check_set_minmax(source) -> Iterator[Finding]:
    return iter(())  # reported by the shared set checker under its own id


@rule("id-order", family="hash-order",
      summary="sort/min/max keyed by id() (address ordering)")
def check_id_order(source) -> Iterator[Finding]:
    return iter(())  # reported by the shared set checker under its own id


def _run_set_checker(source) -> Iterator[Finding]:
    """One AST walk emits all four structural hash-order rule ids."""
    if source.tree is None or not source.in_packages(*ALGORITHM_PACKAGES):
        return iter(())
    class_attrs = _class_attr_map(source.tree)
    out: List[Finding] = []
    for scope, klass, _body in _iter_scopes(source.tree):
        env = _Env(class_attrs.get(klass or "", {}))
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                kind = _annotation_kind(arg.annotation)
                if kind:
                    env.names[arg.arg] = kind
            checker = _FunctionChecker(source, env, out)
            for stmt in scope.body:
                checker.visit(stmt)
        else:  # module top level
            checker = _FunctionChecker(source, env, out)
            for stmt in source.tree.body:
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef)):
                    checker.visit(stmt)
    return iter(out)


@rule("unseeded-random", family="hash-order",
      summary="module-level random/np.random draw outside repro.utils.seeding")
def check_unseeded_random(source) -> Iterator[Finding]:
    if source.tree is None or source.module == "repro.utils.seeding":
        return iter(())
    random_names: Set[str] = set()
    numpy_names: Set[str] = set()
    direct_draws: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_names.add(alias.asname or "random")
                elif alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    # "import numpy.random" binds the top-level package name
                    numpy_names.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name in _RANDOM_DRAWS:
                        direct_draws.add(alias.asname or alias.name)
            elif node.module == "numpy" and any(
                    alias.name == "random" for alias in node.names):
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")

    out: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Name) and func.id in direct_draws):
            out.append(source.finding(
                "unseeded-random", node,
                f"{func.id}() draws from the process-global random stream; "
                "thread a seeded rng from repro.utils.seeding instead"))
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name) and base.id in random_names
                    and func.attr in _RANDOM_DRAWS):
                out.append(source.finding(
                    "unseeded-random", node,
                    f"random.{func.attr}() draws from the process-global "
                    "stream; thread a seeded rng from repro.utils.seeding"))
            elif (isinstance(base, ast.Attribute) and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in numpy_names
                    and func.attr not in _NP_RANDOM_SAFE):
                out.append(source.finding(
                    "unseeded-random", node,
                    f"numpy.random.{func.attr}() uses the global numpy "
                    "state; use numpy.random.default_rng(seed)"))
    return iter(out)
