"""Rule family ``parallel-safety``: code that diverges under a process pool.

The sharded-execution roadmap item will run today's serially-executed
machine/vertex programs in worker processes.  Three bug classes behave fine
under :class:`~repro.exec.SerialExecutor` and silently diverge (or crash)
once a :class:`~repro.exec.ProcessExecutor` is plugged in:

* ``exec-escape`` -- a callable shipped through an executor seam
  (``executor.map(fn, tasks)`` / ``pool.submit(fn, task)``) that cannot
  cross a process boundary: lambdas and locally defined functions never
  pickle, and module-level workers whose *default arguments* construct
  unpicklable state (locks, open files, generators, ``Graph``/simulator
  instances) pickle the reference but re-create divergent state per worker.
* ``send-aliasing`` -- an MPC/CONGEST program (``program(vertex, state,
  inbox) -> {neighbor: message}``) returning a mutable payload it retains a
  reference to.  Serial exchange shares objects, so a later mutation
  rewrites the "delivered" message; process exchange pickles at the
  barrier, so the same code delivers the pre-mutation value.  Flagged:
  returning ``state``/``inbox`` themselves, outbox values subscripting
  ``state``/``inbox``, and locals stored into an outbox then mutated in
  place after the send point (by source position; the runtime isolation
  sanitizer in :mod:`repro.exec.isolation` is the behavioural complement
  for the orders this walk cannot see).
* ``global-write`` -- a function reachable from a pool worker (the
  ``run_*_task``/``run_*_chunk`` workers plus anything shipped at a seam in
  the same module, closed over same-module calls exactly like
  ``memo_contracts``' fixpoint) that writes module globals or attributes of
  module-level bindings.  Worker-side writes never propagate back, so the
  serial and pooled runs read different state.

All checks are stdlib-``ast`` only; like every rule here, a justified
``# repro: allow[...]`` pragma documents the intentional exceptions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

Pos = Tuple[int, int]

#: substrings of a receiver-chain name that mark an executor ship site
_SEAM_RECEIVER_MARKERS = ("executor", "pool")
#: attribute calls that ship their first positional argument to workers
_SEAM_METHODS = ("map", "submit")

#: constructors whose results never survive a process boundary usefully
_UNPICKLABLE_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "open", "Graph", "MPCSimulator", "CongestSimulator",
})

#: parameter names that mark a function as an MPC/CONGEST round program
_PROGRAM_PARAMS = frozenset({"state", "inbox", "items", "local_items",
                             "storage"})
#: the subset whose entries must never be aliased into an outbox
_SHARED_DICT_PARAMS = frozenset({"state", "inbox"})

#: in-place mutators on lists/dicts/sets
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
})

#: module-level worker functions that are pool entry points by convention
_WORKER_NAME = re.compile(r"^run_\w*(task|chunk)$")


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The right-most identifier of a Name/Attribute chain, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _chain_names(node: ast.AST) -> List[str]:
    """All identifiers along a Name/Attribute/Call receiver chain."""
    out: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            out.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            out.append(node.id)
            return out
        else:
            return out


def _is_seam_call(node: ast.Call) -> bool:
    """Whether ``node`` is ``<something executor/pool-ish>.map/submit(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _SEAM_METHODS:
        return False
    names = [name.lower() for name in _chain_names(func.value)]
    return any(marker in name
               for name in names for marker in _SEAM_RECEIVER_MARKERS)


def _pos(node: ast.AST) -> Pos:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _iter_function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_body_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ------------------------------------------------------------- exec-escape
@rule("exec-escape", family="parallel-safety",
      summary="callable shipped to an executor must be module-level and "
              "free of unpicklable captures")
def check_exec_escape(source) -> Iterator[Finding]:
    if source.tree is None:
        return iter(())
    out: List[Finding] = []
    module_defs: Dict[str, ast.FunctionDef] = {}
    imported: Set[str] = set()
    for stmt in source.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_defs[stmt.name] = stmt
        elif isinstance(stmt, ast.Import):
            imported.update(a.asname or a.name.split(".")[0]
                            for a in stmt.names)
        elif isinstance(stmt, ast.ImportFrom):
            imported.update(a.asname or a.name for a in stmt.names)

    def local_callables(fn: ast.AST) -> Set[str]:
        """Names bound to nested defs / lambdas inside this scope."""
        bound: Set[str] = set()
        for node in _own_body_walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign) and isinstance(node.value,
                                                             ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        return bound

    def param_names(fn: ast.AST) -> Set[str]:
        args = fn.args
        every = (list(args.posonlyargs) + list(args.args)
                 + list(args.kwonlyargs))
        names = {a.arg for a in every}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    def check_defaults(worker: ast.FunctionDef, seam: ast.Call) -> None:
        args = worker.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
        for default in defaults:
            bad = None
            if isinstance(default, (ast.Lambda, ast.GeneratorExp)):
                bad = ("a lambda" if isinstance(default, ast.Lambda)
                       else "a generator expression")
            elif isinstance(default, ast.Call):
                name = _terminal_name(default.func)
                if name in _UNPICKLABLE_CONSTRUCTORS:
                    bad = f"{name}(...)"
            if bad is not None:
                out.append(source.finding(
                    "exec-escape", default,
                    f"worker {worker.name!r} (shipped to an executor) "
                    f"defaults an argument to {bad}; per-worker re-creation "
                    "diverges from the serial shared instance"))

    # seams can appear in any scope; track the stack of enclosing functions
    # so locally-bound callables are recognised wherever the seam sits
    def visit(node: ast.AST, scopes: List[ast.AST]) -> None:
        if isinstance(node, ast.Call) and _is_seam_call(node) and node.args:
            shipped = node.args[0]
            if isinstance(shipped, ast.Lambda):
                out.append(source.finding(
                    "exec-escape", shipped,
                    "lambda shipped to an executor: lambdas never pickle, "
                    "so the pooled path crashes (or silently falls back to "
                    "serial); use a module-level worker function"))
            elif isinstance(shipped, ast.Name):
                name = shipped.id
                enclosing_params = {p for scope in scopes
                                    for p in param_names(scope)}
                if name in module_defs:
                    check_defaults(module_defs[name], node)
                elif name in imported or name in enclosing_params:
                    pass  # module-level by reference / caller's choice
                elif any(name in local_callables(scope) for scope in scopes):
                    out.append(source.finding(
                        "exec-escape", shipped,
                        f"locally defined callable {name!r} shipped to an "
                        "executor: closures never pickle; hoist it to "
                        "module level"))
            elif (isinstance(shipped, ast.Attribute)
                  and isinstance(shipped.value, ast.Name)
                  and shipped.value.id in ("self", "cls")):
                out.append(source.finding(
                    "exec-escape", shipped,
                    f"bound method {ast.unparse(shipped)} shipped to an "
                    "executor: it drags the whole instance across the "
                    "process boundary; use a module-level worker"))
        next_scopes = scopes
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            next_scopes = scopes + [node]
        for child in ast.iter_child_nodes(node):
            visit(child, next_scopes)

    visit(source.tree, [])
    return iter(out)


# ---------------------------------------------------------- send-aliasing
def _program_params(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = {a.arg for a in list(args.posonlyargs) + list(args.args)
             + list(args.kwonlyargs)}
    return names & _PROGRAM_PARAMS


def _send_events(fn: ast.AST) -> List[Tuple[ast.AST, Pos]]:
    """``(payload_expr, send_position)`` pairs for every outbox value.

    Handles the CONGEST dict shape (``return {nbr: msg}``, ``out[nbr] =
    msg`` with ``out`` returned) and the MPC list shape (``return [(dest,
    msg), ...]``, ``out.append((dest, msg))``).
    """
    returned_names: Set[str] = set()
    events: List[Tuple[ast.AST, Pos]] = []

    def payload_of_pair(node: ast.AST) -> Optional[ast.AST]:
        if isinstance(node, ast.Tuple) and len(node.elts) == 2:
            return node.elts[1]
        return None

    for node in _own_body_walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        pos = _pos(node)
        if isinstance(value, ast.Name):
            returned_names.add(value.id)
        elif isinstance(value, ast.Dict):
            events.extend((v, pos) for v in value.values if v is not None)
        elif isinstance(value, ast.DictComp):
            events.append((value.value, pos))
        elif isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                payload = payload_of_pair(elt)
                if payload is not None:
                    events.append((payload, pos))
        elif isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            payload = payload_of_pair(value.elt)
            if payload is not None:
                events.append((payload, pos))

    if returned_names:
        for node in _own_body_walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in returned_names):
                        events.append((node.value, _pos(node)))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "append"
                  and isinstance(node.func.value, ast.Name)
                  and node.func.value.id in returned_names
                  and node.args):
                payload = payload_of_pair(node.args[0])
                events.append((payload if payload is not None
                               else node.args[0], _pos(node)))
    return events


def _mutation_positions(fn: ast.AST, name: str) -> List[Pos]:
    """Source positions where ``name`` is mutated in place."""
    out: List[Pos] = []
    for node in _own_body_walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name):
            out.append(_pos(node))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == name):
                    out.append(_pos(node))
                elif (isinstance(node, ast.AugAssign)
                      and isinstance(target, ast.Name)
                      and target.id == name):
                    out.append(_pos(node))
    return out


def _mutable_locals(fn: ast.AST) -> Set[str]:
    """Names bound to list/dict/set literals, comprehensions or calls."""
    out: Set[str] = set()
    for node in _own_body_walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp, ast.SetComp))
        if (not mutable and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "dict", "set")):
            mutable = True
        if mutable:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _retained_in_shared(fn: ast.AST, name: str,
                        shared: Set[str]) -> Optional[ast.AST]:
    """An assignment storing ``name`` into ``state[...]``/``inbox[...]``."""
    for node in _own_body_walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Name) and node.value.id == name):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in shared):
                return node
    return None


@rule("send-aliasing", family="parallel-safety",
      summary="MPC/CONGEST program returns a mutable payload it retains a "
              "reference to")
def check_send_aliasing(source) -> Iterator[Finding]:
    if source.tree is None or not source.in_packages("mpc", "congest"):
        return iter(())
    out: List[Finding] = []
    for fn in _iter_function_defs(source.tree):
        markers = _program_params(fn)
        if not markers:
            continue
        shared = markers & _SHARED_DICT_PARAMS
        mutable = _mutable_locals(fn)
        for payload, send_pos in _send_events(fn):
            if isinstance(payload, ast.Name) and payload.id in shared:
                out.append(source.finding(
                    "send-aliasing", payload,
                    f"outbox value is the {payload.id!r} dict itself; the "
                    "receiver would share (and see later mutations of) the "
                    "sender's own state under serial exchange"))
                continue
            base = None
            if isinstance(payload, ast.Subscript):
                base = _terminal_name(payload.value)
            elif (isinstance(payload, ast.Call)
                  and isinstance(payload.func, ast.Attribute)
                  and payload.func.attr == "get"):
                base = _terminal_name(payload.func.value)
            if base in shared:
                out.append(source.finding(
                    "send-aliasing", payload,
                    f"outbox value aliases a {base!r} entry; serial "
                    "exchange delivers the shared object, a process pool "
                    "delivers a pickled copy -- send an immutable tuple or "
                    "an explicit copy"))
                continue
            if not isinstance(payload, ast.Name):
                continue
            late = [p for p in _mutation_positions(fn, payload.id)
                    if p > send_pos]
            if late:
                out.append(source.finding(
                    "send-aliasing", payload,
                    f"{payload.id!r} is mutated at line {late[0][0]} after "
                    "being placed in the outbox; the mutation rewrites the "
                    "serially-delivered message but not the pooled one"))
                continue
            if payload.id in mutable:
                retained = _retained_in_shared(fn, payload.id, shared
                                               or _SHARED_DICT_PARAMS)
                if retained is not None:
                    out.append(source.finding(
                        "send-aliasing", payload,
                        f"mutable local {payload.id!r} is both sent and "
                        f"retained in shared state (line "
                        f"{_pos(retained)[0]}); a later mutation through "
                        "the retained reference rewrites the delivered "
                        "message under serial exchange"))
    return iter(out)


# ------------------------------------------------------------ global-write
@rule("global-write", family="parallel-safety",
      summary="function reachable from a pool worker writes module-level "
              "state")
def check_global_write(source) -> Iterator[Finding]:
    if source.tree is None:
        return iter(())
    out: List[Finding] = []
    module_defs: Dict[str, ast.FunctionDef] = {}
    module_bindings: Set[str] = set()
    for stmt in source.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_defs[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            module_bindings.add(stmt.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    module_bindings.add(target.id)
        elif isinstance(stmt, ast.Import):
            module_bindings.update(a.asname or a.name.split(".")[0]
                                   for a in stmt.names)
        elif isinstance(stmt, ast.ImportFrom):
            module_bindings.update(a.asname or a.name for a in stmt.names)

    # roots: conventionally-named workers + anything shipped at a seam here
    roots = {name for name in module_defs if _WORKER_NAME.match(name)}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and _is_seam_call(node) and node.args:
            shipped = node.args[0]
            if isinstance(shipped, ast.Name) and shipped.id in module_defs:
                roots.add(shipped.id)
    if not roots:
        return iter(())

    # same-module call closure, mirroring memo_contracts' fixpoint
    calls = {name: {_terminal_name(n.func)
                    for n in _own_body_walk(fn) if isinstance(n, ast.Call)
                    if isinstance(n.func, ast.Name)} & set(module_defs)
             for name, fn in module_defs.items()}
    reachable = set(roots)
    frontier = list(roots)
    while frontier:
        for callee in calls[frontier.pop()]:
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)

    for name in sorted(reachable):
        fn = module_defs[name]
        locals_here: Set[str] = set()
        for node in _own_body_walk(fn):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                locals_here.update(a.asname or a.name.split(".")[0]
                                   for a in node.names)
        args = fn.args
        locals_here.update(a.arg for a in list(args.posonlyargs)
                           + list(args.args) + list(args.kwonlyargs))
        declared_global: Set[str] = set()
        for node in _own_body_walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign) and not isinstance(
                    node, ast.AugAssign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locals_here.add(target.id)
        for node in _own_body_walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id in declared_global):
                        out.append(source.finding(
                            "global-write", node,
                            f"pool-reachable {name!r} assigns module global "
                            f"{target.id!r}; worker-side writes never "
                            "propagate back to the parent process"))
                    elif (isinstance(target, (ast.Attribute, ast.Subscript))
                          and isinstance(target.value, ast.Name)
                          and target.value.id in module_bindings
                          and target.value.id not in locals_here):
                        out.append(source.finding(
                            "global-write", node,
                            f"pool-reachable {name!r} writes "
                            f"{ast.unparse(target)}: {target.value.id!r} is "
                            "a module-level binding, so the write is lost "
                            "in pooled execution"))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATING_METHODS
                  and isinstance(node.func.value, ast.Name)
                  and node.func.value.id in module_bindings
                  and node.func.value.id not in locals_here):
                out.append(source.finding(
                    "global-write", node,
                    f"pool-reachable {name!r} mutates module-level "
                    f"{node.func.value.id!r} in place "
                    f"(.{node.func.attr}()); the mutation is worker-local "
                    "under pooled execution"))
    return iter(out)
