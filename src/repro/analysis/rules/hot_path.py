"""Rule ``hot-path-alloc``: O(n) constructs inside ``@hot_path`` functions.

The dynamic maintainers' per-update path (``note_update``, the
``MirroredMatching`` hooks, ``FullyDynamicMatching.update``) promises O(1)
amortized work per update; the latency gate in ``tests/test_bench.py``
enforces the *consequence* (a bounded p99), but only after a regression has
already shipped.  This rule enforces the *cause* at lint time: a function
declared :func:`repro.utils.contracts.hot_path` must not

* materialize an argument with ``list(...)``/``dict(...)``/``set(...)``
  (empty-constructor calls are fine -- they are O(1)),
* run a Python-level ``for`` loop (or comprehension) over something that
  looks like a NumPy array (``*_arr``/``*_array`` names, direct ``np.*``
  call results), or
* allocate per call via ``np.asarray``/``np.array``/``np.zeros``/
  ``np.ones``/``np.empty``/``np.full``/``np.arange``/``np.fromiter``.

Only the decorated function's own body is checked (callees are the
decorated function's responsibility to declare); a justified pragma marks
the intentional exceptions, e.g. a bounded materialization of an iterable
consumed twice.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_ARRAY_NAME = re.compile(r"(^|_)(arr|array)s?$")
_NP_BASES = ("np", "numpy")
_NP_ALLOCATORS = frozenset({
    "asarray", "array", "zeros", "ones", "empty", "full", "arange",
    "fromiter",
})
_MATERIALIZERS = ("list", "dict", "set")


def _has_hot_path_decorator(fn: ast.AST) -> bool:
    for deco in getattr(fn, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute)
                else None)
        if name == "hot_path":
            return True
    return False


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _looks_like_array(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is not None and _ARRAY_NAME.search(name):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NP_BASES):
            return True
    return False


def _check_body(source, fn: ast.AST, out: List[Finding]) -> None:
    label = f"@hot_path {getattr(fn, 'name', '<lambda>')!r}"
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in _MATERIALIZERS
                    and (node.args or node.keywords)):
                out.append(source.finding(
                    "hot-path-alloc", node,
                    f"{label} materializes an argument with "
                    f"{func.id}(...): O(len) work and allocation on the "
                    "per-update path"))
            elif (isinstance(func, ast.Attribute)
                  and func.attr in _NP_ALLOCATORS
                  and isinstance(func.value, ast.Name)
                  and func.value.id in _NP_BASES):
                out.append(source.finding(
                    "hot-path-alloc", node,
                    f"{label} allocates per call via "
                    f"{func.value.id}.{func.attr}(...); hoist the buffer "
                    "out of the update path"))
        elif isinstance(node, ast.For) and _looks_like_array(node.iter):
            out.append(source.finding(
                "hot-path-alloc", node,
                f"{label} runs a Python-level for loop over a NumPy "
                "array; use a vectorized operation"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                if _looks_like_array(comp.iter):
                    out.append(source.finding(
                        "hot-path-alloc", node,
                        f"{label} iterates a NumPy array in a "
                        "comprehension; use a vectorized operation"))


@rule("hot-path-alloc", family="parallel-safety",
      summary="@hot_path function contains an O(n) alloc/loop construct")
def check_hot_path_alloc(source) -> Iterator[Finding]:
    if source.tree is None:
        return iter(())
    out: List[Finding] = []
    for node in ast.walk(source.tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _has_hot_path_decorator(node)):
            _check_body(source, node, out)
    return iter(out)
