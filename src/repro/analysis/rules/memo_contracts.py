"""Rule family ``memo-contract``: declared memo invalidation on mutators.

Backends and graph containers memoise compiled views (``neighbor_list``
slices, ``csr_arrays``, frozen edge arrays); a mutator that forgets to mark
them stale serves stale reads -- the PR 4 smoke regression, later pinned at
runtime by a hypothesis property test (PR 6).  The runtime test is the
completeness oracle; this rule is the mechanical gate.

Classes opt in by decorating mutators with
:func:`repro.utils.contracts.invalidates`, naming the guard attributes the
method must write.  Two checks per opted-in class:

* ``memo-invalidation-missing`` -- a declared mutator whose body never
  assigns a declared attribute, directly or through another method of the
  same class (computed as a call-graph fixpoint, so ``insert()`` delegating
  to ``apply()`` counts);
* ``memo-mutator-undeclared`` -- a method whose name matches the mutator
  pattern (``add_*``/``remove_*``/``delete_*``/``insert_*``/``apply*``/
  ``clear*``/``update*``) but carries no declaration.  New mutation APIs
  cannot silently skip the contract.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_MUTATOR_NAME = re.compile(
    r"^(add|remove|delete|insert|apply|clear|update)(_|$)")


def _declared_attrs(fn: ast.FunctionDef) -> Optional[Tuple[str, ...]]:
    """The ``@invalidates(...)`` declaration of a method, if present."""
    for deco in fn.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "invalidates":
            continue
        attrs = []
        for arg in deco.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                attrs.append(arg.value)
        return tuple(attrs)
    return None


def _direct_writes(fn: ast.FunctionDef) -> Set[str]:
    """``self.<attr>`` names this method assigns or mutates in place."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    out.add(target.attr)
        elif isinstance(node, ast.Call):
            func = node.func
            # self.<attr>.clear() / .update() / .pop() etc. mutate the memo
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"):
                out.add(func.value.attr)
    return out


def _self_calls(fn: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            out.add(node.func.attr)
    return out


def _effective_writes(methods: Dict[str, ast.FunctionDef]) -> Dict[str, Set[str]]:
    """Per-method write sets, closed over same-class ``self.m()`` calls."""
    writes = {name: _direct_writes(fn) for name, fn in methods.items()}
    calls = {name: _self_calls(fn) & set(methods)
             for name, fn in methods.items()}
    changed = True
    while changed:
        changed = False
        for name in methods:
            merged = set(writes[name])
            for callee in calls[name]:
                merged |= writes[callee]
            if merged != writes[name]:
                writes[name] = merged
                changed = True
    return writes


@rule("memo-invalidation-missing", family="memo-contract",
      summary="declared mutator never writes its declared memo guard")
def check_memo_invalidation(source) -> Iterator[Finding]:
    return _run_memo_checker(source)


@rule("memo-mutator-undeclared", family="memo-contract",
      summary="mutator-named method without an @invalidates declaration on "
              "an opted-in class")
def check_memo_mutators(source) -> Iterator[Finding]:
    return iter(())  # reported by the shared memo checker under its own id


def _run_memo_checker(source) -> Iterator[Finding]:
    if source.tree is None:
        return iter(())
    out: List[Finding] = []
    for klass in ast.walk(source.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        methods = {stmt.name: stmt for stmt in klass.body
                   if isinstance(stmt, ast.FunctionDef)}
        declarations = {name: attrs for name, fn in methods.items()
                        if (attrs := _declared_attrs(fn)) is not None}
        if not declarations:
            continue  # class has not opted into the contract
        writes = _effective_writes(methods)
        for name, attrs in declarations.items():
            missing = [attr for attr in attrs if attr not in writes[name]]
            if missing:
                out.append(source.finding(
                    "memo-invalidation-missing", methods[name],
                    f"{klass.name}.{name} declares @invalidates"
                    f"({', '.join(map(repr, attrs))}) but never writes "
                    f"{', '.join(missing)} (directly or via a method it "
                    "calls) -- memoised views go stale"))
        for name, fn in methods.items():
            if name in declarations or name.startswith("__"):
                continue
            if _MUTATOR_NAME.match(name):
                out.append(source.finding(
                    "memo-mutator-undeclared", fn,
                    f"{klass.name}.{name} looks like a mutator but has no "
                    "@invalidates declaration; declare what it invalidates "
                    "(or pragma why it mutates nothing memoised)"))
    return iter(out)
