"""Runtime determinism sanitizer: hash-seed and worker-count invariance.

The static rules catch the *patterns* that caused past nondeterminism; this
module checks the *property* itself.  It runs one seeded smoke scenario
through ``python -m repro.bench run`` several times -- varying only
``PYTHONHASHSEED`` on one axis and ``--jobs`` on the other -- and demands
byte-identical BENCH records once the honest wall-clock fields are dropped.

Each axis is isolated against the same baseline run (hashseed "0",
``--jobs 1``): a failure therefore names which axis broke, which is the
first question anyone debugging a determinism regression asks.  The repo's
tier-1 smoke gate runs this via :mod:`tests.test_bench`; ``python -m
repro.analysis sanitize`` runs it standalone.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import find_repo_root

#: scenario exercised by default: sweeps both graph backends and the full
#: dynamic stack (maintainer, epochs, oracle), so it covers the most code
#: per second of smoke budget
DEFAULT_SCENARIO = "table2_dynamic"

#: top-level record fields that honestly differ between runs
_VOLATILE_KEYS = ("wall_s", "timestamp")
#: counter suffixes that carry wall-clock measurements (latency scenarios)
_VOLATILE_COUNTER_SUFFIXES = ("_s", "_ms", "_seconds")


def normalize_record(record: Dict[str, object]) -> Dict[str, object]:
    """A BENCH record minus every field allowed to differ between runs."""
    out = {k: v for k, v in record.items() if k not in _VOLATILE_KEYS}
    counters = out.get("counters")
    if isinstance(counters, dict):
        out["counters"] = {
            k: v for k, v in counters.items()
            if not any(k.endswith(sfx) for sfx in _VOLATILE_COUNTER_SUFFIXES)}
    return out


def canonical_bytes(records: Sequence[Dict[str, object]]) -> bytes:
    """Canonical JSON encoding of normalized records (the compared value)."""
    normalized = [normalize_record(r) for r in records]
    return json.dumps(normalized, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class SanitizerRun:
    """One subprocess invocation of the bench harness."""

    hashseed: str
    jobs: int

    @property
    def label(self) -> str:
        return f"PYTHONHASHSEED={self.hashseed} --jobs {self.jobs}"


@dataclass
class SanitizerResult:
    scenario: str
    seed: int
    baseline: SanitizerRun = SanitizerRun("0", 1)
    failures: List[str] = field(default_factory=list)
    compared: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"determinism sanitizer: scenario={self.scenario} "
                 f"seed={self.seed} baseline [{self.baseline.label}]"]
        for label in self.compared:
            lines.append(f"  identical vs [{label}]")
        for failure in self.failures:
            lines.append(f"  MISMATCH {failure}")
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)


def _first_diff(a: Sequence[Dict[str, object]],
                b: Sequence[Dict[str, object]]) -> str:
    """A short human description of where two record lists diverge."""
    if len(a) != len(b):
        return f"record count {len(a)} != {len(b)}"
    for idx, (ra, rb) in enumerate(zip(a, b)):
        na, nb = normalize_record(ra), normalize_record(rb)
        if na == nb:
            continue
        keys = sorted(set(na) | set(nb))
        for key in keys:
            if na.get(key) != nb.get(key):
                return (f"record {idx} field {key!r}: "
                        f"{na.get(key)!r} != {nb.get(key)!r}")
    return "unknown divergence"


def run_bench_once(scenario: str, *, hashseed: str, jobs: int, seed: int,
                   repo_root: Optional[Path] = None,
                   timeout: float = 600.0) -> List[Dict[str, object]]:
    """Run the scenario in a subprocess and return its BENCH records."""
    root = Path(repo_root) if repo_root is not None else find_repo_root()
    src = root / "src"
    with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["REPRO_BENCH_OUT"] = tmp
        env["PYTHONPATH"] = (str(src) + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else str(src))
        cmd = [sys.executable, "-m", "repro.bench", "run",
               "--scenario", scenario, "--smoke",
               "--seed", str(seed), "--jobs", str(jobs)]
        proc = subprocess.run(cmd, cwd=str(root), env=env,
                              capture_output=True, text=True, timeout=timeout)
        if proc.returncode != 0:
            raise RuntimeError(
                f"bench run failed (PYTHONHASHSEED={hashseed}, "
                f"--jobs {jobs}): rc={proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        out_file = Path(tmp) / f"BENCH_{scenario}.json"
        if not out_file.exists():
            raise RuntimeError(f"bench run produced no {out_file.name}; "
                               f"files: {sorted(os.listdir(tmp))}")
        payload = json.loads(out_file.read_text(encoding="utf-8"))
    records = payload if isinstance(payload, list) else payload["records"]
    return list(records)


def run_sanitizer(scenario: str = DEFAULT_SCENARIO, *, seed: int = 0,
                  alt_hashseed: str = "1", alt_jobs: int = 2,
                  repo_root: Optional[Path] = None,
                  timeout: float = 600.0) -> SanitizerResult:
    """Baseline run plus one variant per axis; byte-compare each pair."""
    baseline_run = SanitizerRun("0", 1)
    variants = [SanitizerRun(alt_hashseed, 1),   # hash-seed axis
                SanitizerRun("0", alt_jobs)]     # worker-count axis
    result = SanitizerResult(scenario=scenario, seed=seed,
                             baseline=baseline_run)
    base_records = run_bench_once(scenario, hashseed=baseline_run.hashseed,
                                  jobs=baseline_run.jobs, seed=seed,
                                  repo_root=repo_root, timeout=timeout)
    base_bytes = canonical_bytes(base_records)
    for variant in variants:
        records = run_bench_once(scenario, hashseed=variant.hashseed,
                                 jobs=variant.jobs, seed=seed,
                                 repo_root=repo_root, timeout=timeout)
        if canonical_bytes(records) == base_bytes:
            result.compared.append(variant.label)
        else:
            result.failures.append(
                f"[{variant.label}]: {_first_diff(base_records, records)}")
    return result


def compare_record_sets(a: Sequence[Dict[str, object]],
                        b: Sequence[Dict[str, object]]) -> Tuple[bool, str]:
    """Byte-compare two record lists; (ok, first-diff description)."""
    if canonical_bytes(a) == canonical_bytes(b):
        return True, ""
    return False, _first_diff(a, b)
