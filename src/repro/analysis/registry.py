"""The rule registry.

A rule is a callable over one parsed source file yielding findings; it
declares an id (what pragmas and baselines reference), a family (pragmas can
suppress a whole family) and a one-line summary (``--list-rules``).
Registration happens at import time via the :func:`rule` decorator;
``repro.analysis.rules`` imports every rule module so the registry is
complete after one ``load_rules()`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.findings import Finding


@dataclass(frozen=True)
class Rule:
    id: str
    family: str
    summary: str
    check: Callable[["SourceFile"], Iterable[Finding]]  # noqa: F821


_RULES: Dict[str, Rule] = {}


def rule(rule_id: str, family: str, summary: str):
    """Register a checker function under ``rule_id``."""

    def decorate(fn: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _RULES[rule_id] = Rule(id=rule_id, family=family, summary=summary,
                               check=fn)
        return fn

    return decorate


def load_rules() -> None:
    """Import the rule modules (idempotent) so every rule is registered."""
    from repro.analysis import rules  # noqa: F401  (import registers)


def all_rules() -> List[Rule]:
    load_rules()
    return [_RULES[key] for key in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    load_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; "
                       f"known: {sorted(_RULES)}") from None


def family_of(rule_id: str) -> Optional[str]:
    load_rules()
    entry = _RULES.get(rule_id)
    return entry.family if entry else None


def known_suppression_targets() -> List[str]:
    """Every token a pragma may list: rule ids and family names."""
    load_rules()
    out = set(_RULES)
    out.update(r.family for r in _RULES.values())
    return sorted(out)
