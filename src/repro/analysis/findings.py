"""Finding model, fingerprints and the text/JSON reporters.

A finding is one rule violation at one source location.  Its *fingerprint*
deliberately excludes the line number: baselines must survive unrelated edits
above a grandfathered finding, so the identity is ``(rule, path, normalized
source line, occurrence index among identical lines)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Sequence

#: bump when the report JSON layout changes incompatibly
REPORT_VERSION = 1

FINDING_KEYS = ("rule", "path", "line", "col", "message", "context",
                "fingerprint", "suppressed", "baselined")


def normalize_context(line: str) -> str:
    """Whitespace-collapsed source line (the fingerprint's stable core)."""
    return " ".join(line.split())


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str          # rule id, e.g. "set-iteration"
    path: str          # posix path as reported (repo-relative when possible)
    line: int          # 1-based
    col: int           # 0-based, as ast reports
    message: str
    context: str = ""  # stripped source line
    occurrence: int = 0  # index among identical (rule, path, context) triples
    suppressed: bool = False  # a valid pragma covers it
    baselined: bool = False   # grandfathered by the committed baseline

    @property
    def fingerprint(self) -> str:
        payload = "\x1f".join((self.rule, self.path,
                               normalize_context(self.context),
                               str(self.occurrence)))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def is_new(self) -> bool:
        """Counts against ``--check`` (neither suppressed nor baselined)."""
        return not (self.suppressed or self.baselined)

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "context": self.context, "fingerprint": self.fingerprint,
                "suppressed": self.suppressed, "baselined": self.baselined}


def assign_occurrences(findings: Sequence[Finding]) -> List[Finding]:
    """Number repeated (rule, path, context) triples so fingerprints stay
    unique when one line (or identical lines) violates a rule repeatedly."""
    seen: Dict[tuple, int] = {}
    out: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, normalize_context(f.context))
        idx = seen.get(key, 0)
        seen[key] = idx + 1
        out.append(replace(f, occurrence=idx))
    return out


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: reported (repo-relative) paths of the scanned files; subset runs
    #: (``--paths`` / ``--changed``) use it to restrict the stale-baseline
    #: check to entries the run could actually have re-observed.  Not part
    #: of the serialized report schema.
    paths_scanned: List[str] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.is_new]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def baselined_count(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "new": len(self.new_findings),
                "suppressed": self.suppressed_count,
                "baselined": self.baselined_count,
            },
        }


def render_text(report: Report, verbose_suppressed: bool = False) -> str:
    """Human-readable report: one location line + the offending source."""
    out: List[str] = []
    for f in report.findings:
        if not f.is_new and not verbose_suppressed:
            continue
        tag = ""
        if f.suppressed:
            tag = " [suppressed]"
        elif f.baselined:
            tag = " [baselined]"
        out.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule}: "
                   f"{f.message}{tag}")
        if f.context:
            out.append(f"    {f.context}")
    summary = (f"{len(report.new_findings)} finding(s) "
               f"({report.suppressed_count} suppressed, "
               f"{report.baselined_count} baselined) "
               f"in {report.files_scanned} file(s)")
    out.append(summary)
    return "\n".join(out)


def render_json(report: Report) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"


def validate_report(payload: Mapping[str, object]) -> Mapping[str, object]:
    """Check a parsed JSON report against the schema; returns it unchanged."""
    if not isinstance(payload, Mapping):
        raise ValueError("report must be a JSON object")
    for key in ("version", "files_scanned", "findings", "summary"):
        if key not in payload:
            raise ValueError(f"report is missing key {key!r}")
    if payload["version"] != REPORT_VERSION:
        raise ValueError(f"unsupported report version {payload['version']!r}")
    findings = payload["findings"]
    if not isinstance(findings, list):
        raise ValueError("report 'findings' must be a list")
    for entry in findings:
        missing = [k for k in FINDING_KEYS if k not in entry]
        if missing:
            raise ValueError(f"finding is missing keys {missing}: "
                             f"{sorted(entry)}")
    return payload


def findings_from_report(payload: Mapping[str, object]) -> List[Finding]:
    """Rebuild :class:`Finding` objects from a validated JSON report."""
    validate_report(payload)
    out = []
    for entry in payload["findings"]:  # type: ignore[index]
        out.append(Finding(rule=entry["rule"], path=entry["path"],
                           line=entry["line"], col=entry["col"],
                           message=entry["message"],
                           context=entry["context"],
                           suppressed=entry["suppressed"],
                           baselined=entry["baselined"]))
    return out
