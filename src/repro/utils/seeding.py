"""One seed-derivation convention for the whole repository.

Every module that draws randomness used to carry its own ``_rng(seed)``
helper, and the modules that needed *independent* streams (e.g. the planted
churn workload, whose graph noise must not perturb which planted edges get
churned) each re-implemented the same derivation dance.  This module is the
single definition:

* :func:`rng` -- the root stream: ``random.Random(seed)``, bit-for-bit what
  the per-module helpers produced.
* :func:`derived_seeds` / :func:`derived_rngs` -- *named substreams*: child
  seeds drawn from the root in the order the names are given, so
  ``derived_seeds(seed, "graph", "churn")`` reproduces the historical

      root = random.Random(seed)
      graph_seed = root.randrange(2 ** 63)
      churn_seed = root.randrange(2 ** 63)

  draw sequence exactly.  Substreams are deterministic in ``(seed, position)``;
  the names document which consumer owns which draw and make call sites
  self-checking (asking for the same substreams in a different order is a
  *different* derivation, visible in review).

Seeded outputs everywhere in the repo are pinned by tests; this module must
never change its draw sequence.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

#: Child seeds are drawn uniformly from ``[0, 2**63)`` -- the historical
#: convention of the workload generators (kept so existing seeded outputs
#: are preserved).
_CHILD_SEED_BOUND = 2 ** 63


def rng(seed: Optional[int]) -> random.Random:
    """The root RNG for ``seed`` (``None`` seeds from the OS, as ever)."""
    return random.Random(seed)


def derived_seeds(seed: Optional[int], *names: str) -> Dict[str, int]:
    """Derive one child seed per name, drawn from the root in name order.

    The result maps each name to an independent child seed; two substreams
    derived from the same root never share state, and adding a name at the
    *end* of the list never perturbs the seeds of the earlier names.
    """
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate substream names: {names}")
    root = rng(seed)
    return {name: root.randrange(_CHILD_SEED_BOUND) for name in names}


def derived_rngs(seed: Optional[int], *names: str) -> Dict[str, random.Random]:
    """Like :func:`derived_seeds` but instantiates the child streams."""
    return {name: random.Random(child)
            for name, child in derived_seeds(seed, *names).items()}
