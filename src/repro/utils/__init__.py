"""Small shared utilities with no dependency on the algorithm layers."""

from repro.utils.seeding import derived_rngs, derived_seeds, rng

__all__ = ["derived_rngs", "derived_seeds", "rng"]
