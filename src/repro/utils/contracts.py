"""Declared runtime contracts that the static analyzer reads.

The memo-invalidation bug class (a mutating method that forgets to mark a
compiled/cached view stale) has been caught twice at runtime: the PR 4 smoke
regression (``CSRBackend.neighbor_list`` memo) and the PR 6 hypothesis
property test over every CSR mutation API.  The hypothesis test is a good
*oracle* but a bad *gate*: it only exercises the mutators someone remembered
to list in its script.

This module turns that knowledge into a declaration the static checker can
enforce: a mutating method is decorated with :func:`invalidates`, naming the
instance attributes it must write (the dirty flag / counters guarding the
memoised views).  ``repro.analysis`` (rule family ``memo-contract``) then
checks, purely from the AST, that

* every decorated method really assigns each declared attribute (directly or
  via another method of the same class), and
* once a class declares any mutator, every other method whose name looks like
  a mutator (``add_*``, ``remove_*``, ``delete_*``, ``insert_*``, ``apply*``,
  ``clear*``) is declared too -- new mutation APIs cannot silently skip the
  contract.

The decorator is zero-cost at runtime (it only tags the function); the
runtime registry below exists so tests can assert the declarations are
*complete* against behaviour (the hypothesis test remains the oracle).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

#: attribute set on decorated functions; the AST checker matches the
#: decorator by name, the runtime registry by this attribute
_MARKER = "__invalidates__"

#: attribute set by :func:`hot_path`; same split as above -- the AST rule
#: (``hot-path-alloc``) matches the decorator by name, the runtime registry
#: reads the attribute
_HOT_MARKER = "__hot_path__"


def hot_path(fn: Callable) -> Callable:
    """Declare that this function runs on a per-update latency budget.

    The dynamic maintainers promise O(1) (amortized poly(1/eps)) work per
    update; one stray ``list(...)`` materialization or per-call NumPy
    allocation silently turns that into O(n) and shows up as a latency-gate
    regression long after the offending commit.  Marking the update-path
    functions with ``@hot_path`` lets the static checker (rule
    ``hot-path-alloc``) reject O(n) constructs -- ``list``/``dict``/``set``
    materialization of arguments, Python-level loops over NumPy arrays,
    per-call ``np.asarray``/``np.zeros``-style allocations -- at lint time.

    Zero-cost at runtime (only tags the function); must be the *innermost*
    decorator so the tag lands on the actual function object.
    """
    setattr(fn, _HOT_MARKER, True)
    return fn


def is_hot_path(fn: Callable) -> bool:
    """Whether ``fn`` (or its ``__func__``) carries the :func:`hot_path` tag."""
    return bool(getattr(getattr(fn, "__func__", fn), _HOT_MARKER, False))


def declared_hot_paths(cls: type) -> Tuple[str, ...]:
    """Sorted method names of ``cls`` (incl. bases) declared :func:`hot_path`.

    The completeness counterpart of :func:`declared_mutators`: the latency
    tests iterate this registry so a newly-declared hot path cannot silently
    miss behavioural coverage.
    """
    out = set()
    for klass in cls.__mro__:
        for name, member in vars(klass).items():
            fn = getattr(member, "__func__", member)  # un-wrap staticmethod &c.
            if getattr(fn, _HOT_MARKER, False):
                out.add(name)
    return tuple(sorted(out))


def invalidates(*attrs: str) -> Callable:
    """Declare that this mutating method invalidates the named attributes.

    ``attrs`` are instance-attribute names (e.g. ``"_dirty"``) that guard the
    class's memoised views; the static checker verifies the method body
    assigns every one of them.  Must be the *innermost* decorator so the tag
    lands on the actual function object.
    """
    if not attrs:
        raise ValueError("invalidates() needs at least one attribute name")
    for attr in attrs:
        if not isinstance(attr, str) or not attr:
            raise ValueError(f"attribute names must be non-empty strings, "
                             f"got {attr!r}")

    def decorate(fn: Callable) -> Callable:
        setattr(fn, _MARKER, tuple(attrs))
        return fn

    return decorate


def declared_mutators(cls: type) -> Dict[str, Tuple[str, ...]]:
    """All :func:`invalidates`-declared mutators of ``cls`` (incl. bases).

    Maps method name to the declared attribute tuple; subclass declarations
    shadow base-class ones.  This is the registry the completeness tests
    iterate: every mutation API a behavioural test exercises must appear
    here, and vice versa.
    """
    out: Dict[str, Tuple[str, ...]] = {}
    for klass in reversed(cls.__mro__):
        for name, member in vars(klass).items():
            fn = getattr(member, "__func__", member)  # un-wrap staticmethod &c.
            declared = getattr(fn, _MARKER, None)
            if declared is not None:
                out[name] = declared
    return out
