"""An [FMU22]-style simulation schedule, the Table 1 comparator.

[FMU22] introduced the framework this paper refines.  The two refinements that
produce the Table 1 improvement are:

1. the observation that the maximum matching size of the derived graphs decays
   *exponentially* across iterations, so O(log 1/eps) oracle iterations per
   procedure suffice where [FMU22] budgeted poly(1/eps); and
2. partitioning the Overtake arcs into ``l_max ~ 1/eps`` label classes
   (stages), each of which enjoys the exponential decay, where [FMU22]
   simulated all of them together with a poly(1/eps) budget.

:class:`FMU22Driver` therefore re-uses the exact same structure machinery but
(1) runs poly(1/eps) oracle iterations per procedure and (2) builds a single
derived graph over *all* type-3 arcs instead of per-stage graphs.  This keeps
the comparison apples-to-apples: the only difference between the two data
points in the Table 1 benchmark is the schedule the paper improves.

The literal [FMU22] call count (``O(1/eps^52)`` in MPC) is exposed through
:func:`fmu22_scheduled_calls` for the accounting columns.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.boosting import BoostingFramework, OracleDriver, build_structure_graph
from repro.core.oracles import GreedyMatchingOracle, MatchingOracle
from repro.core.operations import apply_augmentations, augment_op, overtake_op
from repro.core.phase import contract_pass, run_phase
from repro.core.structures import PhaseState, StructNode

Edge = Tuple[int, int]


def fmu22_scheduled_calls(eps: float, setting: str = "mpc") -> float:
    """The oracle-call schedules quoted in Table 1 for the prior frameworks."""
    if setting == "mpc":
        return (1.0 / eps) ** 52
    if setting == "congest":
        return (1.0 / eps) ** 63
    if setting == "mpc+mmss25":
        return (1.0 / eps) ** 39
    if setting == "congest+mmss25":
        return (1.0 / eps) ** 42
    raise ValueError(f"unknown setting {setting!r}")


def _build_all_type3_graph(state: PhaseState) -> Tuple[Graph, Dict[Edge, Edge], int]:
    """One bipartite derived graph over *all* type-3 arcs (no stage split)."""
    left_nodes: List[StructNode] = []
    for structure in state.live_structures():
        w = structure.working
        if w is None or structure.on_hold or structure.extended:
            continue
        left_nodes.append(w)
    right_vertices = [v for v in range(state.graph.n)
                      if not state.removed[v]
                      and state.matching.is_matched(v)
                      and (state.node_of[v] is None or not state.node_of[v].outer)]
    left_index = {id(node): i for i, node in enumerate(left_nodes)}
    right_index = {v: len(left_nodes) + i for i, v in enumerate(right_vertices)}
    derived = Graph(len(left_nodes) + len(right_vertices))
    witness: Dict[Edge, Edge] = {}
    right_set = set(right_vertices)
    for node in left_nodes:
        i = left_index[id(node)]
        for x in node.vertices:
            for y in state.graph.neighbor_list(x):
                if y in right_set and state.arc_type(x, y) == 3:
                    key = (i, right_index[y])
                    if derived.add_edge(*key):
                        witness[key] = (x, y)
    return derived, witness, len(left_nodes)


class FMU22Driver(OracleDriver):
    """The unrefined simulation schedule: poly(1/eps) iterations, no stages."""

    def __init__(self, oracle: MatchingOracle, profile: ParameterProfile,
                 rng: Optional[random.Random] = None,
                 iteration_exponent: float = 2.0) -> None:
        super().__init__(oracle, profile, rng=rng)
        # poly(1/eps) iterations per procedure (capped for execution; the
        # uncapped formula is what fmu22_scheduled_calls reports)
        self.poly_iterations = max(
            2, min(512, int(math.ceil((1.0 / profile.eps) ** iteration_exponent))))

    def extend_active_path(self, state: PhaseState) -> None:
        for _it in range(self.poly_iterations):
            derived, witness, num_left = _build_all_type3_graph(state)
            if derived.m == 0:
                break
            state.counters.add("iterations")
            matched = self.oracle.find_matching(derived)
            performed = 0
            for a, b in matched:
                key = (a, b) if a < num_left else (b, a)
                if key not in witness:
                    continue
                x, y = witness[key]
                nu = state.omega(x)
                if state.arc_type(x, y) == 3 and nu is not None:
                    overtake_op(state, x, y, state.distance(nu) + 1)
                    performed += 1
            if performed == 0:
                break

    def contract_and_augment(self, state: PhaseState) -> None:
        contract_pass(state)
        for _it in range(self.poly_iterations):
            hprime, witness = build_structure_graph(state)
            if hprime.m == 0:
                break
            state.counters.add("iterations")
            matched = self.oracle.find_matching(hprime)
            performed = 0
            for a, b in matched:
                key = (a, b) if a < b else (b, a)
                if key not in witness:
                    continue
                u, v = witness[key]
                if state.arc_type(u, v) == 2:
                    augment_op(state, u, v)
                    performed += 1
            if performed == 0:
                break
        contract_pass(state)


def fmu22_boost(graph: Graph, eps: float,
                oracle: Optional[MatchingOracle] = None,
                profile: Optional[ParameterProfile] = None,
                counters: Optional[Counters] = None,
                seed: Optional[int] = None) -> Matching:
    """Run the [FMU22]-style schedule end to end (same outer loop, old driver)."""
    framework = BoostingFramework(eps, oracle=oracle, profile=profile,
                                  counters=counters, seed=seed)
    matching = framework.initial_matching(graph)
    driver = FMU22Driver(framework.oracle, framework.profile, rng=framework.rng)
    for h in framework.profile.scales:
        for _t in range(framework.profile.phases(h)):
            framework.counters.add("phases")
            records = run_phase(graph, matching, framework.profile, h, driver,
                                counters=framework.counters)
            gained = apply_augmentations(matching, records)
            framework.counters.add("matching_gain", gained)
            if framework.profile.early_exit and gained == 0:
                break
    return matching
