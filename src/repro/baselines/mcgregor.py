"""A McGregor-style layered boosting framework ([McG05]), the exponential
comparator.

McGregor's semi-streaming algorithm repeatedly finds vertex-disjoint
augmenting paths of length up to ``2k + 1`` (with ``k ~ 1/eps``) by growing
*layered* path collections: in each repetition, path heads are matched against
unused matched edges layer by layer, each layer using one invocation of a
Theta(1)-approximate matching oracle.  Because a repetition only succeeds with
probability exponentially small in ``k``, the framework schedules
``(1/eps)^{Theta(1/eps)}`` repetitions -- the exponential dependence this
paper's framework removes.

This reproduction implements the layered repetition faithfully but *caps* the
executed repetitions (running the literal schedule is impossible for any
eps < 1/4); the scheduled count is exposed via
:func:`mcgregor_scheduled_calls` so that the Table 2 benchmark can report both
the theoretical schedule (exponential) and the measured executed calls.
Blossoms are not handled inside a repetition (McGregor's general-graph version
pays extra repetitions for that instead), so on non-bipartite inputs the
capped baseline may also stop short of (1+eps) -- which is exactly the
qualitative behaviour being compared against.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.matching.greedy import greedy_maximal_matching
from repro.instrumentation.counters import Counters
from repro.core.oracles import GreedyMatchingOracle, MatchingOracle, ensure_counting

Edge = Tuple[int, int]


def mcgregor_scheduled_calls(eps: float) -> float:
    """The oracle-call schedule of [McG05]: ``(1/eps)^{Theta(1/eps)}``."""
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    k = math.ceil(1.0 / eps)
    return float(k) ** k


def _layered_repetition(graph: Graph, matching: Matching, k: int,
                        oracle: MatchingOracle, rng: random.Random) -> List[List[int]]:
    """One layered repetition: grow alternating paths from free vertices and
    return the vertex-disjoint augmenting paths completed."""
    free = matching.free_vertices()
    rng.shuffle(free)
    # each sampled free vertex starts a path; the head is its last vertex
    starters = [alpha for alpha in free if rng.random() < 0.5]
    used: Set[int] = set(starters)
    paths: Dict[int, List[int]] = {alpha: [alpha] for alpha in starters}
    completed: List[List[int]] = []
    free_set = set(free)

    for _layer in range(k):
        if not paths:
            break
        heads = {paths[alpha][-1]: alpha for alpha in paths}
        # try to finish paths first: head adjacent to an unused free vertex
        for head, alpha in list(heads.items()):
            for w in graph.neighbors(head):
                if w in free_set and w not in used and not matching.contains_edge(head, w):
                    path = paths.pop(alpha) + [w]
                    used.add(w)
                    completed.append(path)
                    heads.pop(head, None)
                    break
        if not paths:
            break
        # layer graph: heads on the left, unused matched vertices on the right
        heads = {paths[alpha][-1]: alpha for alpha in paths}
        head_list = list(heads.keys())
        right_candidates = [v for v in range(graph.n)
                            if matching.is_matched(v) and v not in used
                            and matching.mate(v) not in used]
        right_index = {v: len(head_list) + i for i, v in enumerate(right_candidates)}
        layer_graph = Graph(len(head_list) + len(right_candidates))
        witness: Dict[Edge, Edge] = {}
        for i, head in enumerate(head_list):
            for w in graph.neighbors(head):
                if w in right_index and not matching.contains_edge(head, w):
                    key = (i, right_index[w])
                    if layer_graph.add_edge(*key):
                        witness[key] = (head, w)
        if layer_graph.m == 0:
            break
        found = oracle.find_matching(layer_graph)
        extended = 0
        for a, b in found:
            key = (a, b) if a < b else (b, a)
            if key not in witness:
                continue
            head, w = witness[key]
            alpha = heads.get(head)
            if alpha is None or w in used:
                continue
            mate = matching.mate(w)
            if mate is None or mate in used:
                continue
            paths[alpha].extend([w, mate])
            used.add(w)
            used.add(mate)
            extended += 1
        if extended == 0:
            break

    # final completion attempt for paths that reached their last layer
    for alpha in list(paths):
        head = paths[alpha][-1]
        for w in graph.neighbors(head):
            if w in free_set and w not in used and not matching.contains_edge(head, w):
                completed.append(paths.pop(alpha) + [w])
                used.add(w)
                break
    return completed


def mcgregor_boost(graph: Graph, eps: float,
                   oracle: Optional[MatchingOracle] = None,
                   counters: Optional[Counters] = None,
                   seed: Optional[int] = None,
                   max_repetitions_per_phase: int = 24,
                   max_phases: int = 48) -> Matching:
    """Boost a maximal matching towards (1+eps) with the layered framework.

    ``max_repetitions_per_phase`` caps the executed repetitions (the scheduled
    count, reported by :func:`mcgregor_scheduled_calls`, is exponential in
    1/eps and cannot be executed); counters record the executed
    ``oracle_calls`` and the per-run ``mcgregor_repetitions``.
    """
    counters = counters if counters is not None else Counters()
    oracle = ensure_counting(oracle if oracle is not None else GreedyMatchingOracle(),
                             counters)
    rng = random.Random(seed)
    k = max(1, math.ceil(1.0 / eps))

    matching = greedy_maximal_matching(graph)
    phases = min(max_phases, max(1, math.ceil(2.0 / eps)))
    for _phase in range(phases):
        gained_in_phase = 0
        for _rep in range(max_repetitions_per_phase):
            counters.add("mcgregor_repetitions")
            paths = _layered_repetition(graph, matching, k, oracle, rng)
            applied = 0
            for path in paths:
                try:
                    matching.augment_along(path)
                    applied += 1
                except ValueError:
                    # a path invalidated by an earlier augmentation in this
                    # repetition (shared vertex); skip it
                    continue
            gained_in_phase += applied
        counters.add("phases")
        if gained_in_phase == 0:
            break
    return matching
