"""Prior-work boosting frameworks used as comparators in the benchmarks.

* :mod:`~repro.baselines.mcgregor` -- the [McG05]-style layered framework with
  an exponential 1/eps dependence (the basis of the prior dynamic reductions
  in Table 2);
* :mod:`~repro.baselines.fmu22` -- the [FMU22]-style simulation schedule with a
  poly(1/eps) number of oracle iterations per procedure (the Table 1
  comparator this paper improves to O(log(1/eps)) per procedure).
"""

from repro.baselines.mcgregor import mcgregor_boost, mcgregor_scheduled_calls
from repro.baselines.fmu22 import fmu22_boost, fmu22_scheduled_calls, FMU22Driver

__all__ = [
    "mcgregor_boost",
    "mcgregor_scheduled_calls",
    "fmu22_boost",
    "fmu22_scheduled_calls",
    "FMU22Driver",
]
