"""A round-synchronous CONGEST simulator.

CONGEST (Section 3.4): the communication network *is* the input graph; per
round every vertex may send O(log n) bits along each incident edge.  As with
the MPC simulator, what the reproduction needs is the *cost model*: round
counts (and message volume) of the Theta(1)-approximate matching oracle and of
the per-component aggregation ``Aprocess`` (Appendix A, Corollary A.2).

Vertex algorithms are written as callables ``program(vertex, state, inbox) ->
{neighbor: message}``; the simulator runs them a round at a time, enforcing
the per-edge message-size limit (messages must be small tuples of ints).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters

Inbox = Dict[int, object]          # sender -> message
Outbox = Dict[int, object]         # receiver -> message
VertexProgram = Callable[[int, dict, Inbox], Outbox]

#: messages are limited to this many machine words (= O(log n) bits each)
MAX_MESSAGE_WORDS = 4


class MessageTooLarge(RuntimeError):
    """Raised when a vertex tries to send more than O(log n) bits on an edge."""


class CongestSimulator:
    """Synchronous message passing on the edges of a fixed graph."""

    def __init__(self, graph: Graph, counters: Optional[Counters] = None,
                 strict: bool = True) -> None:
        self.graph = graph
        self.counters = counters if counters is not None else Counters()
        self.strict = strict
        #: per-vertex local state dictionaries, freely usable by programs
        self.state: List[dict] = [dict() for _ in range(graph.n)]
        self._inboxes: List[Inbox] = [dict() for _ in range(graph.n)]

    # ----------------------------------------------------------------- rounds
    def round(self, program: VertexProgram) -> None:
        """Run one synchronous round of ``program`` on every vertex."""
        outboxes: List[Outbox] = []
        for v in range(self.graph.n):
            out = program(v, self.state[v], self._inboxes[v]) or {}
            for dest, message in out.items():
                if not self.graph.has_edge(v, dest):
                    raise ValueError(
                        f"vertex {v} tried to message non-neighbor {dest}")
                self._check_size(message)
            outboxes.append(out)

        new_inboxes: List[Inbox] = [dict() for _ in range(self.graph.n)]
        total = 0
        for v, out in enumerate(outboxes):
            for dest, message in out.items():
                new_inboxes[dest][v] = message
                total += 1
        self._inboxes = new_inboxes
        self.counters.add("congest_rounds")
        self.counters.add("congest_messages", total)

    def run(self, program: VertexProgram, rounds: int) -> None:
        for _ in range(rounds):
            self.round(program)

    # -------------------------------------------------------------- utilities
    def charge_component_aggregation(self, component_size: int) -> None:
        """Charge the Appendix A ``Aprocess`` cost for one component.

        Collecting all information of a connected component of size ``k`` at a
        representative vertex and broadcasting the answer back takes O(k)
        CONGEST rounds (messages travel one hop per round along a spanning
        tree); the framework guarantees ``k = poly(1/eps)``.
        """
        self.counters.add("congest_rounds", 2 * max(1, component_size))
        self.counters.add("congest_aggregation_rounds", 2 * max(1, component_size))

    def _check_size(self, message: object) -> None:
        words = 1
        if isinstance(message, (tuple, list)):
            words = len(message)
        if words > MAX_MESSAGE_WORDS:
            self.counters.add("congest_message_violations")
            if self.strict:
                raise MessageTooLarge(
                    f"message of {words} words exceeds the O(log n)-bit limit")

    @property
    def rounds(self) -> int:
        return int(self.counters.get("congest_rounds"))
