"""A round-synchronous CONGEST simulator.

CONGEST (Section 3.4): the communication network *is* the input graph; per
round every vertex may send O(log n) bits along each incident edge.  As with
the MPC simulator, what the reproduction needs is the *cost model*: round
counts (and message volume) of the Theta(1)-approximate matching oracle and of
the per-component aggregation ``Aprocess`` (Appendix A, Corollary A.2).

Vertex algorithms are written as callables ``program(vertex, state, inbox) ->
{neighbor: message}``; the simulator runs them a round at a time, enforcing
the per-edge message-size limit.  Message sizes follow the shared word
convention (:func:`~repro.exec.payload_words`): tuples/lists count ``len``,
dicts/sets/strings are sized by content, and payload types the model cannot
size are rejected under ``strict=True`` instead of slipping past the
O(log n)-bit limit as "one word".

Within a round the vertex programs are independent, so :meth:`round` has a
chunked execution path mirroring the MPC simulator's: vertex ids are
partitioned into contiguous chunks run via a pluggable
:class:`~repro.exec.Executor` (serial by default, process pool when the
program pickles; state dicts are shipped back explicitly), with outboxes
merged at the barrier in vertex order.  The message exchange itself has a
NumPy fast path over the CSR graph backend: when a round's messages are the
small int tuples the matching programs actually send, edge validation runs
as one whole-round array pass
(:meth:`~repro.graph.backends.CSRBackend.edge_mask`) instead of per-message
``has_edge`` calls (sizing stays :func:`~repro.exec.payload_words`-exact).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.exec import PicklabilityProbe, contiguous_chunks, payload_words, resolve_executor
from repro.exec.executor import Executor, ExecutorSpec
from repro.exec.isolation import resolve_isolation
from repro.exec.pool import run_vertex_chunk
from repro.graph.backends import CSRBackend, _np
from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.resilience import faults as faults_mod
from repro.resilience.faults import FaultPlan

Inbox = Dict[int, object]          # sender -> message
Outbox = Dict[int, object]         # receiver -> message
VertexProgram = Callable[[int, dict, Inbox], Outbox]

#: messages are limited to this many machine words (= O(log n) bits each)
MAX_MESSAGE_WORDS = 4

#: minimum number of messages in a round before the vectorized exchange
#: validation pays for its array setup
_FAST_PATH_MIN_MESSAGES = 32


class MessageTooLarge(RuntimeError):
    """Raised when a vertex tries to send more than O(log n) bits on an edge."""


class CongestSimulator:
    """Synchronous message passing on the edges of a fixed graph.

    ``executor`` / ``chunks`` mirror :class:`~repro.mpc.simulator.MPCSimulator`:
    ``None`` keeps the sequential in-process loop, an int worker count /
    ``"process"`` / an :class:`~repro.exec.Executor` enables chunked rounds.
    A process pool is only used when the program pickles (closures fall back
    to the sequential loop); per-vertex ``state`` keeps working either way
    because chunk results carry the state dicts back across the boundary.

    ``isolation`` enables the serial-executor isolation sanitizer
    (:mod:`repro.exec.isolation`): in-process outboxes are deep-copied at
    the exchange barrier and the sender-side originals checksummed at the
    next round / :meth:`close`, so a program mutating an already-sent
    payload raises :class:`~repro.exec.isolation.IsolationViolation`
    instead of silently diverging between serial and pooled rounds.
    ``None`` (default) reads the ``REPRO_EXEC_ISOLATION`` environment flag.

    ``fault_plan`` injects deterministic message faults at the exchange
    barrier (:class:`~repro.resilience.faults.FaultPlan`): a validated
    message can be dropped, duplicated, or a vertex's inbox reordered.
    Because a CONGEST inbox keys on sender, a same-round duplicate would be
    an invisible dict overwrite -- so a duplicate is modelled as a *delayed
    redelivery*: the copy lands at the start of the **next** round, before
    fresh messages, so a fresh message from the same sender overwrites the
    stale copy and duplicate delivery can resurface old state but never
    mask new state.  Copies still undelivered at :meth:`close` are tallied
    as expired.  Injections count as ``congest_faults_dropped`` /
    ``congest_faults_duplicated`` / ``congest_faults_redelivered`` /
    ``congest_faults_reordered`` / ``congest_faults_expired``; the
    ``congest_messages`` cost counter keeps charging what the programs
    *sent* -- faults model the network, not the algorithm's cost.
    """

    def __init__(self, graph: Graph, counters: Optional[Counters] = None,
                 strict: bool = True, executor: ExecutorSpec = None,
                 chunks: Optional[int] = None,
                 isolation: Optional[bool] = None,
                 fault_plan: Optional["FaultPlan"] = None) -> None:
        self.graph = graph
        self.counters = counters if counters is not None else Counters()
        self.strict = strict
        self._executor: Optional[Executor] = (
            None if executor is None else resolve_executor(executor))
        # close() must not tear down a pool the caller owns and may share
        self._owns_executor = (self._executor is not None
                               and not isinstance(executor, Executor))
        self._chunks = chunks
        self._picklable = PicklabilityProbe()
        self._guard = resolve_isolation(isolation, "congest")
        self._faults = fault_plan
        self._fault_round = 0
        #: duplicates scheduled for stale redelivery: (dest, sender, message)
        self._delayed: List[Tuple[int, int, object]] = []
        #: per-vertex local state dictionaries, freely usable by programs
        self.state: List[dict] = [dict() for _ in range(graph.n)]
        self._inboxes: List[Inbox] = [dict() for _ in range(graph.n)]

    # ----------------------------------------------------------------- rounds
    def _execute_programs(self, program: VertexProgram) -> List[Outbox]:
        """Run the program on every vertex; outboxes in vertex order."""
        executor = self._executor
        if executor is not None and executor.parallelism > 1 \
                and not self._picklable(program):
            executor = None  # closures can't cross a process boundary
        n = self.graph.n
        guard = self._guard
        if executor is None:
            outboxes = []
            for v in range(n):
                out = program(v, self.state[v], self._inboxes[v]) or {}
                if guard is not None:
                    # capture at program return -- exactly where process
                    # mode would pickle -- so a later vertex of the same
                    # round cannot rewrite an already-submitted outbox
                    out = guard.capture_outbox(v, out)
                outboxes.append(out)
            return outboxes
        spans = contiguous_chunks(
            n, self._chunks or executor.chunks_for(n))
        tasks = [(program, start, self.state[start:stop],
                  self._inboxes[start:stop])
                 for start, stop in spans]
        outboxes: List[Outbox] = []  # repro: allow[word-accounting-bypass] -- collection only: the calling round sizes every message via _validate_outboxes before delivery
        for (start, stop), (chunk_out, chunk_state) in zip(
                spans, executor.map(run_vertex_chunk, tasks)):
            outboxes.extend(chunk_out)
            # mutated state must travel back explicitly (process mode); in
            # serial mode these are the same dict objects, so this is a no-op
            self.state[start:stop] = chunk_state
        if guard is not None and executor.parallelism == 1:
            # a chunked-but-serial executor still shares objects; process
            # pools isolate physically, so only parallelism == 1 needs this
            outboxes = [guard.capture_outbox(v, out)
                        for v, out in enumerate(outboxes)]
        return outboxes

    def _validate_outboxes(self, outboxes: List[Outbox]) -> int:
        """Edge-validate and size-check every message; returns message count.

        Edge validation uses one whole-round ``edge_mask`` array pass on the
        CSR backend when every message is a tuple/list (the int-tuple
        encoding the matching programs use); otherwise it falls back to
        per-message ``has_edge`` calls.  Size checks are always the exact
        recursive :func:`~repro.exec.payload_words` rule.
        """
        senders: List[int] = []
        dests: List[int] = []
        messages: List[object] = []
        for v, out in enumerate(outboxes):
            for dest, message in out.items():
                senders.append(v)
                dests.append(dest)
                messages.append(message)

        fast = (_np is not None
                and len(messages) >= _FAST_PATH_MIN_MESSAGES
                and isinstance(self.graph.backend, CSRBackend)
                and all(isinstance(m, (tuple, list)) for m in messages))
        if fast:
            ok = self.graph.edge_mask(senders, dests)
            if not bool(ok.all()):
                bad = int(_np.argmin(ok))
                raise ValueError(
                    f"vertex {senders[bad]} tried to message non-neighbor "
                    f"{dests[bad]}")
            # sizing stays payload_words-exact (recursive): nesting must not
            # smuggle data past the limit on the fast path either
            for message in messages:
                self._check_size(message)
        else:
            for v, dest, message in zip(senders, dests, messages):
                if not self.graph.has_edge(v, dest):
                    raise ValueError(
                        f"vertex {v} tried to message non-neighbor {dest}")
                self._check_size(message)
        return len(messages)

    def round(self, program: VertexProgram) -> None:
        """Run one synchronous round of ``program`` on every vertex."""
        if self._guard is not None:
            # payloads of the previous barrier must still digest identically:
            # any divergence is a mutation-after-send
            self._guard.verify()
        outboxes = self._execute_programs(program)
        total = self._validate_outboxes(outboxes)

        new_inboxes: List[Inbox] = [dict() for _ in range(self.graph.n)]
        if self._faults is not None:
            self._deliver_with_faults(outboxes, new_inboxes)
        else:
            for v, out in enumerate(outboxes):
                for dest, message in out.items():
                    new_inboxes[dest][v] = message
        self._fault_round += 1
        self._inboxes = new_inboxes
        self.counters.add("congest_rounds")
        self.counters.add("congest_messages", total)

    def run(self, program: VertexProgram, rounds: int) -> None:
        for _ in range(rounds):
            self.round(program)

    def _deliver_with_faults(self, outboxes: List[Outbox],
                             new_inboxes: List[Inbox]) -> None:
        """Deliver the round's (already validated) messages per the plan.

        Stale duplicates scheduled last round land first, so a fresh
        message from the same sender overwrites them via plain dict
        insertion.  Drops remove a message after validation/sizing (the
        network lost it; the program still paid to send it).  Reordering
        permutes a destination inbox's insertion order -- programs that
        iterate ``inbox.items()`` see the permuted order.  The sender-side
        originals an :class:`~repro.exec.isolation.IsolationGuard` retains
        are untouched: faults model the network, not the program.
        """
        import copy as _copy

        plan = self._faults
        round_index = self._fault_round
        for dest, sender, message in self._delayed:
            self.counters.add("congest_faults_redelivered")
            new_inboxes[dest][sender] = message  # repro: allow[word-accounting-bypass] -- delivery only: every payload here was sized by _validate_outboxes in the round that first sent it
        self._delayed = []
        for v, out in enumerate(outboxes):
            for slot, (dest, message) in enumerate(out.items()):
                action = plan.message_fault("congest", round_index, v,
                                            dest, slot)
                if action == faults_mod.DROP:
                    self.counters.add("congest_faults_dropped")
                    continue
                new_inboxes[dest][v] = message
                if action == faults_mod.DUPLICATE:
                    # an inbox keys on sender, so a same-round copy would
                    # be an invisible overwrite: schedule a stale
                    # redelivery for the next round instead
                    self.counters.add("congest_faults_duplicated")
                    self._delayed.append((dest, v, _copy.deepcopy(message)))
        for dest in range(self.graph.n):
            inbox = new_inboxes[dest]
            if len(inbox) > 1 and plan.reorders_round("congest", round_index,
                                                      dest):
                self.counters.add("congest_faults_reordered")
                senders = list(inbox)
                order = plan.permutation("congest", round_index, dest,
                                         len(senders))
                new_inboxes[dest] = {senders[j]: inbox[senders[j]]
                                     for j in order}

    # -------------------------------------------------------------- utilities
    def charge_component_aggregation(self, component_size: int) -> None:
        """Charge the Appendix A ``Aprocess`` cost for one component.

        Collecting all information of a connected component of size ``k`` at a
        representative vertex and broadcasting the answer back takes O(k)
        CONGEST rounds (messages travel one hop per round along a spanning
        tree); the framework guarantees ``k = poly(1/eps)``.
        """
        self.counters.add("congest_rounds", 2 * max(1, component_size))
        self.counters.add("congest_aggregation_rounds", 2 * max(1, component_size))

    def _check_size(self, message: object) -> None:
        words = payload_words(message)
        if words is None:
            # a payload the word model cannot size (arbitrary object): it
            # must not slip past the O(log n)-bit limit as "one word"
            self.counters.add("congest_message_violations")
            if self.strict:
                raise MessageTooLarge(
                    f"cannot size a {type(message).__name__} payload; "
                    "CONGEST messages must be tuples of O(log n)-bit words")
            return
        if words > MAX_MESSAGE_WORDS:
            self.counters.add("congest_message_violations")
            if self.strict:
                raise MessageTooLarge(
                    f"message of {words} words exceeds the O(log n)-bit limit")

    def close(self) -> None:
        """Release executor workers this simulator created.

        A caller-supplied :class:`~repro.exec.Executor` instance is left
        running -- it may be shared with other simulators.  Under isolation
        the last round's retained payloads are verified here, so mutations
        after the final round still fail loudly.
        """
        if self._guard is not None:
            self._guard.verify()
        if self._delayed:
            # duplicates still in flight when the simulation ends: the
            # network never delivered them (a fault in the final round)
            self.counters.add("congest_faults_expired", len(self._delayed))
            self._delayed = []
        if self._executor is not None and self._owns_executor:
            self._executor.close()

    @property
    def rounds(self) -> int:
        return int(self.counters.get("congest_rounds"))
