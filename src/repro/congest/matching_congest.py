"""A distributed Theta(1)-approximate matching algorithm in CONGEST.

Israeli–Itai-style randomized maximal matching: in each iteration every
unmatched vertex picks a random unmatched neighbour and proposes to it
(1 round); a vertex receiving proposals accepts exactly one, and a proposal is
realised as a matched edge if it is accepted (1 round back).  Matched vertices
announce their status to their neighbours (1 round).  A constant fraction of
the remaining edges disappears per iteration in expectation, so O(log n)
iterations suffice w.h.p.; the result is a maximal, hence 2-approximate,
matching.

In the boosting framework the oracle is invoked on *derived* graphs (``H'``,
``H'_s``).  Conceptually these are virtual graphs simulated on top of the real
network; the reproduction runs the CONGEST algorithm directly on the derived
graph's topology and charges its rounds, which is exactly the per-invocation
cost ``T_matching`` of Corollary A.2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.core.oracles import MatchingOracle
from repro.congest.simulator import CongestSimulator

Edge = Tuple[int, int]


def congest_approx_matching(graph: Graph, simulator: CongestSimulator,
                            seed: Optional[int] = None,
                            max_iterations: Optional[int] = None) -> List[Edge]:
    """Randomized maximal matching on ``simulator`` (which wraps ``graph``)."""
    rng = random.Random(seed)
    n = graph.n
    iterations = max_iterations if max_iterations is not None else 4 * max(1, n).bit_length() + 8

    matched: Dict[int, Optional[int]] = {v: None for v in range(n)}
    for st in simulator.state:
        st.clear()

    for _it in range(iterations):
        # round 1: propose to a random unmatched neighbour
        def propose(v: int, state: dict, inbox: dict):
            if matched[v] is not None:
                return {}
            candidates = [w for w in graph.neighbors(v) if matched[w] is None]
            if not candidates:
                return {}
            target = rng.choice(candidates)
            state["proposed_to"] = target
            return {target: ("propose",)}

        simulator.round(propose)

        # round 2: accept one proposal and notify the proposer
        def accept(v: int, state: dict, inbox: dict):
            if matched[v] is not None:
                return {}
            proposers = [sender for sender, msg in inbox.items()
                         if isinstance(msg, tuple) and msg and msg[0] == "propose"]
            if not proposers:
                return {}
            chosen = min(proposers)
            state["accepted"] = chosen
            return {chosen: ("accept",)}

        simulator.round(accept)

        # resolve locally: an edge (u, v) is matched if v accepted u's proposal
        newly_matched: List[Edge] = []
        for v in range(n):
            state = simulator.state[v]
            accepted_from = state.pop("accepted", None)
            if accepted_from is None:
                state.pop("proposed_to", None)
                continue
            u = accepted_from
            if matched[u] is None and matched[v] is None:
                proposed = simulator.state[u].pop("proposed_to", None)
                if proposed == v:
                    matched[u] = v
                    matched[v] = u
                    newly_matched.append((u, v) if u < v else (v, u))
            state.pop("proposed_to", None)

        # round 3: matched vertices announce their status
        def announce(v: int, state: dict, inbox: dict):
            if matched[v] is None:
                return {}
            return {w: ("matched",) for w in graph.neighbors(v)}

        simulator.round(announce)

        remaining = any(matched[u] is None and matched[v] is None
                        for u, v in graph.edges())
        if not remaining:
            break

    return [(u, v) for u, v in
            ((u, matched[u]) for u in range(n) if matched[u] is not None)
            if v is not None and u < v]


class CongestMatchingOracle(MatchingOracle):
    """``Amatching`` backed by the simulated CONGEST matching algorithm."""

    c = 2.0
    name = "congest-israeli-itai"

    def __init__(self, counters: Optional[Counters] = None,
                 seed: Optional[int] = None) -> None:
        self.counters = counters if counters is not None else Counters()
        self._rng = random.Random(seed)

    def find_matching(self, graph: Graph) -> List[Edge]:
        simulator = CongestSimulator(graph, counters=self.counters, strict=True)
        return congest_approx_matching(graph, simulator,
                                       seed=self._rng.randrange(2 ** 31))
