"""Corollary A.2: the boosting framework instantiated in CONGEST.

The boosted algorithm costs ``O(T(n, m) * log(1/eps) / eps^10)`` CONGEST
rounds: the extra ``1/eps^3`` factor over MPC comes from ``Aprocess`` -- in
CONGEST, aggregating the state of a structure of size ``k`` at a representative
vertex takes Theta(k) rounds, and structures can have ``poly(1/eps)`` vertices
(Appendix A).  The reproduction charges exactly that: after every pass-bundle
the largest live structure's size is charged as aggregation rounds.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.boosting import BoostingFramework, OracleDriver
from repro.core.operations import apply_augmentations
from repro.core.phase import run_phase
from repro.core.structures import PhaseState
from repro.congest.matching_congest import CongestMatchingOracle


class _AggregationChargingDriver(OracleDriver):
    """Oracle driver that additionally charges Aprocess aggregation rounds.

    Both per-bundle procedures require the vertices of each structure to learn
    the outcome (new working vertex, new labels, removals); in CONGEST this is
    a convergecast + broadcast inside the structure, i.e. Theta(structure
    size) rounds, executed for all structures in parallel -- so the charge per
    procedure is twice the size of the *largest* live structure.
    """

    def __init__(self, oracle, profile, counters: Counters,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(oracle, profile, rng=rng)
        self.counters = counters

    def _charge_aggregation(self, state: PhaseState) -> None:
        largest = max((s.size for s in state.live_structures()), default=1)
        self.counters.add("congest_rounds", 2 * largest)
        self.counters.add("congest_aggregation_rounds", 2 * largest)

    def extend_active_path(self, state: PhaseState) -> None:
        super().extend_active_path(state)
        self._charge_aggregation(state)

    def contract_and_augment(self, state: PhaseState) -> None:
        super().contract_and_augment(state)
        self._charge_aggregation(state)


def congest_boosted_matching(graph: Graph, eps: float,
                             profile: Optional[ParameterProfile] = None,
                             counters: Optional[Counters] = None,
                             seed: Optional[int] = None) -> Tuple[Matching, Counters]:
    """Run the framework with the CONGEST oracle and return (matching, counters).

    Counters afterwards: ``oracle_calls`` (Theorem 1.1 quantity),
    ``congest_rounds`` (oracle rounds + Aprocess aggregation rounds,
    the Corollary A.2 quantity) and ``congest_aggregation_rounds``.
    """
    counters = counters if counters is not None else Counters()
    oracle = CongestMatchingOracle(counters=counters, seed=seed)
    framework = BoostingFramework(eps, oracle=oracle, profile=profile,
                                  counters=counters, seed=seed)

    # Reproduce BoostingFramework.run but with the aggregation-charging driver.
    matching = framework.initial_matching(graph)
    driver = _AggregationChargingDriver(framework.oracle, framework.profile,
                                        counters, rng=framework.rng)
    for h in framework.profile.scales:
        for _t in range(framework.profile.phases(h)):
            counters.add("phases")
            records = run_phase(graph, matching, framework.profile, h, driver,
                                counters=counters)
            gained = apply_augmentations(matching, records)
            counters.add("matching_gain", gained)
            if framework.profile.early_exit and gained == 0:
                break
    return matching, counters
