"""CONGEST substrate: per-edge message simulator, a distributed Theta(1)-approx
matching algorithm, and the Corollary A.2 instantiation of the framework."""

from repro.congest.simulator import CongestSimulator
from repro.congest.matching_congest import congest_approx_matching, CongestMatchingOracle
from repro.congest.boost_congest import congest_boosted_matching

__all__ = [
    "CongestSimulator",
    "congest_approx_matching",
    "CongestMatchingOracle",
    "congest_boosted_matching",
]
