"""Workload subsystem: lazy update streams, traces, and real-graph ingestion.

The dynamic algorithms of Section 7 consume *update sequences*; this package
is where those sequences come from:

* :mod:`~repro.workloads.streams` -- the :class:`UpdateStream` abstraction
  (lazy, re-iterable, composable) and its combinators;
* :mod:`~repro.workloads.sources` -- the synthetic workload families as
  stream sources (draw-for-draw compatible with the legacy eager
  generators, which now live on as a shim in :mod:`repro.graph.workloads`);
* :mod:`~repro.workloads.trace` -- packed int64 ``(kind, u, v)`` traces
  with save/load, for stable shareable workloads;
* :mod:`~repro.workloads.ingest` -- SNAP-style edge-list loading and
  temporal adapters turning real static graphs into dynamic scenarios;
* :mod:`~repro.workloads.registry` -- named workload specs backing the
  bench CLI's ``--workload`` selector.

See the "Workload & trace layer" section of ARCHITECTURE.md.
"""

from repro.workloads.streams import UpdateStream, concat, interleave, stream_of
from repro.workloads.sources import (
    adversarial_matched_edge_deletions,
    insertion_only,
    ors_reveal,
    planted_matching_churn,
    sliding_window,
)
from repro.workloads.trace import Trace
from repro.workloads.ingest import (
    EdgeListData,
    load_edge_list,
    temporal_insertions,
    temporal_sliding_window,
)
from repro.workloads.registry import (
    get_workload,
    register_workload,
    resolve_workload,
    workload_names,
)

__all__ = [
    "EdgeListData",
    "Trace",
    "UpdateStream",
    "adversarial_matched_edge_deletions",
    "concat",
    "get_workload",
    "insertion_only",
    "interleave",
    "load_edge_list",
    "ors_reveal",
    "planted_matching_churn",
    "register_workload",
    "resolve_workload",
    "sliding_window",
    "stream_of",
    "temporal_insertions",
    "temporal_sliding_window",
    "workload_names",
]
