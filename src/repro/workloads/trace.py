"""Packed on-disk traces: record any update stream, replay it byte-identically.

A :class:`Trace` is an update sequence in structure-of-arrays form -- three
int64 NumPy columns ``(kind, u, v)`` plus the vertex count ``n`` -- the
format the bench suite uses for stable, shareable workloads:

* **record**: :meth:`Trace.record` consumes any stream/iterable once,
  packing updates straight into growing int64 buffers (24 bytes per update,
  no Python object list);
* **persist**: :meth:`Trace.save` / :meth:`Trace.load` round-trip through a
  NumPy ``.npz`` container (column arrays stored verbatim, so a loaded
  trace compares equal to the recorded one array-for-array);
* **replay**: :meth:`Trace.stream` is an :class:`UpdateStream` over the
  columns -- iterate it as many times as needed, through any backend, and
  the update sequence (hence every seeded maintainer's counters and
  matchings) is identical on every replay.

Kind codes are part of the on-disk format and must never change:
``0 = EMPTY``, ``1 = INSERT``, ``2 = DELETE``.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional

from repro.graph.dynamic_graph import Update
from repro.workloads.streams import UpdateStream

#: on-disk kind codes (stable format contract)
KIND_EMPTY, KIND_INSERT, KIND_DELETE = 0, 1, 2

_KIND_TO_CODE = {Update.EMPTY: KIND_EMPTY, Update.INSERT: KIND_INSERT,
                 Update.DELETE: KIND_DELETE}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

#: format version written into every file (bump only with a migration path)
FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file that cannot be read: corrupt, truncated, or version-skewed.

    Carries the offending ``path``, a human ``reason``, and -- when the
    failure is a version mismatch -- ``expected_version`` / ``found_version``
    so callers can distinguish "re-record this trace" from "wrong file".
    """

    def __init__(self, path, reason: str,
                 expected_version: Optional[int] = None,
                 found_version: Optional[int] = None) -> None:
        self.path = str(path)
        self.reason = reason
        self.expected_version = expected_version
        self.found_version = found_version
        detail = f"{self.path}: {reason}"
        if found_version is not None:
            detail += (f" (file is v{found_version}, this build reads "
                       f"v{expected_version})")
        super().__init__(detail)


def _numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is baked into CI
        raise RuntimeError(
            "trace recording/persistence requires NumPy; replay plain "
            "UpdateStreams instead when it is unavailable") from exc
    return numpy


class Trace:
    """An update sequence as packed int64 ``(kind, u, v)`` columns."""

    def __init__(self, n: int, kind, u, v) -> None:
        np = _numpy()
        self.n = int(n)
        self.kind = np.ascontiguousarray(kind, dtype=np.int64)
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        if not (self.kind.shape == self.u.shape == self.v.shape) \
                or self.kind.ndim != 1:
            raise ValueError("kind/u/v must be 1-d arrays of equal length")
        if self.n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        bad = set(np.unique(self.kind)) - set(_CODE_TO_KIND)
        if bad:
            raise ValueError(f"unknown kind codes in trace: {sorted(bad)}")

    # -------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return int(self.kind.shape[0])

    @property
    def num_updates(self) -> int:
        return len(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        np = _numpy()
        return (self.n == other.n
                and np.array_equal(self.kind, other.kind)
                and np.array_equal(self.u, other.u)
                and np.array_equal(self.v, other.v))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Trace(n={self.n}, updates={len(self)})"

    # ------------------------------------------------------------- recording
    @staticmethod
    def record(stream: "UpdateStream | Iterable[Update]",
               n: Optional[int] = None) -> "Trace":
        """Consume ``stream`` once and pack it into a trace.

        ``n`` defaults to ``stream.n`` for real streams and is required for
        plain iterables.  Updates are appended to compact int64 buffers
        (``array('q')``), never to a Python object list, so recording a
        million-update stream allocates ~24 MB of columns and nothing else.
        """
        if n is None:
            n = getattr(stream, "n", None)
            if n is None:
                raise ValueError("recording a plain iterable needs an "
                                 "explicit n")
        np = _numpy()
        kinds, us, vs = array("q"), array("q"), array("q")
        for upd in stream:
            kinds.append(_KIND_TO_CODE[upd.kind])
            us.append(upd.u)
            vs.append(upd.v)
        return Trace(n,
                     np.frombuffer(kinds, dtype=np.int64).copy()
                     if kinds else np.zeros(0, dtype=np.int64),
                     np.frombuffer(us, dtype=np.int64).copy()
                     if us else np.zeros(0, dtype=np.int64),
                     np.frombuffer(vs, dtype=np.int64).copy()
                     if vs else np.zeros(0, dtype=np.int64))

    # ----------------------------------------------------------- persistence
    def save(self, path) -> str:
        """Write the trace to ``path`` (a ``.npz`` container); returns the
        path actually written (NumPy appends ``.npz`` when missing)."""
        np = _numpy()
        path = str(path)
        np.savez(path,
                 version=np.int64(FORMAT_VERSION),
                 n=np.int64(self.n),
                 kind=self.kind, u=self.u, v=self.v)
        return path if path.endswith(".npz") else path + ".npz"

    @staticmethod
    def load(path) -> "Trace":
        """Read a trace written by :meth:`save`.

        Raises :class:`TraceFormatError` for anything unreadable -- a
        truncated/corrupt container, a non-trace ``.npz``, or a format
        version this build does not speak -- so callers get one typed error
        (with ``path`` and, for version skew, ``expected_version`` /
        ``found_version``) instead of whatever NumPy's zip layer leaks.
        A missing file still raises :class:`FileNotFoundError`.
        """
        import zipfile

        np = _numpy()
        try:
            with np.load(str(path)) as payload:
                missing = ({"version", "n", "kind", "u", "v"}
                           - set(payload.files))
                if missing:
                    raise TraceFormatError(
                        path,
                        f"not a trace file (missing {sorted(missing)})")
                version = int(payload["version"])
                if version != FORMAT_VERSION:
                    raise TraceFormatError(
                        path, "trace format version mismatch",
                        expected_version=FORMAT_VERSION,
                        found_version=version)
                return Trace(int(payload["n"]), payload["kind"],
                             payload["u"], payload["v"])
        except (FileNotFoundError, TraceFormatError):
            raise
        except (zipfile.BadZipFile, KeyError, ValueError, EOFError,
                OSError) as exc:
            # truncated download, disk corruption, or a non-npz file: NumPy
            # surfaces these as a zoo of low-level errors
            raise TraceFormatError(
                path, f"corrupt trace file ({exc})") from exc

    # ----------------------------------------------------------------- replay
    def stream(self, name: Optional[str] = None) -> UpdateStream:
        """Replay as an :class:`UpdateStream` (re-iterable, lazy)."""
        kind, u, v = self.kind, self.u, self.v

        def produce() -> Iterator[Update]:
            for i in range(kind.shape[0]):
                code = int(kind[i])
                if code == KIND_EMPTY:
                    yield Update.empty()
                else:
                    yield Update(_CODE_TO_KIND[code], int(u[i]), int(v[i]))

        return UpdateStream(self.n, produce, length=len(self),
                            name=name or f"trace(updates={len(self)})")

    def updates(self) -> List[Update]:
        """The materialized update list (small traces / tests only)."""
        return list(self.stream())
