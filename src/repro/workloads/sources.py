"""Stream sources: the workload families as lazy :class:`UpdateStream`\\ s.

Each source reproduces, draw for draw, the update sequence its eager
predecessor in ``repro.graph.workloads`` produced for the same seed (the old
module is now a thin shim over these sources, and its tests pin the
equivalence).  The difference is *when* the work happens: a source returns
immediately with an ``UpdateStream`` whose iterator generates updates on
demand, so a 10^6-update scenario costs O(window) memory to replay instead
of O(stream).

Families (see the module docstring of :mod:`repro.graph.workloads` for the
paper context of each):

* :func:`insertion_only` -- distinct random insertions,
* :func:`sliding_window` -- turnstile stream, live edges bounded by the
  window (the canonical bounded-memory long-stream workload),
* :func:`planted_matching_churn` -- planted perfect matching churned round
  by round (``mu(G) = Theta(n)`` throughout),
* :func:`ors_reveal` -- ORS-style graph revealed matching-by-matching then
  deleted,
* :func:`adversarial_matched_edge_deletions` -- adaptive deletions of the
  *currently maintained* matching, driven through a live callback.

Parameter validation is eager (a bad call raises at construction, not on
first iteration); RNG state is created inside the iterator factory, so
re-iterating a stream replays the identical sequence.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.dynamic_graph import Update
from repro.graph.generators import ors_layered_graph, planted_matching
from repro.utils.seeding import derived_seeds, rng
from repro.workloads.streams import UpdateStream


def insertion_only(n: int, m: int, seed: Optional[int] = None) -> UpdateStream:
    """``min(m, n*(n-1)/2)`` random distinct edge insertions on ``n`` vertices.

    Distinctness requires remembering what was drawn, so this source's
    iterator holds O(#emitted) state -- inherent to the family, not to the
    stream API.
    """
    max_m = n * (n - 1) // 2
    target = min(m, max_m)

    def produce() -> Iterator[Update]:
        stream_rng = rng(seed)
        seen = set()
        emitted = 0
        while emitted < target:
            u, v = stream_rng.randrange(n), stream_rng.randrange(n)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in seen:
                continue
            seen.add(e)
            emitted += 1
            yield Update.insert(*e)

    return UpdateStream(n, produce, length=target,
                        name=f"insertion_only(n={n}, m={target})")


def sliding_window(n: int, num_updates: int, window: int,
                   seed: Optional[int] = None) -> UpdateStream:
    """Insert random edges; delete each edge ``window`` updates after insertion.

    Live edges never exceed ``window``, so both the iterator state and the
    replayed graph stay O(window) regardless of ``num_updates`` -- this is
    the source behind the million-update replay guarantee.  The effective
    window is capped at ``n * (n - 1) / 2`` (with a larger window every
    possible edge can be live at once with no deletion due, and no fresh
    edge could ever be inserted); ``n < 2`` admits no edge and yields an
    empty stream; ``window < 1`` is rejected outright.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    degenerate = n < 2 or num_updates <= 0
    window = min(window, n * (n - 1) // 2) if not degenerate else window

    def produce() -> Iterator[Update]:
        if degenerate:
            return
        stream_rng = rng(seed)
        emitted = 0
        live: List[Tuple[int, int]] = []
        first = 0  # pop index into live (amortized O(1) window expiry)
        present = set()
        while emitted < num_updates:
            if len(live) - first >= window:
                e = live[first]
                first += 1
                if first > window:  # keep the buffer bounded by the window
                    del live[:first]
                    first = 0
                present.discard(e)
                emitted += 1
                yield Update.delete(*e)
                continue
            u, v = stream_rng.randrange(n), stream_rng.randrange(n)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in present:
                continue
            present.add(e)
            live.append(e)
            emitted += 1
            yield Update.insert(*e)

    return UpdateStream(max(n, 0), produce,
                        length=0 if degenerate else num_updates,
                        name=f"sliding_window(n={n}, window={window})")


def planted_matching_churn(n_pairs: int, rounds: int,
                           churn_fraction: float = 0.25,
                           noise_prob: float = 0.02,
                           seed: Optional[int] = None) -> UpdateStream:
    """Workload keeping ``mu(G) = Theta(n)`` while repeatedly breaking the
    matching: a planted perfect matching plus noise is inserted, then for
    ``rounds`` rounds a ``churn_fraction`` of the planted edges is deleted
    and re-inserted.

    ``churn_fraction`` must lie in ``(0, 1]``.  The graph and the churn
    stream draw from two substreams derived independently from ``seed``
    (named ``"graph"`` / ``"churn"``), so the noise edges added during
    construction never perturb which planted edges get churned.  The planted
    graph is built once, eagerly (it is O(m), independent of ``rounds``);
    only the churn rounds are generated lazily.
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    if not 0.0 < churn_fraction <= 1.0:
        raise ValueError(
            f"churn_fraction must be in (0, 1], got {churn_fraction}")
    seeds = derived_seeds(seed, "graph", "churn")
    graph, planted = planted_matching(n_pairs, extra_edge_prob=noise_prob,
                                      seed=seeds["graph"])
    initial = list(graph.edges())
    k = max(1, int(churn_fraction * len(planted)))

    def produce() -> Iterator[Update]:
        churn_rng = random.Random(seeds["churn"])
        for u, v in initial:
            yield Update.insert(u, v)
        for _ in range(rounds):
            victims = churn_rng.sample(planted, k)
            for u, v in victims:
                yield Update.delete(u, v)
            for u, v in victims:
                yield Update.insert(u, v)

    return UpdateStream(
        graph.n, produce, length=len(initial) + 2 * k * rounds,
        name=f"planted_matching_churn(pairs={n_pairs}, rounds={rounds})")


def ors_reveal(n: int, matching_size: int, num_matchings: int,
               seed: Optional[int] = None) -> UpdateStream:
    """Reveal an ORS-style graph matching-by-matching, then delete it in order."""
    _, matchings = ors_layered_graph(n, matching_size, num_matchings,
                                     seed=seed)
    total = 2 * sum(len(mi) for mi in matchings)

    def produce() -> Iterator[Update]:
        for mi in matchings:
            for u, v in mi:
                yield Update.insert(u, v)
        for mi in matchings:
            for u, v in mi:
                yield Update.delete(u, v)

    return UpdateStream(n, produce, length=total,
                        name=f"ors_reveal(n={n}, t={num_matchings})")


def adversarial_matched_edge_deletions(
        n_pairs: int, rounds: int,
        current_matching: Callable[[], Sequence[Tuple[int, int]]],
        seed: Optional[int] = None) -> UpdateStream:
    """Adaptive workload: each step deletes an edge of the *current* matching.

    ``current_matching`` is queried at every step, so the stream's content
    depends on the maintainer it is driving -- it is lazy by necessity, and
    re-iterating replays the same *decisions* only if the maintainer is
    reset too.  ``2 * rounds`` updates are produced; when the matching is
    empty a previously deleted edge is re-inserted instead, and when neither
    exists the step is EMPTY.
    """

    def produce() -> Iterator[Update]:
        stream_rng = rng(seed)
        deleted: List[Tuple[int, int]] = []
        for _ in range(2 * rounds):
            matching = list(current_matching())
            if matching and (not deleted or stream_rng.random() < 0.6):
                u, v = matching[stream_rng.randrange(len(matching))]
                deleted.append((min(u, v), max(u, v)))
                yield Update.delete(u, v)
            elif deleted:
                u, v = deleted.pop(stream_rng.randrange(len(deleted)))
                yield Update.insert(u, v)
            else:
                yield Update.empty()

    return UpdateStream(2 * n_pairs, produce, length=2 * rounds,
                        name=f"adversarial(pairs={n_pairs}, rounds={rounds})")
