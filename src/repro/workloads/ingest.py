"""Real-graph ingestion: edge lists in, dynamic update streams out.

The paper evaluates nothing on data (it is a theory paper), but the
ROADMAP's scenario axis wants the dynamic stack exercised on real graphs.
This module turns a static edge-list file (the SNAP convention: one
``u v [timestamp]`` pair per line, ``#`` comments) into the repo's dynamic
workloads:

* :func:`load_edge_list` parses and *remaps* arbitrary vertex labels
  (sparse ids, strings) onto the contiguous ``0..n-1`` range every
  algorithm here assumes, dropping self-loops and keeping the original
  labels for reverse lookup;
* :func:`temporal_insertions` replays the edges as an insertion-only
  stream in timestamp order (file order when no timestamps; ties keep file
  order -- the sort is stable, so ingestion is deterministic);
* :func:`temporal_sliding_window` adds expiry: an edge inserted at time
  ``t`` is deleted once the stream reaches time ``t + window``, turning a
  static graph with timestamps into a genuinely fully dynamic scenario
  whose live size is bounded by the window.

Together with :class:`~repro.workloads.trace.Trace` this is the
record-once/replay-forever path: ingest a public graph, record the stream,
commit the trace, and every future bench run replays the identical
workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.graph.dynamic_graph import Update
from repro.workloads.streams import UpdateStream


@dataclass
class EdgeListData:
    """A parsed edge-list file, remapped to contiguous vertex ids.

    ``edges[i]`` is the i-th non-comment, non-self-loop line as a
    ``(u, v)`` pair of remapped ids; ``timestamps[i]`` its timestamp when
    the file carries one (``None`` otherwise -- then file order is the
    temporal order); ``labels[j]`` the original label of vertex ``j``.
    Duplicate edges are kept: they are real occurrences in temporal data
    (repeated contacts) and the stream adapters give them meaning.
    """

    n: int
    edges: List[Tuple[int, int]]
    timestamps: Optional[List[int]] = None
    labels: List[str] = field(default_factory=list)
    path: str = ""

    @property
    def m(self) -> int:
        return len(self.edges)


def load_edge_list(path, comment: str = "#",
                   remap: bool = True) -> EdgeListData:
    """Parse a SNAP-style edge list: ``u v [timestamp]`` per line.

    Vertex labels may be arbitrary tokens; with ``remap`` (the default)
    they are assigned contiguous ids in first-seen order.  With
    ``remap=False`` the tokens must already be integers in ``0..n-1`` and
    ``n`` is taken as ``max_id + 1``.  Self-loops are dropped (the update
    protocol rejects them); blank lines and ``comment``-prefixed lines are
    ignored.  Timestamps must be integers and either every edge line has
    one or none does.
    """
    ids = {}
    labels: List[str] = []
    edges: List[Tuple[int, int]] = []
    timestamps: List[int] = []
    saw_timestamps: Optional[bool] = None

    def vertex(token: str) -> int:
        if not remap:
            return int(token)
        vid = ids.get(token)
        if vid is None:
            vid = len(ids)
            ids[token] = vid
            labels.append(token)
        return vid

    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [timestamp]', "
                    f"got {line!r}")
            has_ts = len(fields) == 3
            if saw_timestamps is None:
                saw_timestamps = has_ts
            elif saw_timestamps != has_ts:
                raise ValueError(
                    f"{path}:{lineno}: mixed timestamped and plain edge "
                    "lines")
            if fields[0] == fields[1]:
                continue  # self-loop: the update protocol rejects them
            u, v = vertex(fields[0]), vertex(fields[1])
            if u == v:
                continue  # distinct tokens mapping to one id (remap=False)
            edges.append((u, v))
            if has_ts:
                timestamps.append(int(fields[2]))

    if remap:
        n = len(ids)
    else:
        n = 1 + max((max(u, v) for u, v in edges), default=-1)
        if any(u < 0 or v < 0 for u, v in edges):
            raise ValueError(f"{path}: negative vertex id with remap=False")
        labels = [str(i) for i in range(n)]
    return EdgeListData(n=n, edges=edges,
                        timestamps=timestamps if saw_timestamps else None,
                        labels=labels, path=str(path))


def _temporal_order(data: EdgeListData) -> List[int]:
    """Edge indices in replay order: stable sort by timestamp, else file
    order (so ingestion is deterministic either way)."""
    if data.timestamps is None:
        return list(range(data.m))
    return sorted(range(data.m), key=lambda i: data.timestamps[i])


def _time_of(data: EdgeListData, index: int) -> int:
    return index if data.timestamps is None else data.timestamps[index]


def temporal_insertions(data: EdgeListData) -> UpdateStream:
    """Insertion-only replay in temporal order.

    Duplicate edges become duplicate insertions -- legitimate (no-op)
    updates under the dynamic protocol, charged like any adversarial
    update.
    """
    order = _temporal_order(data)

    def produce() -> Iterator[Update]:
        for i in order:
            u, v = data.edges[i]
            yield Update.insert(u, v)

    name = f"temporal_insertions({data.path or 'edges'})"
    return UpdateStream(data.n, produce, length=len(order), name=name)


def temporal_sliding_window(data: EdgeListData, window: int) -> UpdateStream:
    """Temporal replay with expiry: an edge arriving at time ``t`` is
    deleted when the stream reaches time ``t + window``.

    ``window`` is measured in the file's time unit (timestamps when
    present, arrival index otherwise).  A re-arrival of a live edge
    refreshes its expiry without emitting anything (the edge simply stays);
    expiries due at the same step are emitted in the arrival order of the
    arrival that last refreshed them.  Edges still live after the last
    arrival remain in the graph -- the stream ends with a non-trivial
    snapshot, which is what the matching maintainers want to be measured
    on.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    order = _temporal_order(data)

    def produce() -> Iterator[Update]:
        # Amortized O(1) expiry: arrivals come in nondecreasing time, so a
        # FIFO of (edge, born) events scanned by one pointer finds every due
        # expiry without rescanning the live set (an O(live) scan per
        # arrival would make large SNAP ingests O(m * window)).  A refresh
        # appends a new event and leaves the old one behind as *stale*;
        # stale events are recognised (born no longer matches the live
        # entry) and skipped when the pointer reaches them.
        live = {}  # edge -> born time of its latest arrival
        events: List[Tuple[Tuple[int, int], int]] = []
        first = 0
        for i in order:
            now = _time_of(data, i)
            while first < len(events):
                e, born = events[first]
                if born + window > now:
                    break
                first += 1
                if live.get(e) == born:  # not refreshed since: really due
                    del live[e]
                    yield Update.delete(*e)
            if first > 4096:  # compact consumed prefix; keeps buffer bounded
                del events[:first]
                first = 0
            u, v = data.edges[i]
            e = (min(u, v), max(u, v))
            refresh = e in live
            live[e] = now
            events.append((e, now))
            if not refresh:
                yield Update.insert(u, v)

    name = f"temporal_sliding_window({data.path or 'edges'}, window={window})"
    return UpdateStream(data.n, produce, length=None, name=name)
