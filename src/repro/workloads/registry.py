"""Named workload specs: the bench suite's ``--workload`` vocabulary.

A *workload spec* is a string the benchmark CLI accepts and this module
resolves into an :class:`~repro.workloads.streams.UpdateStream`:

* a **registered name** (``"churn"``, ``"sliding_window"``, ...) -- a
  factory ``fn(smoke, seed) -> UpdateStream`` registered with
  :func:`register_workload`; factories own their smoke-vs-full sizing so
  every scenario that takes ``workload=`` inherits seconds-scale smoke
  configurations for free;
* a **trace path** (``"trace:benchmarks/data/foo.npz"``) -- a recorded
  :class:`~repro.workloads.trace.Trace` replayed verbatim; ``smoke`` and
  ``seed`` are ignored because a trace *is* its bytes.

Benchmark modules may register additional (e.g. data-file-backed) names at
import time, exactly like bench scenarios register themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads import sources
from repro.workloads.streams import UpdateStream

#: ``fn(smoke, seed) -> UpdateStream``
WorkloadFactory = Callable[[bool, int], UpdateStream]

TRACE_PREFIX = "trace:"

_WORKLOADS: Dict[str, WorkloadFactory] = {}


def register_workload(name: str, description: str = ""):
    """Decorator registering a workload factory under ``name``.

    Re-registering a name overwrites the previous entry (same idempotence
    contract as the scenario registry).  Names must not collide with the
    ``trace:`` prefix.
    """
    if name.startswith(TRACE_PREFIX):
        raise ValueError(f"workload names must not start with {TRACE_PREFIX!r}")

    def decorator(fn: WorkloadFactory) -> WorkloadFactory:
        fn.description = description  # type: ignore[attr-defined]
        _WORKLOADS[name] = fn
        return fn

    return decorator


def workload_names() -> List[str]:
    return sorted(_WORKLOADS)


def get_workload(name: str) -> WorkloadFactory:
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; registered: "
                       f"{workload_names() or '(none)'}") from None


def resolve_workload(spec: str, smoke: bool = False,
                     seed: int = 0) -> UpdateStream:
    """Turn a workload spec string into a stream (see module docstring)."""
    if spec.startswith(TRACE_PREFIX):
        from repro.workloads.trace import Trace

        path = spec[len(TRACE_PREFIX):]
        if not path:
            raise ValueError("trace workload spec needs a path: trace:<path>")
        return Trace.load(path).stream(name=spec)
    return get_workload(spec)(smoke, seed)


# ---------------------------------------------------------------------------
# built-in synthetic workloads (smoke sizing mirrors the table2 scenarios)
# ---------------------------------------------------------------------------

@register_workload("churn", "planted perfect matching churned round by round")
def _churn(smoke: bool, seed: int) -> UpdateStream:
    pairs, rounds = (8, 2) if smoke else (15, 4)
    return sources.planted_matching_churn(pairs, rounds=rounds, seed=seed)


@register_workload("sliding_window",
                   "turnstile stream, live edges bounded by the window")
def _sliding_window(smoke: bool, seed: int) -> UpdateStream:
    n, num_updates, window = (20, 80, 20) if smoke else (30, 240, 45)
    return sources.sliding_window(n, num_updates, window=window, seed=seed)


@register_workload("insertion_only", "distinct random edge insertions")
def _insertion_only(smoke: bool, seed: int) -> UpdateStream:
    n, m = (24, 60) if smoke else (60, 400)
    return sources.insertion_only(n, m, seed=seed)


@register_workload("ors_reveal",
                   "ORS-style graph revealed matching-by-matching, then "
                   "deleted")
def _ors_reveal(smoke: bool, seed: int) -> UpdateStream:
    n, r, t = (24, 3, 3) if smoke else (60, 6, 5)
    return sources.ors_reveal(n, r, t, seed=seed)
