"""Lazy update streams: the workload abstraction of the dynamic stack.

The Section 7 algorithms are defined over *update sequences* (Problem 1:
chunks of ``alpha * n`` insertions/deletions).  An :class:`UpdateStream` is
such a sequence made lazy: a re-iterable producer of
:class:`~repro.graph.dynamic_graph.Update` values over a known vertex count
``n``, yielding updates on demand instead of materializing a Python list.
Million-update scenarios therefore cost O(1) extra memory to *describe* and
O(chunk) to *replay* -- the consuming layers (``DynamicGraph.apply_all``,
``DynamicMatchingAlgorithm.process``, ``Problem1Instance.iter_chunks``)
accept any iterable and never build the full list.

Design rules:

* **Re-iterable.**  A stream wraps a factory, not an iterator: every
  ``iter(stream)`` restarts the producer from scratch (fresh RNG state
  derived from the same seed), so a stream can be recorded to a
  :class:`~repro.workloads.trace.Trace`, replayed through two backends and
  benchmarked with warmup repeats, all yielding identical sequences.
* **Known ``n``.**  Algorithms need the vertex count before the first
  update; ``stream.n`` carries it (generators used to smuggle it through
  ``(n, updates)`` tuples).
* **Composable.**  Combinators (:meth:`concat`, :func:`interleave`,
  :meth:`rate_limit`, :meth:`chunks`, :meth:`take`) build new scenarios as
  one-liners while preserving laziness; ``chunks`` enforces the exact
  Problem 1 discipline (every chunk exactly ``chunk_size`` updates, the tail
  padded with EMPTY updates).

``length`` is a best-effort hint (``None`` when the producer cannot know it
without running); nothing downstream may rely on it for correctness.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.graph.dynamic_graph import Update

StreamFactory = Callable[[], Iterator[Update]]


class UpdateStream:
    """A lazy, re-iterable sequence of edge updates over ``n`` vertices."""

    def __init__(self, n: int, factory: StreamFactory,
                 length: Optional[int] = None, name: str = "stream") -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.n = n
        self.name = name
        self._factory = factory
        self._length = length

    # ------------------------------------------------------------- protocol
    def __iter__(self) -> Iterator[Update]:
        return self._factory()

    @property
    def length(self) -> Optional[int]:
        """Declared number of updates, or ``None`` when unknown up front."""
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        size = "?" if self._length is None else str(self._length)
        return f"UpdateStream({self.name!r}, n={self.n}, length={size})"

    # ---------------------------------------------------------- construction
    @staticmethod
    def from_updates(n: int, updates: Sequence[Update],
                     name: str = "literal") -> "UpdateStream":
        """Wrap an already materialized sequence (bridge from the old API)."""
        updates = list(updates)
        return UpdateStream(n, lambda: iter(updates), length=len(updates),
                            name=name)

    @staticmethod
    def empty(n: int) -> "UpdateStream":
        return UpdateStream(n, lambda: iter(()), length=0, name="empty")

    # ----------------------------------------------------------- combinators
    def concat(self, *others: "UpdateStream") -> "UpdateStream":
        """This stream followed by ``others``, lazily; ``n`` is the max."""
        return concat(self, *others)

    def take(self, count: int) -> "UpdateStream":
        """At most the first ``count`` updates."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")

        def produce() -> Iterator[Update]:
            it = iter(self)
            for _ in range(count):
                try:
                    yield next(it)
                except StopIteration:
                    return

        length = None if self._length is None else min(self._length, count)
        return UpdateStream(self.n, produce, length=length,
                            name=f"take({count}, {self.name})")

    def rate_limit(self, real_per_window: int, window: int) -> "UpdateStream":
        """Cap the density of real updates: within every window of ``window``
        update slots at most ``real_per_window`` are real; the remaining
        slots are EMPTY padding (the Problem 1 throttling device -- an
        adversary restricted to a fixed update rate).

        The output interleaves deterministically: each window emits its real
        updates first, then the padding.
        """
        if not 0 < real_per_window <= window:
            raise ValueError(
                f"need 0 < real_per_window <= window, got "
                f"{real_per_window} / {window}")

        def produce() -> Iterator[Update]:
            it = iter(self)
            while True:
                real: List[Update] = []
                for upd in it:
                    real.append(upd)
                    if len(real) == real_per_window:
                        break
                if not real:
                    return
                yield from real
                if len(real) == real_per_window:
                    for _ in range(window - real_per_window):
                        yield Update.empty()
                # a short final window is not padded: the stream ends

        return UpdateStream(
            self.n, produce, length=None,
            name=f"rate_limit({real_per_window}/{window}, {self.name})")

    def chunks(self, chunk_size: int, pad: bool = True) -> Iterator[List[Update]]:
        """Yield lists of exactly ``chunk_size`` updates, lazily.

        The Problem 1 discipline: when ``pad`` is true (the default) the
        final short chunk is padded with EMPTY updates so *every* chunk has
        exactly ``chunk_size`` entries.  Only one chunk is materialized at a
        time.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        chunk: List[Update] = []
        for upd in self:
            chunk.append(upd)
            if len(chunk) == chunk_size:
                yield chunk
                chunk = []
        if chunk:
            if pad:
                chunk.extend(Update.empty()
                             for _ in range(chunk_size - len(chunk)))
            yield chunk

    def chunked(self, chunk_size: int) -> "UpdateStream":
        """Flat stream whose length is a multiple of ``chunk_size`` (EMPTY
        padded), i.e. ``chunks`` re-flattened -- convenient when a consumer
        wants the padded sequence itself rather than the chunk lists."""

        def produce() -> Iterator[Update]:
            for chunk in self.chunks(chunk_size, pad=True):
                yield from chunk

        return UpdateStream(self.n, produce, length=None,
                            name=f"chunked({chunk_size}, {self.name})")

    # -------------------------------------------------------- materialization
    def materialize(self) -> List[Update]:
        """The full update list (only for small streams / the legacy API)."""
        return list(self)

    def count(self) -> int:
        """Consume one iteration and count the updates."""
        return sum(1 for _ in self)


def concat(*streams: UpdateStream) -> UpdateStream:
    """All streams in order; ``n`` is the maximum of the parts."""
    if not streams:
        raise ValueError("concat needs at least one stream")

    def produce() -> Iterator[Update]:
        for stream in streams:
            yield from stream

    lengths = [s.length for s in streams]
    length = None if any(l is None for l in lengths) else sum(lengths)
    return UpdateStream(max(s.n for s in streams), produce, length=length,
                        name=f"concat({', '.join(s.name for s in streams)})")


def interleave(*streams: UpdateStream) -> UpdateStream:
    """Round-robin merge: one update from each live stream in turn.

    Exhausted streams drop out; the merge ends when every part is done.
    Models concurrent update sources (e.g. an insertion-only feed racing a
    churn feed) without materializing either.
    """
    if not streams:
        raise ValueError("interleave needs at least one stream")

    def produce() -> Iterator[Update]:
        iterators = [iter(s) for s in streams]
        while iterators:
            still_live = []
            for it in iterators:
                try:
                    yield next(it)
                except StopIteration:
                    continue
                still_live.append(it)
            iterators = still_live

    lengths = [s.length for s in streams]
    length = None if any(l is None for l in lengths) else sum(lengths)
    return UpdateStream(
        max(s.n for s in streams), produce, length=length,
        name=f"interleave({', '.join(s.name for s in streams)})")


def stream_of(source: "UpdateStream | Iterable[Update]",
              n: Optional[int] = None) -> UpdateStream:
    """Coerce a stream-or-iterable into an :class:`UpdateStream`.

    Plain iterables (lists, generators) need an explicit ``n``; passing a
    one-shot iterator produces a one-shot stream (re-iteration yields
    nothing), so prefer real streams or sequences anywhere replay matters.
    """
    if isinstance(source, UpdateStream):
        return source
    if n is None:
        raise ValueError("wrapping a plain iterable needs an explicit n")
    if isinstance(source, Sequence):
        return UpdateStream.from_updates(n, source)
    return UpdateStream(n, lambda: iter(source), name="iterable")
