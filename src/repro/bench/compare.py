"""Baseline diffing: flag perf regressions between two suite JSON files.

``python -m repro.bench compare old.json new.json --fail-over 1.2`` matches
records by (scenario, backend, eps, workload, algorithm, smoke), computes the
``new / old`` ratio of the chosen metric (wall-clock by default, any counter
via ``--metric``) and fails when any ratio exceeds the threshold.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

Key = Tuple[object, ...]


def record_key(record: Mapping[str, object]) -> Key:
    params = record.get("params", {})
    return (record.get("scenario"), params.get("backend"), params.get("eps"),
            params.get("workload"), params.get("algorithm"),
            params.get("smoke"))


def metric_value(record: Mapping[str, object], metric: str):
    if metric == "wall_s":
        return record.get("wall_s")
    if "." in metric:
        # dotted path into a nested record section, e.g. "latency.p99"
        section, _, field = metric.partition(".")
        nested = record.get(section)
        if isinstance(nested, Mapping):
            value = nested.get(field)
            if value is not None:
                return value
    return record.get("counters", {}).get(metric)


def compare_records(old: Sequence[Mapping[str, object]],
                    new: Sequence[Mapping[str, object]],
                    fail_over: float = 1.2,
                    metric: str = "wall_s") -> List[Dict[str, object]]:
    """Per matched record: old/new metric values, ratio, regression flag.

    Records present on only one side are reported with status ``"added"`` /
    ``"removed"`` and never count as regressions (a missing baseline is not a
    slowdown).  Records where either side lacks the metric are skipped the
    same way.
    """
    old_by_key = {record_key(r): r for r in old}
    new_by_key = {record_key(r): r for r in new}
    rows: List[Dict[str, object]] = []
    for key in sorted(set(old_by_key) | set(new_by_key),
                      key=lambda k: tuple(str(part) for part in k)):
        scenario, backend = key[0], key[1]
        if key not in old_by_key:
            rows.append({"scenario": scenario, "backend": backend,
                         "status": "added", "old": None, "new": None,
                         "ratio": None, "regressed": False})
            continue
        if key not in new_by_key:
            rows.append({"scenario": scenario, "backend": backend,
                         "status": "removed", "old": None, "new": None,
                         "ratio": None, "regressed": False})
            continue
        old_v = metric_value(old_by_key[key], metric)
        new_v = metric_value(new_by_key[key], metric)
        if old_v is None or new_v is None:
            rows.append({"scenario": scenario, "backend": backend,
                         "status": "no-metric", "old": old_v, "new": new_v,
                         "ratio": None, "regressed": False})
            continue
        if old_v <= 0:
            ratio = 1.0 if new_v <= 0 else math.inf
        else:
            ratio = new_v / old_v
        rows.append({"scenario": scenario, "backend": backend,
                     "status": "compared", "old": float(old_v),
                     "new": float(new_v), "ratio": ratio,
                     "regressed": ratio > fail_over})
    return rows


def regressions(rows: Sequence[Mapping[str, object]]) -> List[Mapping[str, object]]:
    return [row for row in rows if row.get("regressed")]
