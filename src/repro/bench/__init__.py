"""Unified benchmark harness (``python -m repro.bench``).

The paper's quantitative claims are counts and trajectories (Table 1 oracle
invocations, Table 2 amortized update work), so every benchmark module
registers its sweep here as a :class:`~repro.bench.registry.Scenario`.  One
runner executes any scenario with warmup/repeat timing and
:class:`~repro.instrumentation.counters.Counters` capture, emits the shared
JSON record schema (``BENCH_<suite>.json`` at the repo root, per-scenario
files under ``benchmarks/results/``), and a compare mode diffs two runs so
perf regressions fail loudly.  See the "Benchmark harness" section of
ARCHITECTURE.md.
"""

from repro.bench.registry import (
    RunSpec,
    Scenario,
    get_scenario,
    register,
    scenarios,
    smoke_mode,
    suite_names,
    unregister,
)
from repro.bench.runner import (
    expand_all,
    expand_specs,
    run_scenario,
    run_scenarios,
)
from repro.bench.results import (
    RECORD_KEYS,
    find_repo_root,
    load_records,
    validate_record,
    write_suite,
)
from repro.bench.compare import compare_records, regressions
from repro.bench.discovery import load_benchmark_modules
from repro.bench.latency import LatencyRecorder, summarize_ns

__all__ = [
    "LatencyRecorder",
    "RECORD_KEYS",
    "RunSpec",
    "Scenario",
    "compare_records",
    "expand_all",
    "expand_specs",
    "find_repo_root",
    "get_scenario",
    "load_benchmark_modules",
    "load_records",
    "register",
    "regressions",
    "run_scenario",
    "run_scenarios",
    "scenarios",
    "smoke_mode",
    "suite_names",
    "summarize_ns",
    "unregister",
    "validate_record",
    "write_suite",
]
