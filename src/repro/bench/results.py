"""JSON result emission and loading for the benchmark harness.

A suite run writes two things:

* ``BENCH_<suite>.json`` at the repo root -- the machine-readable trajectory
  the regression tooling diffs (``python -m repro.bench compare``), and
* one ``benchmarks/results/<scenario>.json`` per scenario -- the same records
  grouped per scenario, next to the historical ``*.txt`` tables.

``REPRO_BENCH_ROOT`` overrides repo-root discovery and ``REPRO_BENCH_OUT``
redirects all output (tests point it at a tmpdir so runs stay side-effect
free).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

RECORD_KEYS = ("scenario", "params", "wall_s", "counters", "python",
               "timestamp")


def find_repo_root() -> Path:
    """The directory holding ``benchmarks/`` (and the ``BENCH_*.json`` files)."""
    env = os.environ.get("REPRO_BENCH_ROOT")
    if env:
        return Path(env)
    # src/repro/bench/results.py -> src/repro/bench -> src/repro -> src -> root
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "benchmarks").is_dir():
        return candidate
    return Path.cwd()


def output_root() -> Path:
    env = os.environ.get("REPRO_BENCH_OUT")
    return Path(env) if env else find_repo_root()


def validate_record(record: Mapping[str, object]) -> Mapping[str, object]:
    """Check one record against the schema; returns it unchanged."""
    missing = [key for key in RECORD_KEYS if key not in record]
    if missing:
        raise ValueError(f"benchmark record is missing keys {missing}: "
                         f"{sorted(record)}")
    if not isinstance(record["params"], Mapping):
        raise ValueError("record 'params' must be a mapping")
    if not isinstance(record["counters"], Mapping):
        raise ValueError("record 'counters' must be a mapping")
    if not isinstance(record["wall_s"], (int, float)):
        raise ValueError("record 'wall_s' must be a number")
    if "latency" in record and not isinstance(record["latency"], Mapping):
        # optional section emitted by dynamic scenarios that sample
        # per-update latency: {"p50": s, "p99": s, "max": s, "count": n}
        raise ValueError("record 'latency' must be a mapping when present")
    return record


def suite_payload(records: Sequence[Mapping[str, object]], suite: str,
                  meta: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "suite": suite, "schema": list(RECORD_KEYS),
        "records": [validate_record(r) for r in records]}
    if meta:
        payload["meta"] = dict(meta)
    return payload


def write_suite(records: Sequence[Mapping[str, object]], suite: str,
                root: Path = None,
                meta: Optional[Mapping[str, object]] = None) -> Path:
    """Write ``BENCH_<suite>.json`` plus per-scenario record files.

    ``meta`` (optional) lands as a suite-level ``"meta"`` object in the
    suite file only -- the CLI records how the suite was executed there
    (``jobs``, total ``suite_wall_s``), which per-record fields cannot
    express.  Returns the path of the suite file.
    """
    root = Path(root) if root is not None else output_root()
    root.mkdir(parents=True, exist_ok=True)
    suite_path = root / f"BENCH_{suite}.json"
    with open(suite_path, "w", encoding="utf-8") as handle:
        json.dump(suite_payload(records, suite, meta=meta), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")

    results_dir = root / "benchmarks" / "results"
    if not (root / "benchmarks").is_dir():
        results_dir = root / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    by_scenario: Dict[str, List[Mapping[str, object]]] = {}
    for record in records:
        by_scenario.setdefault(str(record["scenario"]), []).append(record)
    for name, recs in by_scenario.items():
        with open(results_dir / f"{name}.json", "w", encoding="utf-8") as handle:
            json.dump(suite_payload(recs, suite), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    return suite_path


def load_records(path) -> List[Dict[str, object]]:
    """Load and validate records from a suite file (or a bare record list)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    records = payload.get("records") if isinstance(payload, Mapping) else payload
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a record list or a "
                         "{'records': [...]} payload")
    return [dict(validate_record(r)) for r in records]
