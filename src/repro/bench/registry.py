"""Scenario registry for the unified benchmark harness.

A *scenario* is one registered sweep of a benchmark module (``benchmarks/
bench_*.py``); a :class:`RunSpec` pins one concrete execution of it
(workload x algorithm x eps x backend x seed x repeats).  The runner
(:mod:`repro.bench.runner`) times scenario executions and turns them into the
JSON records that ``python -m repro.bench`` emits.

Scenarios register themselves at import time with the :func:`register`
decorator; :mod:`repro.bench.discovery` imports every ``bench_*.py`` module so
the registry is populated before a CLI run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.instrumentation.counters import Counters


def smoke_mode() -> bool:
    """Whether ``REPRO_BENCH_SMOKE=1`` asks for seconds-scale configurations."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@dataclass(frozen=True)
class RunSpec:
    """One concrete scenario execution.

    ``eps`` is ``None`` when the caller did not pin it; scenarios resolve
    their own default via :meth:`resolved_eps`.  ``workload`` / ``algorithm``
    are free-form selectors a scenario may interpret (most have a single
    natural workload and ignore them).
    """

    scenario: str
    suite: str
    workload: str = "default"
    algorithm: str = "default"
    eps: Optional[float] = None
    backend: str = "adjset"
    seed: int = 0
    repeats: int = 1
    warmup: int = 0
    smoke: bool = False

    def resolved_eps(self, default: float = 0.25) -> float:
        return default if self.eps is None else self.eps

    def params(self) -> Dict[str, object]:
        """The ``params`` object of the emitted JSON record."""
        return {
            "suite": self.suite,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "eps": self.eps,
            "backend": self.backend,
            "seed": self.seed,
            "repeats": max(1, self.repeats),
            "warmup": max(0, self.warmup),
            "smoke": self.smoke,
        }


#: A scenario body: runs the measured work, charging ``counters``; any mapping
#: it returns is merged into the record's ``counters`` (derived values such as
#: approximation ratios that no library counter tracks).
ScenarioFn = Callable[[RunSpec, Counters], Optional[Mapping[str, float]]]


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark sweep."""

    name: str
    suite: str
    fn: ScenarioFn
    description: str = ""
    #: backends the scenario can meaningfully sweep; a plain run executes all
    #: of them, ``--backend`` restricts to one.
    backends: Tuple[str, ...] = ("adjset",)
    #: which free-form RunSpec selectors ("workload", "algorithm") the
    #: scenario interprets; passing a non-default value for an undeclared
    #: selector is rejected by the runner, because the emitted record carries
    #: the selector verbatim and running anything else would mislabel it.
    selectors: Tuple[str, ...] = ()


_REGISTRY: Dict[str, Scenario] = {}


def register(name: str, suite: str, description: str = "",
             backends: Tuple[str, ...] = ("adjset",),
             selectors: Tuple[str, ...] = ()):
    """Decorator registering ``fn`` as scenario ``name`` in ``suite``.

    Re-registering a name overwrites the previous entry, so a benchmark
    module imported under two names (``__main__`` plus discovery) stays
    idempotent.
    """

    def decorator(fn: ScenarioFn) -> ScenarioFn:
        _REGISTRY[name] = Scenario(name=name, suite=suite, fn=fn,
                                   description=description,
                                   backends=tuple(backends),
                                   selectors=tuple(selectors))
        return fn

    return decorator


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; registered: "
                       f"{sorted(_REGISTRY) or '(none)'}") from None


def scenarios(suite: Optional[str] = None) -> List[Scenario]:
    """All registered scenarios (optionally restricted to one suite), by name."""
    out = [s for s in _REGISTRY.values() if suite is None or s.suite == suite]
    return sorted(out, key=lambda s: s.name)


def suite_names() -> List[str]:
    return sorted({s.suite for s in _REGISTRY.values()})
