"""Per-update latency measurement for the dynamic benchmark scenarios.

``wall_s`` measures a whole scenario; the dynamic maintainers' interesting
quantity is the *distribution* of single-update latencies -- the p99 is
dominated by the epoch rebuilds, exactly what the incremental-repair work
targets.  A scenario collects per-update samples with
:class:`LatencyRecorder` and returns ``{"latency": recorder.summary()}``;
the runner lifts that mapping into a top-level ``"latency"`` section of the
BENCH record (``{"p50": ..., "p99": ..., "max": ..., "count": ...}``,
seconds), which the compare tool reaches with the dotted metric
``"latency.p99"`` and the smoke gate regresses against committed baselines.

Percentiles use the nearest-rank definition (the value at rank
``ceil(q/100 * N)`` of the sorted samples) -- an actual observed sample, no
interpolation, stable for the heavy-tailed mixes these scenarios produce.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Sequence

#: the percentiles every latency summary reports
PERCENTILES = (50, 99)


def percentile_ns(sorted_samples: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        raise ValueError("no latency samples recorded")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[rank - 1]


def summarize_ns(samples_ns: Sequence[int]) -> Dict[str, float]:
    """Summary mapping (seconds) of nanosecond samples: p50/p99/max/count."""
    ordered = sorted(samples_ns)
    summary = {f"p{q}": percentile_ns(ordered, q) / 1e9 for q in PERCENTILES}
    summary["max"] = ordered[-1] / 1e9
    summary["count"] = float(len(ordered))
    return summary


class LatencyRecorder:
    """Accumulates per-operation wall-clock samples (nanosecond resolution)."""

    __slots__ = ("samples_ns",)

    def __init__(self) -> None:
        self.samples_ns: List[int] = []

    def record_ns(self, elapsed_ns: int) -> None:
        self.samples_ns.append(elapsed_ns)

    def measure(self, fn: Callable[[], object]) -> object:
        """Time one call of ``fn`` and record it; returns ``fn()``'s result."""
        start = time.perf_counter_ns()
        result = fn()
        self.samples_ns.append(time.perf_counter_ns() - start)
        return result

    def summary(self) -> Dict[str, float]:
        return summarize_ns(self.samples_ns)
