"""Timing runner: executes scenarios and produces JSON-ready records.

A record is the schema every emitter/consumer agrees on::

    {"scenario": str, "params": {...}, "wall_s": float,
     "counters": {...}, "python": str, "timestamp": str}

``wall_s`` is the best (minimum) wall-clock over ``repeats`` timed executions
after ``warmup`` untimed ones -- minimum, not mean, because scheduling noise
only ever adds time.  ``counters`` merges the :class:`Counters` bag the
scenario charged during the fastest repeat with whatever derived values the
scenario function returned.

Independent specs have no shared state (each run charges a fresh
:class:`Counters` bag), so ``run_scenarios(jobs=N)`` fans them out over a
``ProcessPoolExecutor``.  The determinism contract: records come back merged
in *spec order* -- the exact order the serial loop would produce -- so the
emitted JSON is identical regardless of ``jobs`` except for ``wall_s`` and
``timestamp``.  When the caller opts in by passing a ``failures`` list, a
failing scenario is isolated into a failure entry instead of aborting the
suite, in both the serial and the pooled path; without it the first failure
raises (the historical contract).
"""

from __future__ import annotations

import platform
import time
import traceback
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exec.pool import ERROR, OK, run_spec_task
from repro.instrumentation.counters import Counters
from repro.bench.registry import RunSpec, Scenario


def expand_specs(scenario: Scenario, *, backend: Optional[str] = None,
                 eps: Optional[float] = None, seed: int = 0, repeats: int = 1,
                 warmup: int = 0, smoke: bool = False,
                 workload: str = "default",
                 algorithm: str = "default") -> List[RunSpec]:
    """One :class:`RunSpec` per backend the scenario will run on.

    Without ``backend`` the scenario's full declared backend sweep runs; with
    it, the sweep is restricted to that backend when the scenario supports it
    and falls back to the scenario's native (first declared) backend when it
    does not -- the emitted record always names the backend actually used.
    """
    for selector, value in (("workload", workload), ("algorithm", algorithm)):
        if value != "default" and selector not in scenario.selectors:
            raise ValueError(
                f"scenario {scenario.name!r} does not interpret the "
                f"{selector} selector (got {value!r}); the emitted record "
                "would mislabel what actually ran")
    if backend is None:
        backends: Iterable[str] = scenario.backends
    elif backend in scenario.backends:
        backends = (backend,)
    else:
        backends = (scenario.backends[0],)
    return [RunSpec(scenario=scenario.name, suite=scenario.suite,
                    workload=workload, algorithm=algorithm, eps=eps,
                    backend=b, seed=seed, repeats=repeats, warmup=warmup,
                    smoke=smoke)
            for b in backends]


_runtime_primed = False


def _prime_runtime() -> None:
    """Exercise the lazily initialised library fast paths once per process.

    The first NumPy bulk call a process makes (``fromiter``/``unique``/ufunc
    dispatch set-up) costs tens of milliseconds.  Untamed, that one-time cost
    lands inside whichever spec a (pooled or serial) run happens to execute
    first and skews its ``wall_s`` -- the committed baseline's CSR rows
    carried exactly that artefact.  Priming is cheap (<2 ms warm), uniform
    across jobs settings, and keeps records measuring the algorithm rather
    than library initialisation.
    """
    global _runtime_primed
    if _runtime_primed:
        return
    _runtime_primed = True
    try:
        from repro.graph.graph import Graph

        for backend in ("adjset", "csr"):
            g = Graph(4, [(0, 1), (1, 2), (2, 3)], backend=backend)
            g.edge_list()
            g.arc_list()
            g.adjacency_matrix()
            g.induced_subgraph([0, 1, 2])
    except Exception:  # pragma: no cover - priming must never fail a run
        pass


def run_scenario(scenario: Scenario, spec: RunSpec) -> Dict[str, object]:
    """Execute one spec (warmup + repeats) and return its record."""
    _prime_runtime()
    for _ in range(max(0, spec.warmup)):
        scenario.fn(spec, Counters())

    best_wall: Optional[float] = None
    best_counters: Dict[str, float] = {}
    best_latency: Optional[Dict[str, float]] = None
    for _ in range(max(1, spec.repeats)):
        counters = Counters()
        start = time.perf_counter()
        values = scenario.fn(spec, counters)
        wall = time.perf_counter() - start
        merged = counters.as_dict()
        latency: Optional[Dict[str, float]] = None
        if values:
            values = dict(values)
            # reserved key: a {"p50", "p99", "max", ...} mapping of per-update
            # latencies (seconds) lands as a top-level record section rather
            # than being flattened into the scalar counter bag
            raw_latency = values.pop("latency", None)
            if raw_latency is not None:
                latency = {str(k): float(v) for k, v in raw_latency.items()}
            for key, value in values.items():
                merged[str(key)] = float(value)
        if best_wall is None or wall < best_wall:
            best_wall, best_counters, best_latency = wall, merged, latency

    record: Dict[str, object] = {
        "scenario": scenario.name,
        "params": spec.params(),
        "wall_s": best_wall,
        "counters": best_counters,
        "python": platform.python_version(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if best_latency is not None:
        record["latency"] = best_latency
    return record


def expand_all(scens: Iterable[Scenario],
               **spec_kwargs) -> List[Tuple[Scenario, RunSpec]]:
    """The deterministic (scenario, spec) work list of a suite run.

    This order is the merge order of every run mode: serial execution walks
    it directly, and a pooled run reassembles worker results back into it.
    """
    return [(scenario, spec) for scenario in scens
            for spec in expand_specs(scenario, **spec_kwargs)]


def _failure(scenario: Scenario, spec: RunSpec, error: str) -> Dict[str, str]:
    return {"scenario": scenario.name, "backend": spec.backend,
            "error": error}


def profile_specs(work: Iterable[Tuple[Scenario, RunSpec]], out_dir,
                  top: int = 30, echo_top: int = 10) -> List[str]:
    """cProfile one execution of each (scenario, spec); write text reports.

    One ``profile_<scenario>_<backend>.txt`` per spec lands in ``out_dir``
    (created on demand), holding the top-``top`` cumulative-time rows --
    the artefact future perf PRs cite instead of guessing at hotspots.
    The top-``echo_top`` rows are also echoed to stdout so a CI log shows
    the hotspots without fishing the report file out of the artefacts
    (``echo_top=0`` silences the echo).  Profiled executions are separate
    from the timed repeats, so ``wall_s`` in the emitted records is never
    polluted by profiler overhead.  Returns the written paths.
    """
    import cProfile
    import io
    import pstats
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: List[str] = []
    for scenario, spec in work:
        profiler = cProfile.Profile()
        profiler.enable()
        scenario.fn(spec, Counters())
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        path = out / f"profile_{scenario.name}_{spec.backend}.txt"
        path.write_text(
            f"# cProfile of scenario {scenario.name!r} "
            f"(backend={spec.backend}, smoke={spec.smoke}, seed={spec.seed}); "
            f"top {top} by cumulative time\n" + buffer.getvalue(),
            encoding="utf-8")
        paths.append(str(path))
        if echo_top > 0:
            echo = io.StringIO()
            pstats.Stats(profiler, stream=echo).sort_stats(
                "cumulative").print_stats(echo_top)
            print(f"-- hotspots: {scenario.name} (backend={spec.backend}), "
                  f"top {echo_top} by cumulative time --")
            print(echo.getvalue().rstrip())
    return paths


def run_scenarios(scens: Iterable[Scenario], progress=None, jobs: int = 1,
                  totals: Optional[Counters] = None,
                  failures: Optional[List[Dict[str, str]]] = None,
                  **spec_kwargs) -> List[Dict[str, object]]:
    """Run every scenario over its expanded specs; returns all records.

    ``jobs`` > 1 executes the expanded specs in a ``ProcessPoolExecutor``
    (each worker returns its record with the spec's ``Counters`` snapshot
    inside); records are merged back in spec order, so output is
    byte-identical to a serial run modulo ``wall_s``/``timestamp``.

    ``progress`` (optional) is called with each finished record in spec
    order, as results become available -- the CLI uses it to stream one
    line per run.  ``totals`` (optional) accumulates every record's
    counters into one suite-level bag.

    Failure handling: pass ``failures`` (a list) to isolate a spec whose
    execution raises into an entry (``{"scenario", "backend", "error"}``)
    while the rest of the suite completes.  Without it, the first failure
    raises -- the historical contract; scenarios must never go missing from
    the result silently.  Spec *expansion* errors (unknown selectors)
    always raise: they are usage errors, not scenario failures.
    """
    work = expand_all(scens, **spec_kwargs)
    records: List[Dict[str, object]] = []

    def handle(scenario: Scenario, spec: RunSpec, tag: str, payload) -> None:
        if tag != OK:
            if failures is None:
                raise RuntimeError(
                    f"scenario {scenario.name!r} (backend {spec.backend}) "
                    f"failed:\n{payload}")
            failures.append(_failure(scenario, spec, str(payload)))
            return
        if totals is not None:
            totals.merge(payload["counters"])
        records.append(payload)
        if progress is not None:
            progress(payload)

    if jobs <= 1 or len(work) <= 1:
        for scenario, spec in work:
            if failures is None:
                # historical raise-on-error contract: let it propagate as-is
                handle(scenario, spec, OK, run_scenario(scenario, spec))
                continue
            try:
                outcome: Tuple[str, object] = (OK, run_scenario(scenario, spec))
            except Exception:  # noqa: BLE001 - isolate per scenario
                # full traceback, matching what pooled workers ship back
                outcome = (ERROR, traceback.format_exc())
            handle(scenario, spec, *outcome)
    else:
        from concurrent.futures import ProcessPoolExecutor

        from repro.bench.results import find_repo_root

        root = str(find_repo_root())
        tasks = [(scenario.name, spec, root) for scenario, spec in work]
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            futures = [pool.submit(run_spec_task, task) for task in tasks]
            # walk futures in submission order == spec order: results stream
            # deterministically as the slowest-prefix future completes
            for (scenario, spec), future in zip(work, futures):
                try:
                    tag, payload = future.result()
                except Exception as exc:  # noqa: BLE001 - broken worker
                    tag, payload = (
                        ERROR, f"worker died: {type(exc).__name__}: {exc}")
                handle(scenario, spec, tag, payload)
    return records
