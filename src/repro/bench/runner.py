"""Timing runner: executes scenarios and produces JSON-ready records.

A record is the schema every emitter/consumer agrees on::

    {"scenario": str, "params": {...}, "wall_s": float,
     "counters": {...}, "python": str, "timestamp": str}

``wall_s`` is the best (minimum) wall-clock over ``repeats`` timed executions
after ``warmup`` untimed ones -- minimum, not mean, because scheduling noise
only ever adds time.  ``counters`` merges the :class:`Counters` bag the
scenario charged during the fastest repeat with whatever derived values the
scenario function returned.

Independent specs have no shared state (each run charges a fresh
:class:`Counters` bag), so ``run_scenarios(jobs=N)`` fans them out over a
``ProcessPoolExecutor``.  The determinism contract: records come back merged
in *spec order* -- the exact order the serial loop would produce -- so the
emitted JSON is identical regardless of ``jobs`` except for ``wall_s`` and
``timestamp``.  When the caller opts in by passing a ``failures`` list, a
failing scenario is isolated into a failure entry instead of aborting the
suite, in both the serial and the pooled path; without it the first failure
raises (the historical contract).
"""

from __future__ import annotations

import platform
import time
import traceback
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exec.pool import ERROR, OK, TIMEOUT, fault_site, run_spec_task
from repro.instrumentation.counters import Counters
from repro.bench.registry import RunSpec, Scenario
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.timeouts import TaskTimeout, deadline

#: extra wall-clock a pooled worker gets beyond ``timeout_s`` before the
#: parent declares it hung and terminates the pool (the worker's own SIGALRM
#: should have fired well within this window)
HUNG_WORKER_GRACE_S = 5.0


class InjectedCrash(RuntimeError):
    """A :class:`FaultPlan` crash landing in the serial runner.

    A pool worker models a planned crash as ``os._exit`` (a real process
    death); the serial runner cannot kill itself, so the same fault surfaces
    as this exception and goes through the identical retry path.
    """




def expand_specs(scenario: Scenario, *, backend: Optional[str] = None,
                 eps: Optional[float] = None, seed: int = 0, repeats: int = 1,
                 warmup: int = 0, smoke: bool = False,
                 workload: str = "default",
                 algorithm: str = "default") -> List[RunSpec]:
    """One :class:`RunSpec` per backend the scenario will run on.

    Without ``backend`` the scenario's full declared backend sweep runs; with
    it, the sweep is restricted to that backend when the scenario supports it
    and falls back to the scenario's native (first declared) backend when it
    does not -- the emitted record always names the backend actually used.
    """
    for selector, value in (("workload", workload), ("algorithm", algorithm)):
        if value != "default" and selector not in scenario.selectors:
            raise ValueError(
                f"scenario {scenario.name!r} does not interpret the "
                f"{selector} selector (got {value!r}); the emitted record "
                "would mislabel what actually ran")
    if backend is None:
        backends: Iterable[str] = scenario.backends
    elif backend in scenario.backends:
        backends = (backend,)
    else:
        backends = (scenario.backends[0],)
    return [RunSpec(scenario=scenario.name, suite=scenario.suite,
                    workload=workload, algorithm=algorithm, eps=eps,
                    backend=b, seed=seed, repeats=repeats, warmup=warmup,
                    smoke=smoke)
            for b in backends]


_runtime_primed = False


def _prime_runtime() -> None:
    """Exercise the lazily initialised library fast paths once per process.

    The first NumPy bulk call a process makes (``fromiter``/``unique``/ufunc
    dispatch set-up) costs tens of milliseconds.  Untamed, that one-time cost
    lands inside whichever spec a (pooled or serial) run happens to execute
    first and skews its ``wall_s`` -- the committed baseline's CSR rows
    carried exactly that artefact.  Priming is cheap (<2 ms warm), uniform
    across jobs settings, and keeps records measuring the algorithm rather
    than library initialisation.
    """
    global _runtime_primed
    if _runtime_primed:
        return
    _runtime_primed = True
    try:
        from repro.graph.graph import Graph

        for backend in ("adjset", "csr"):
            g = Graph(4, [(0, 1), (1, 2), (2, 3)], backend=backend)
            g.edge_list()
            g.arc_list()
            g.adjacency_matrix()
            g.induced_subgraph([0, 1, 2])
    except Exception:  # pragma: no cover  # repro: allow[swallowed-exception] -- best-effort cache warmup: a priming failure must not fail the run, and the real scenario will surface any genuine breakage
        pass


def run_scenario(scenario: Scenario, spec: RunSpec) -> Dict[str, object]:
    """Execute one spec (warmup + repeats) and return its record."""
    _prime_runtime()
    for _ in range(max(0, spec.warmup)):
        scenario.fn(spec, Counters())

    best_wall: Optional[float] = None
    best_counters: Dict[str, float] = {}
    best_latency: Optional[Dict[str, float]] = None
    for _ in range(max(1, spec.repeats)):
        counters = Counters()
        start = time.perf_counter()
        values = scenario.fn(spec, counters)
        wall = time.perf_counter() - start
        merged = counters.as_dict()
        latency: Optional[Dict[str, float]] = None
        if values:
            values = dict(values)
            # reserved key: a {"p50", "p99", "max", ...} mapping of per-update
            # latencies (seconds) lands as a top-level record section rather
            # than being flattened into the scalar counter bag
            raw_latency = values.pop("latency", None)
            if raw_latency is not None:
                latency = {str(k): float(v) for k, v in raw_latency.items()}
            for key, value in values.items():
                merged[str(key)] = float(value)
        if best_wall is None or wall < best_wall:
            best_wall, best_counters, best_latency = wall, merged, latency

    record: Dict[str, object] = {
        "scenario": scenario.name,
        "params": spec.params(),
        "wall_s": best_wall,
        "counters": best_counters,
        "python": platform.python_version(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if best_latency is not None:
        record["latency"] = best_latency
    return record


def expand_all(scens: Iterable[Scenario],
               **spec_kwargs) -> List[Tuple[Scenario, RunSpec]]:
    """The deterministic (scenario, spec) work list of a suite run.

    This order is the merge order of every run mode: serial execution walks
    it directly, and a pooled run reassembles worker results back into it.
    """
    return [(scenario, spec) for scenario in scens
            for spec in expand_specs(scenario, **spec_kwargs)]


def _failure(scenario: Scenario, spec: RunSpec, error: str) -> Dict[str, str]:
    return {"scenario": scenario.name, "backend": spec.backend,
            "error": error}


def profile_specs(work: Iterable[Tuple[Scenario, RunSpec]], out_dir,
                  top: int = 30, echo_top: int = 10) -> List[str]:
    """cProfile one execution of each (scenario, spec); write text reports.

    One ``profile_<scenario>_<backend>.txt`` per spec lands in ``out_dir``
    (created on demand), holding the top-``top`` cumulative-time rows --
    the artefact future perf PRs cite instead of guessing at hotspots.
    The top-``echo_top`` rows are also echoed to stdout so a CI log shows
    the hotspots without fishing the report file out of the artefacts
    (``echo_top=0`` silences the echo).  Profiled executions are separate
    from the timed repeats, so ``wall_s`` in the emitted records is never
    polluted by profiler overhead.  Returns the written paths.

    Packed-bitset kernel timing (:mod:`repro.core.kernels`) is enabled for
    the profiled execution; any kernels the scenario hit are appended to the
    report as a per-kernel ``calls / total / per-call`` table.
    """
    import cProfile
    import io
    import pstats
    from pathlib import Path

    from repro.core import kernels

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: List[str] = []
    for scenario, spec in work:
        kernels.reset_timings()
        kernels.enable_timing(True)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            scenario.fn(spec, Counters())
        finally:
            profiler.disable()
            kernels.enable_timing(False)
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        kernel_rows = kernels.timing_table()
        if kernel_rows:
            buffer.write(f"\n# packed-bitset kernels "
                         f"(backend={kernels.active_backend()}), "
                         f"descending by total time\n")
            buffer.write(f"{'kernel':<24}{'calls':>10}{'total_ms':>12}"
                         f"{'per_call_us':>14}\n")
            for name, calls, total_ns in kernel_rows:
                buffer.write(f"{name:<24}{calls:>10}{total_ns / 1e6:>12.3f}"
                             f"{total_ns / max(1, calls) / 1e3:>14.3f}\n")
        path = out / f"profile_{scenario.name}_{spec.backend}.txt"
        path.write_text(
            f"# cProfile of scenario {scenario.name!r} "
            f"(backend={spec.backend}, smoke={spec.smoke}, seed={spec.seed}); "
            f"top {top} by cumulative time\n" + buffer.getvalue(),
            encoding="utf-8")
        paths.append(str(path))
        if echo_top > 0:
            echo = io.StringIO()
            pstats.Stats(profiler, stream=echo).sort_stats(
                "cumulative").print_stats(echo_top)
            print(f"-- hotspots: {scenario.name} (backend={spec.backend}), "
                  f"top {echo_top} by cumulative time --")
            print(echo.getvalue().rstrip())
    return paths


def _terminate_pool(pool) -> None:
    """Tear down a pool whose workers cannot be trusted to exit on their own.

    ``shutdown(wait=True)`` on a pool with a hung worker never returns, so
    the workers are terminated first.  Reaching into ``_processes`` is the
    only way the stdlib pool exposes its children; the attribute has been
    stable since 3.3 and the fallback (plain non-waiting shutdown) merely
    leaks the hung process until interpreter exit.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001  # repro: allow[swallowed-exception] -- terminating an already-dead child raises; the pool is being torn down for a failure that is recorded by the caller
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_serial_spec(scenario: Scenario, spec: RunSpec,
                     timeout_s: Optional[float], faults: Optional[FaultPlan],
                     policy: RetryPolicy, bump) -> Tuple[str, object]:
    """One spec through the serial path's fault/timeout/retry pipeline."""
    site = fault_site(scenario.name, spec)
    failures_seen = 0
    while True:
        try:
            if faults is not None:
                if faults.crashes_task(site, failures_seen):
                    raise InjectedCrash(
                        f"fault plan crashed {site} "
                        f"(attempt {failures_seen})")
                delay = faults.task_delay(site)
                if delay > 0:
                    time.sleep(delay)
            with deadline(timeout_s, label=f"scenario {scenario.name}"):
                return (OK, run_scenario(scenario, spec))
        except (TaskTimeout, InjectedCrash) as exc:
            bump("timeouts" if isinstance(exc, TaskTimeout)
                 else "worker_crashes")
            failures_seen += 1
            if not policy.retryable(failures_seen):
                return (ERROR, str(exc))
            bump("retries")
            backoff = policy.backoff_s(failures_seen)
            if backoff > 0:
                time.sleep(backoff)


def run_scenarios(scens: Iterable[Scenario], progress=None, jobs: int = 1,
                  totals: Optional[Counters] = None,
                  failures: Optional[List[Dict[str, str]]] = None,
                  timeout_s: Optional[float] = None,
                  retry: Optional[RetryPolicy] = None,
                  faults: Optional[FaultPlan] = None,
                  resilience: Optional[Dict[str, int]] = None,
                  **spec_kwargs) -> List[Dict[str, object]]:
    """Run every scenario over its expanded specs; returns all records.

    ``jobs`` > 1 executes the expanded specs in a ``ProcessPoolExecutor``
    (each worker returns its record with the spec's ``Counters`` snapshot
    inside); records are merged back in spec order, so output is
    byte-identical to a serial run modulo ``wall_s``/``timestamp``.

    ``progress`` (optional) is called with each finished record in spec
    order, as results become available -- the CLI uses it to stream one
    line per run.  ``totals`` (optional) accumulates every record's
    counters into one suite-level bag.

    Failure handling: pass ``failures`` (a list) to isolate a spec whose
    execution raises into an entry (``{"scenario", "backend", "error"}``)
    while the rest of the suite completes.  Without it, the first failure
    raises -- the historical contract; scenarios must never go missing from
    the result silently.  Spec *expansion* errors (unknown selectors)
    always raise: they are usage errors, not scenario failures.

    Resilience (see ARCHITECTURE.md "Fault model & recovery"):

    * ``timeout_s`` bounds each spec's wall clock.  Serially (and inside
      every pool worker) the deadline is a SIGALRM; pooled, the parent
      additionally enforces ``timeout_s`` plus a queueing allowance plus
      :data:`HUNG_WORKER_GRACE_S` from outside, terminating a wedged
      worker the signal could not interrupt.
    * ``retry`` bounds how often a crashed/timed-out spec is re-attempted
      (default: never) with the policy's deterministic backoff between
      attempts.  Only crashes and timeouts retry; a scenario that raises
      is a bug and fails fast as before.
    * A hard worker death (``BrokenProcessPool``) no longer aborts the
      suite: already-finished futures are harvested, the pool is rebuilt,
      and every unfinished spec re-runs in *isolation* (one single-worker
      pool at a time) so the breakage is blamed on exactly the spec that
      caused it -- that spec degrades to an error record, innocent
      bystanders just re-run.
    * ``faults`` injects a deterministic
      :class:`~repro.resilience.faults.FaultPlan` (worker crashes via
      ``os._exit`` in pool workers, :class:`InjectedCrash` serially, plus
      straggler delays) -- the chaos path the resilience tests drive.
    * ``resilience`` (a dict) accumulates event counts: ``worker_crashes``,
      ``hung_workers``, ``timeouts``, ``retries``, ``pool_rebuilds``,
      ``isolated_specs``.
    """
    work = expand_all(scens, **spec_kwargs)
    records: List[Dict[str, object]] = []
    policy = retry if retry is not None else RetryPolicy()
    stats: Dict[str, int] = resilience if resilience is not None else {}

    def bump(key: str, amount: int = 1) -> None:
        stats[key] = stats.get(key, 0) + amount

    def handle(scenario: Scenario, spec: RunSpec, tag: str, payload) -> None:
        if tag != OK:
            if failures is None:
                raise RuntimeError(
                    f"scenario {scenario.name!r} (backend {spec.backend}) "
                    f"failed:\n{payload}")
            failures.append(_failure(scenario, spec, str(payload)))
            return
        if totals is not None:
            totals.merge(payload["counters"])
        records.append(payload)
        if progress is not None:
            progress(payload)

    if jobs <= 1 or len(work) <= 1:
        for scenario, spec in work:
            if failures is None and faults is None and timeout_s is None:
                # historical raise-on-error contract: let it propagate as-is
                handle(scenario, spec, OK, run_scenario(scenario, spec))
                continue
            try:
                outcome = _run_serial_spec(scenario, spec, timeout_s, faults,
                                           policy, bump)
            except Exception:  # noqa: BLE001 - isolate per scenario
                if failures is None:
                    # historical raise-on-error contract
                    raise
                # full traceback, matching what pooled workers ship back
                outcome = (ERROR, traceback.format_exc())
            handle(scenario, spec, *outcome)
        return records

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout

    from repro.bench.results import find_repo_root

    root = str(find_repo_root())
    completed: Dict[int, Tuple[str, object]] = {}
    emitted = 0

    def emit_ready() -> None:
        # stream results to handle() in spec order as they become available
        nonlocal emitted
        while emitted < len(work) and emitted in completed:
            scenario, spec = work[emitted]
            outcome = completed[emitted]
            emitted += 1
            handle(scenario, spec, *outcome)

    failures_seen = [0] * len(work)

    def make_task(index: int):
        scenario, spec = work[index]
        return (scenario.name, spec, root, timeout_s, faults,
                failures_seen[index])

    pending = list(range(len(work)))
    isolate = False  # after a pool breakage: one spec per pool, exact blame
    while pending:
        batch, remainder = (pending[:1], pending[1:]) if isolate \
            else (pending, [])
        workers = min(jobs, len(batch))
        pool = ProcessPoolExecutor(max_workers=workers)
        started = time.monotonic()
        futures = {i: pool.submit(run_spec_task, make_task(i))
                   for i in batch}
        broken = False
        survivors: List[int] = []

        def note_failure(index: int, kind: str, error: str) -> None:
            # one definitive failure of spec ``index``: retry or record
            bump(kind)
            failures_seen[index] += 1
            if policy.retryable(failures_seen[index]):
                bump("retries")
                survivors.append(index)
            else:
                completed[index] = (ERROR, error)

        def walk_one(position: int, i: int) -> bool:
            """Resolve one future; returns whether the pool broke under it."""
            scenario, spec = work[i]
            if broken:
                # the pool is gone; harvest finished results, requeue the rest
                if futures[i].done():
                    try:
                        completed[i] = futures[i].result(timeout=0)
                        return True
                    except Exception:  # noqa: BLE001  # repro: allow[swallowed-exception] -- a done-but-raising future in a broken pool means this spec died mid-run; it is requeued in survivors and the crash is re-observed and blamed on the isolated retry
                        pass
                survivors.append(i)
                return True
            wait: Optional[float] = None
            if timeout_s is not None:
                # a queued task waits for up to position // workers
                # predecessors on its worker, each bounded by timeout_s
                budget = HUNG_WORKER_GRACE_S + \
                    timeout_s * (position // workers + 1)
                wait = max(0.1, started + budget - time.monotonic())
            try:
                tag, payload = futures[i].result(timeout=wait)
            except FuturesTimeout:
                # the worker's own SIGALRM never fired: it is wedged beyond
                # signals; only killing the pool reclaims the worker
                note_failure(i, "hung_workers",
                             f"scenario {scenario.name!r} (backend "
                             f"{spec.backend}) exceeded the {timeout_s:g}s "
                             "timeout and its worker had to be terminated")
                return True
            except Exception as exc:  # noqa: BLE001 - BrokenProcessPool
                if isolate:
                    # this spec was alone in the pool: definitively guilty
                    note_failure(
                        i, "worker_crashes",
                        f"worker died running scenario {scenario.name!r} "
                        f"(backend {spec.backend}): "
                        f"{type(exc).__name__}: {exc}")
                else:
                    # breakage in a shared pool implicates every unfinished
                    # spec; blame is resolved by the isolation re-runs
                    bump("worker_crashes")
                    survivors.append(i)
                return True
            if tag == TIMEOUT:
                note_failure(i, "timeouts", str(payload))
            else:
                completed[i] = (tag, payload)
            emit_ready()
            return False

        try:
            for position, i in enumerate(batch):
                broken = walk_one(position, i) or broken
        except BaseException:
            # handle() raised (failures=None contract) or Ctrl-C: don't
            # leak live workers behind the propagating exception
            _terminate_pool(pool)
            raise
        if broken:
            _terminate_pool(pool)
            bump("pool_rebuilds")
            if not isolate:
                bump("isolated_specs", len(survivors) + len(remainder))
            isolate = True
        else:
            pool.shutdown(wait=True)
        pending = survivors + remainder
        if pending and survivors:
            backoff = policy.backoff_s(
                max(max(failures_seen[i] for i in survivors), 1))
            if backoff > 0:
                time.sleep(backoff)
    emit_ready()
    return records
