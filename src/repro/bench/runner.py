"""Timing runner: executes scenarios and produces JSON-ready records.

A record is the schema every emitter/consumer agrees on::

    {"scenario": str, "params": {...}, "wall_s": float,
     "counters": {...}, "python": str, "timestamp": str}

``wall_s`` is the best (minimum) wall-clock over ``repeats`` timed executions
after ``warmup`` untimed ones -- minimum, not mean, because scheduling noise
only ever adds time.  ``counters`` merges the :class:`Counters` bag the
scenario charged during the fastest repeat with whatever derived values the
scenario function returned.
"""

from __future__ import annotations

import platform
import time
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional

from repro.instrumentation.counters import Counters
from repro.bench.registry import RunSpec, Scenario


def expand_specs(scenario: Scenario, *, backend: Optional[str] = None,
                 eps: Optional[float] = None, seed: int = 0, repeats: int = 1,
                 warmup: int = 0, smoke: bool = False,
                 workload: str = "default",
                 algorithm: str = "default") -> List[RunSpec]:
    """One :class:`RunSpec` per backend the scenario will run on.

    Without ``backend`` the scenario's full declared backend sweep runs; with
    it, the sweep is restricted to that backend when the scenario supports it
    and falls back to the scenario's native (first declared) backend when it
    does not -- the emitted record always names the backend actually used.
    """
    for selector, value in (("workload", workload), ("algorithm", algorithm)):
        if value != "default" and selector not in scenario.selectors:
            raise ValueError(
                f"scenario {scenario.name!r} does not interpret the "
                f"{selector} selector (got {value!r}); the emitted record "
                "would mislabel what actually ran")
    if backend is None:
        backends: Iterable[str] = scenario.backends
    elif backend in scenario.backends:
        backends = (backend,)
    else:
        backends = (scenario.backends[0],)
    return [RunSpec(scenario=scenario.name, suite=scenario.suite,
                    workload=workload, algorithm=algorithm, eps=eps,
                    backend=b, seed=seed, repeats=repeats, warmup=warmup,
                    smoke=smoke)
            for b in backends]


def run_scenario(scenario: Scenario, spec: RunSpec) -> Dict[str, object]:
    """Execute one spec (warmup + repeats) and return its record."""
    for _ in range(max(0, spec.warmup)):
        scenario.fn(spec, Counters())

    best_wall: Optional[float] = None
    best_counters: Dict[str, float] = {}
    for _ in range(max(1, spec.repeats)):
        counters = Counters()
        start = time.perf_counter()
        values = scenario.fn(spec, counters)
        wall = time.perf_counter() - start
        merged = counters.as_dict()
        if values:
            for key, value in values.items():
                merged[str(key)] = float(value)
        if best_wall is None or wall < best_wall:
            best_wall, best_counters = wall, merged

    return {
        "scenario": scenario.name,
        "params": spec.params(),
        "wall_s": best_wall,
        "counters": best_counters,
        "python": platform.python_version(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def run_scenarios(scens: Iterable[Scenario],
                  progress=None, **spec_kwargs) -> List[Dict[str, object]]:
    """Run every scenario over its expanded specs; returns all records.

    ``progress`` (optional) is called with each finished record -- the CLI
    uses it to stream one line per run.
    """
    records: List[Dict[str, object]] = []
    for scenario in scens:
        for spec in expand_specs(scenario, **spec_kwargs):
            record = run_scenario(scenario, spec)
            records.append(record)
            if progress is not None:
                progress(record)
    return records
