"""The unified benchmark CLI: ``python -m repro.bench``.

Subcommands::

    run      execute registered scenarios and emit JSON (+ a summary table)
             e.g. ``python -m repro.bench run --suite table1 --smoke --backend csr``
             ``--jobs N`` fans independent runs out over N worker processes
             (deterministic record order; exit 1 if any scenario failed);
             ``--list`` prints the selected scenarios (params, suites,
             accepted workload specs) and exits without running
    list     show registered scenarios and suites
    compare  diff two suite JSON files and fail on regressions
             e.g. ``python -m repro.bench compare old.json new.json --fail-over 1.2``

Exit codes: 0 success, 1 failed scenario (``run``) or regression found
(``compare``), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench import compare as compare_mod
from repro.bench import discovery, registry, results, runner
from repro.instrumentation.reporting import Table, records_table
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified benchmark harness: run registered scenarios, "
                    "emit JSON records, diff baselines.")
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run scenarios and emit JSON records")
    run_p.add_argument("--list", action="store_true", dest="list_only",
                       help="list the selected scenarios (all registered "
                            "ones when nothing is selected) with their "
                            "suites, backends and selectors, then exit "
                            "without running anything")
    run_p.add_argument("--suite", help="run every scenario of one suite")
    run_p.add_argument("--all", action="store_true",
                       help="run every registered scenario")
    run_p.add_argument("--scenario", action="append", default=[],
                       help="run a specific scenario (repeatable)")
    run_p.add_argument("--smoke", action="store_true",
                       help="seconds-scale configuration "
                            "(also REPRO_BENCH_SMOKE=1)")
    run_p.add_argument("--backend",
                       help="restrict the backend sweep (adjset / csr); "
                            "default sweeps every backend a scenario declares")
    run_p.add_argument("--eps", type=float, default=None,
                       help="pin the approximation parameter")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--repeats", type=int, default=1,
                       help="timed repetitions; wall_s is their minimum")
    run_p.add_argument("--warmup", type=int, default=0,
                       help="untimed warmup executions per spec")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="run specs in N worker processes (default 1 = "
                            "in-process); records are merged in deterministic "
                            "spec order, so output is identical to --jobs 1 "
                            "apart from wall_s/timestamp, and a failing "
                            "scenario only fails itself")
    run_p.add_argument("--workload", default="default",
                       help="workload selector for scenarios that offer one")
    run_p.add_argument("--algorithm", default="default",
                       help="algorithm selector for scenarios that offer one")
    run_p.add_argument("--timeout-s", type=float, default=None,
                       help="per-scenario wall-clock timeout in seconds; an "
                            "overrunning scenario becomes a timeout-error "
                            "record instead of wedging the suite (enforced "
                            "under --jobs 1 and --jobs N)")
    run_p.add_argument("--retries", type=int, default=0,
                       help="re-attempts for a crashed or timed-out spec "
                            "before it becomes an error record (default 0)")
    run_p.add_argument("--backoff-s", type=float, default=0.0,
                       help="base of the deterministic exponential backoff "
                            "between retry attempts (default 0 = no wait)")
    run_p.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject a deterministic fault plan, e.g. "
                            "'seed=7,task_crash_rate=0.5,task_delay_s=0.1' "
                            "(see repro.resilience.faults.FaultPlan.parse)")
    run_p.add_argument("--profile", action="store_true",
                       help="after the timed runs, cProfile one execution "
                            "per spec and write top-N cumulative hotspots to "
                            "results/profile_<scenario>_<backend>.txt")
    run_p.add_argument("--no-files", action="store_true",
                       help="skip JSON emission (print records only)")

    sub.add_parser("list", help="list registered scenarios and suites")

    cmp_p = sub.add_parser("compare",
                           help="diff two suite JSON files; non-zero exit on "
                                "regression")
    cmp_p.add_argument("old")
    cmp_p.add_argument("new")
    cmp_p.add_argument("--fail-over", type=float, default=1.2,
                       help="fail when new/old exceeds this ratio "
                            "(default 1.2)")
    cmp_p.add_argument("--metric", default="wall_s",
                       help="'wall_s' (default) or any counter name")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    discovery.load_benchmark_modules()
    if args.scenario:
        try:
            selected = [registry.get_scenario(name) for name in args.scenario]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        # label by scenario name, not suite (even when --suite is also
        # passed): a partial run must not overwrite the full-suite
        # BENCH_<suite>.json trajectory
        suite_label = selected[0].name if len(selected) == 1 else "custom"
    elif args.suite:
        selected = registry.scenarios(args.suite)
        suite_label = args.suite
        if not selected and args.suite == "all":
            # "--suite all" reads naturally as "every scenario"; honour it
            # unless a literal suite named "all" is registered
            selected = registry.scenarios()
        if not selected:
            print(f"error: no scenarios registered for suite {args.suite!r}; "
                  f"known suites: {registry.suite_names()}", file=sys.stderr)
            return 2
    elif args.all:
        selected = registry.scenarios()
        suite_label = "all"
        if not selected:
            print("error: no scenarios registered", file=sys.stderr)
            return 2
    elif args.list_only:
        # bare "run --list" enumerates everything that could be run
        selected = registry.scenarios()
        suite_label = "all"
    else:
        print("error: choose --suite NAME, --scenario NAME or --all",
              file=sys.stderr)
        return 2

    if args.list_only:
        return _print_scenarios(selected)

    if args.backend is not None:
        known = {b for scenario in selected for b in scenario.backends}
        if args.backend not in known:
            print(f"error: unknown backend {args.backend!r}; backends "
                  f"declared by the selected scenarios: {sorted(known)}",
                  file=sys.stderr)
            return 2
        # a backend-restricted run is a partial record set; suffix the label
        # so it never overwrites the full-sweep BENCH_<label>.json trajectory
        suite_label = f"{suite_label}_{args.backend}"

    smoke = args.smoke or registry.smoke_mode()
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.timeout_s is not None and args.timeout_s <= 0:
        print(f"error: --timeout-s must be > 0, got {args.timeout_s}",
              file=sys.stderr)
        return 2
    try:
        retry = RetryPolicy(max_retries=args.retries, base_s=args.backoff_s)
        faults = FaultPlan.parse(args.faults) if args.faults else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(record):
        params = record["params"]
        print(f"[{params['suite']}] {record['scenario']} "
              f"backend={params['backend']} wall_s={record['wall_s']:.4f}")

    failures = []
    resilience = {}
    start = time.perf_counter()
    try:
        records = runner.run_scenarios(
            selected, progress=progress, jobs=args.jobs, failures=failures,
            timeout_s=args.timeout_s, retry=retry, faults=faults,
            resilience=resilience,
            backend=args.backend, eps=args.eps,
            seed=args.seed, repeats=args.repeats, warmup=args.warmup,
            smoke=smoke, workload=args.workload, algorithm=args.algorithm)
    except ValueError as exc:
        # scenarios reject unknown workload/algorithm selectors rather than
        # silently running (and mislabeling) something else
        print(f"error: {exc}", file=sys.stderr)
        return 2
    suite_wall = time.perf_counter() - start
    print("\n" + records_table(records).render())
    if resilience:
        summary = ", ".join(f"{key}={resilience[key]}"
                            for key in sorted(resilience))
        print(f"resilience: {summary}")
    if not args.no_files and records:
        meta = {"jobs": args.jobs, "suite_wall_s": round(suite_wall, 4)}
        if args.timeout_s is not None:
            meta["timeout_s"] = args.timeout_s
        if args.retries:
            meta["retries"] = args.retries
        if faults is not None:
            meta["fault_plan"] = faults.describe()
        if resilience:
            # recovery/retry event counts (only ever present when nonzero)
            meta["resilience"] = dict(sorted(resilience.items()))
        path = results.write_suite(records, suite_label, meta=meta)
        print(f"\nwrote {len(records)} records to {path}")
    if args.profile and not failures:
        # profile separately from the timed repeats (never pollutes wall_s);
        # reports land next to the per-scenario JSONs
        work = runner.expand_all(
            selected, backend=args.backend, eps=args.eps, seed=args.seed,
            smoke=smoke, workload=args.workload, algorithm=args.algorithm)
        paths = runner.profile_specs(work, results.output_root() / "results")
        for p in paths:
            print(f"wrote profile to {p}")
    elif args.profile:
        print("skipping --profile: scenario failures above", file=sys.stderr)
    for failure in failures:
        print(f"FAILED [{failure['backend']}] {failure['scenario']}: "
              f"{failure['error'].strip().splitlines()[-1]}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} scenario run(s) failed "
              f"({len(records)} succeeded)", file=sys.stderr)
        return 1
    return 0


def _print_scenarios(selected) -> int:
    """Render a scenario inspection table (``run --list`` / ``list``).

    Shows everything a ``RunSpec`` can vary per scenario: the suite, the
    declared backend sweep, and which free-form selectors (``workload`` /
    ``algorithm``) the scenario interprets -- including the registered
    workload names a ``--workload`` selector accepts.
    """
    table = Table("Registered benchmark scenarios",
                  ["scenario", "suite", "backends", "selectors",
                   "description"])
    for scenario in selected:
        table.add_row(scenario.name, scenario.suite,
                      ",".join(scenario.backends),
                      ",".join(scenario.selectors) or "-",
                      scenario.description)
    print(table.render())
    suites = sorted({s.suite for s in selected})
    print(f"\nsuites: {', '.join(suites) or '(none)'}")
    if any("workload" in s.selectors for s in selected):
        try:
            from repro.workloads import workload_names

            names = ", ".join(workload_names() + ["trace:<path>"])
            print(f"workload specs (--workload): {names}")
        except ImportError:  # pragma: no cover - workloads ships with repro
            pass
    return 0


def _cmd_list() -> int:
    discovery.load_benchmark_modules()
    return _print_scenarios(registry.scenarios())


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        old = results.load_records(args.old)
        new = results.load_records(args.new)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = compare_mod.compare_records(old, new, fail_over=args.fail_over,
                                       metric=args.metric)
    table = Table(f"Benchmark diff ({args.metric}, fail over "
                  f"{args.fail_over:g}x)",
                  ["scenario", "backend", "status", "old", "new", "ratio",
                   "regressed"])
    for row in rows:
        table.add_row(row["scenario"], row["backend"], row["status"],
                      "-" if row["old"] is None else row["old"],
                      "-" if row["new"] is None else row["new"],
                      "-" if row["ratio"] is None else row["ratio"],
                      "YES" if row["regressed"] else "no")
    print(table.render())
    bad = compare_mod.regressions(rows)
    if bad:
        worst = max(row["ratio"] for row in bad)
        print(f"\nFAIL: {len(bad)} regression(s), worst ratio {worst:.3f}x "
              f"> {args.fail_over:g}x", file=sys.stderr)
        return 1
    compared = sum(1 for row in rows if row["status"] == "compared")
    print(f"\nOK: {compared} record(s) within {args.fail_over:g}x")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "compare":
        return _cmd_compare(args)
    parser.print_help()
    return 2
