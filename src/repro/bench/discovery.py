"""Benchmark-module discovery: import every ``benchmarks/bench_*.py``.

The benchmark modules live outside the installable package (they are
repo-level scripts, like the historical ``python benchmarks/bench_x.py``
invocation expects), so the registry is populated by putting ``benchmarks/``
on ``sys.path`` and importing each ``bench_*`` module.  Registration happens
as an import side effect (:func:`repro.bench.registry.register`).

A module that fails to import -- e.g. an optional dependency this container
does not ship -- is skipped with a warning instead of killing the whole CLI.

``REPRO_BENCH_EXTRA_MODULES`` (``os.pathsep``-separated ``.py`` file paths)
names additional scenario modules to load after the ``bench_*`` sweep.  It
exists so out-of-tree scenarios -- including the test suite's throwaway
ones -- register in ``--jobs N`` pool workers too, which repopulate the
registry from scratch under the ``spawn`` start method.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import os
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from repro.bench.results import find_repo_root

#: env var naming extra scenario module files (os.pathsep-separated)
EXTRA_MODULES_ENV = "REPRO_BENCH_EXTRA_MODULES"


def _load_module_file(path: Path) -> Optional[str]:
    """Import one ``.py`` file under a stable synthetic module name."""
    # key by the resolved path, not just the stem: two entries named
    # scenarios.py in different directories must both load
    digest = hashlib.sha1(str(path.resolve()).encode("utf-8")).hexdigest()[:8]
    name = f"_repro_bench_extra_{path.stem}_{digest}"
    if name in sys.modules:
        # import semantics: execute once per process, not once per call --
        # a pool worker resolves many specs against the same registry
        return name
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return name


def load_benchmark_modules(root: Optional[Path] = None) -> List[str]:
    """Import all ``bench_*`` modules (+ extras); returns the module names."""
    base = Path(root) if root is not None else find_repo_root()
    bench_dir = base / "benchmarks"
    names: List[str] = []
    if bench_dir.is_dir():
        path_entry = str(bench_dir)
        if path_entry not in sys.path:
            sys.path.insert(0, path_entry)
        for module_path in sorted(bench_dir.glob("bench_*.py")):
            name = module_path.stem
            try:
                importlib.import_module(name)
            except Exception as exc:  # noqa: BLE001 - keep the other suites alive
                warnings.warn(f"skipping benchmark module {name}: {exc}",
                              stacklevel=2)
                continue
            names.append(name)
    for entry in os.environ.get(EXTRA_MODULES_ENV, "").split(os.pathsep):
        if not entry:
            continue
        try:
            loaded = _load_module_file(Path(entry))
        except Exception as exc:  # noqa: BLE001 - keep the other suites alive
            warnings.warn(f"skipping extra benchmark module {entry}: {exc}",
                          stacklevel=2)
            continue
        if loaded:
            names.append(loaded)
    return names
