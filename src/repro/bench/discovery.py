"""Benchmark-module discovery: import every ``benchmarks/bench_*.py``.

The benchmark modules live outside the installable package (they are
repo-level scripts, like the historical ``python benchmarks/bench_x.py``
invocation expects), so the registry is populated by putting ``benchmarks/``
on ``sys.path`` and importing each ``bench_*`` module.  Registration happens
as an import side effect (:func:`repro.bench.registry.register`).

A module that fails to import -- e.g. an optional dependency this container
does not ship -- is skipped with a warning instead of killing the whole CLI.
"""

from __future__ import annotations

import importlib
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from repro.bench.results import find_repo_root


def load_benchmark_modules(root: Optional[Path] = None) -> List[str]:
    """Import all ``bench_*`` modules; returns the imported module names."""
    base = Path(root) if root is not None else find_repo_root()
    bench_dir = base / "benchmarks"
    if not bench_dir.is_dir():
        return []
    path_entry = str(bench_dir)
    if path_entry not in sys.path:
        sys.path.insert(0, path_entry)
    names: List[str] = []
    for module_path in sorted(bench_dir.glob("bench_*.py")):
        name = module_path.stem
        try:
            importlib.import_module(name)
        except Exception as exc:  # noqa: BLE001 - keep the other suites alive
            warnings.warn(f"skipping benchmark module {name}: {exc}",
                          stacklevel=2)
            continue
        names.append(name)
    return names
