"""Verification and certification utilities for matchings.

Used throughout the test-suite and by the benchmark harness to certify that a
returned matching is (a) a valid matching of the input graph, (b) within the
advertised approximation factor of the optimum, and (c) (for the (1+eps)
analysis) free of short augmenting paths -- the classical certificate that a
matching is a (1 + 2/(k+1))-approximation when no augmenting path of length
<= k exists.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.matching.blossom import maximum_matching_size


def is_valid_matching(graph: Graph, matching: Matching) -> bool:
    """Whether ``matching`` is a matching of ``graph`` (disjoint graph edges)."""
    try:
        matching.validate(graph)
    except AssertionError:
        return False
    return True


def approximation_ratio(graph: Graph, matching: Matching,
                        optimum: Optional[int] = None) -> float:
    """``mu(G) / |M|`` (>= 1); ``inf`` if the matching is empty but mu > 0.

    The paper's "alpha-approximate" matching has ``|M| >= mu(G)/alpha``; this
    function returns that alpha so tests can assert ``ratio <= 1 + eps``.
    """
    opt = maximum_matching_size(graph) if optimum is None else optimum
    if opt == 0:
        return 1.0
    if matching.size == 0:
        return float("inf")
    return opt / matching.size


def is_maximal(graph: Graph, matching: Matching) -> bool:
    """No edge of the graph has both endpoints free."""
    for u, v in graph.edges():
        if matching.is_free(u) and matching.is_free(v):
            return False
    return True


def has_short_augmenting_path(graph: Graph, matching: Matching,
                              max_length: int) -> bool:
    """Whether an augmenting path with at most ``max_length`` edges exists.

    Exhaustive alternating-simple-path DFS from every free vertex.  Exponential
    in ``max_length`` in the worst case; intended for small test graphs and
    small bounds (the certificates needed are for ``max_length ~ 2/eps + 1``).
    """
    if max_length < 1:
        return False
    free = matching.free_vertices()
    free_set = set(free)

    def dfs(v: int, need_matched: bool, depth: int, visited: Set[int]) -> bool:
        if depth > max_length:
            return False
        for w in graph.neighbors(v):
            if w in visited:
                continue
            edge_matched = matching.contains_edge(v, w)
            if edge_matched != need_matched:
                continue
            if not need_matched and w in free_set:
                return True  # completed an augmenting path
            if need_matched or matching.is_matched(w):
                visited.add(w)
                if dfs(w, not need_matched, depth + 1, visited):
                    return True
                visited.remove(w)
        return False

    for alpha in free:
        if dfs(alpha, need_matched=False, depth=1, visited={alpha}):
            return True
    return False


def count_disjoint_augmenting_paths_upper_bound(graph: Graph,
                                                matching: Matching) -> int:
    """``mu(G) - |M|``: the number of vertex-disjoint augmenting paths (Berge)."""
    return maximum_matching_size(graph) - matching.size


def certify_approximation(graph: Graph, matching: Matching, eps: float,
                          optimum: Optional[int] = None) -> Tuple[bool, float]:
    """Return ``(ok, ratio)`` where ok means ``|M| >= mu(G) / (1 + eps)``."""
    ratio = approximation_ratio(graph, matching, optimum=optimum)
    return ratio <= 1.0 + eps + 1e-12, ratio
