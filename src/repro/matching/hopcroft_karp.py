"""Hopcroft–Karp exact maximum matching for bipartite graphs.

The OMv-based dynamic algorithms (Section 7.4) and several tests work on
bipartite graphs (including the double cover ``B`` of Definition 6.3), where
Hopcroft–Karp gives an exact maximum matching in ``O(E * sqrt(V))`` time --
much faster than the general blossom algorithm, so it doubles as the exact
reference on bipartite inputs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.graph.bipartite import bipartition
from repro.matching.matching import Matching

_INF = float("inf")


def hopcroft_karp(graph: Graph,
                  left: Optional[Sequence[int]] = None,
                  right: Optional[Sequence[int]] = None) -> Matching:
    """Exact maximum matching of a bipartite graph.

    Parameters
    ----------
    graph:
        A bipartite graph.
    left, right:
        Optional explicit bipartition.  When omitted it is computed by BFS;
        a ``ValueError`` is raised if the graph is not bipartite.
    """
    if left is None or right is None:
        parts = bipartition(graph)
        if parts is None:
            raise ValueError("graph is not bipartite")
        left, right = parts
    left = list(left)
    left_set = set(left)

    # Materialise left-side adjacency once: the BFS/DFS layers below touch
    # these lists many times per phase, and fetching them through the backend
    # fast path (contiguous CSR slices / direct set references) beats a
    # per-visit neighbors() call.
    adj: Dict[int, Sequence[int]] = {u: graph.neighbor_list(u) for u in left}

    pair_u: Dict[int, Optional[int]] = {u: None for u in left}
    pair_v: Dict[int, Optional[int]] = {}
    for u in left:
        for v in adj[u]:
            pair_v.setdefault(v, None)
    dist: Dict[int, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if pair_u[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = pair_v.get(v)
                if w is None:
                    found = True
                elif dist.get(w, _INF) == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = pair_v.get(v)
            if w is None or (dist.get(w, _INF) == dist[u] + 1 and dfs(w)):
                pair_u[u] = v
                pair_v[v] = u
                return True
        dist[u] = _INF
        return False

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, graph.n * 2 + 100))
    try:
        while bfs():
            for u in left:
                if pair_u[u] is None:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)

    matching = Matching(graph.n)
    for u, v in pair_u.items():
        if v is not None:
            matching.add(u, v)
    return matching


def maximum_bipartite_matching_size(graph: Graph) -> int:
    """Size of a maximum matching of a bipartite graph."""
    return hopcroft_karp(graph).size
