"""Edmonds' blossom algorithm: exact maximum matching in general graphs.

This is the exact substrate of the reproduction.  It serves three purposes:

1. ground truth -- every approximation test compares the framework's output to
   the exact optimum computed here;
2. the local augmenting step -- the ``Augment`` operation of Section 4.5.1 is
   implemented by running a single augmentation of this algorithm restricted to
   the (small) union of the two structures involved, instead of the recursive
   blossom-path expansion of Lemma 3.5 (substitution 3);
3. a "perfect" oracle -- an exact ``Amatching``/``Aweak`` used to separate
   framework behaviour from oracle quality in experiments.

The implementation is the classic O(V^3) formulation with ``base``/``parent``
arrays and LCA-based blossom contraction (Edmonds 1965; see also [MV80] for
the asymptotically faster variant which we do not need at these sizes).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.matching.matching import Matching

_NONE = -1


class _BlossomSolver:
    """One augmentation-at-a-time Edmonds search over a fixed graph."""

    def __init__(self, graph: Graph, mate: Optional[List[int]] = None) -> None:
        self.graph = graph
        self.n = graph.n
        self.match: List[int] = list(mate) if mate is not None else [_NONE] * self.n
        self.parent: List[int] = [_NONE] * self.n
        self.base: List[int] = list(range(self.n))
        self.in_queue: List[bool] = [False] * self.n
        self.in_blossom: List[bool] = [False] * self.n

    # -- blossom helpers ----------------------------------------------------
    def _lca(self, a: int, b: int) -> int:
        used = [False] * self.n
        # walk up from a marking bases
        v = a
        while True:
            v = self.base[v]
            used[v] = True
            if self.match[v] == _NONE:
                break
            v = self.parent[self.match[v]]
        # walk up from b until a marked base is hit
        v = b
        while True:
            v = self.base[v]
            if used[v]:
                return v
            v = self.parent[self.match[v]]

    def _mark_path(self, v: int, b: int, child: int) -> None:
        while self.base[v] != b:
            self.in_blossom[self.base[v]] = True
            self.in_blossom[self.base[self.match[v]]] = True
            self.parent[v] = child
            child = self.match[v]
            v = self.parent[self.match[v]]

    # -- one phase: try to find an augmenting path from `root` --------------
    def try_augment(self, root: int) -> bool:
        self.parent = [_NONE] * self.n
        self.base = list(range(self.n))
        self.in_queue = [False] * self.n
        self.in_queue[root] = True
        queue = deque([root])

        while queue:
            v = queue.popleft()
            for to in self.graph.neighbors(v):
                if self.base[v] == self.base[to] or self.match[v] == to:
                    continue
                if to == root or (self.match[to] != _NONE
                                  and self.parent[self.match[to]] != _NONE):
                    # odd cycle: contract the blossom
                    cur_base = self._lca(v, to)
                    self.in_blossom = [False] * self.n
                    self._mark_path(v, cur_base, to)
                    self._mark_path(to, cur_base, v)
                    for i in range(self.n):
                        if self.in_blossom[self.base[i]]:
                            self.base[i] = cur_base
                            if not self.in_queue[i]:
                                self.in_queue[i] = True
                                queue.append(i)
                elif self.parent[to] == _NONE:
                    self.parent[to] = v
                    if self.match[to] == _NONE:
                        # augmenting path found: flip along parent pointers
                        u = to
                        while u != _NONE:
                            pv = self.parent[u]
                            ppv = self.match[pv]
                            self.match[u] = pv
                            self.match[pv] = u
                            u = ppv
                        return True
                    else:
                        w = self.match[to]
                        if not self.in_queue[w]:
                            self.in_queue[w] = True
                            queue.append(w)
        return False

    def solve(self) -> List[int]:
        """Run to optimality; returns the mate array."""
        # cheap greedy warm start (only for vertices still free)
        for v in range(self.n):
            if self.match[v] == _NONE:
                for to in self.graph.neighbors(v):
                    if self.match[to] == _NONE:
                        self.match[v] = to
                        self.match[to] = v
                        break
        for v in range(self.n):
            if self.match[v] == _NONE:
                self.try_augment(v)
        return self.match


def _mate_list(matching: Optional[Matching], n: int) -> List[int]:
    mate = [_NONE] * n
    if matching is not None:
        for u, v in matching.edges():
            mate[u] = v
            mate[v] = u
    return mate


def maximum_matching(graph: Graph, initial: Optional[Matching] = None) -> Matching:
    """Exact maximum matching of ``graph`` (optionally warm-started)."""
    solver = _BlossomSolver(graph, _mate_list(initial, graph.n))
    mate = solver.solve()
    return Matching.from_mate_array([v if v != _NONE else None for v in mate])


def maximum_matching_size(graph: Graph) -> int:
    """mu(G): the size of a maximum matching."""
    return maximum_matching(graph).size


def find_augmenting_path(graph: Graph, matching: Matching) -> bool:
    """Perform at most one augmentation of ``matching`` with respect to ``graph``.

    Returns ``True`` (and mutates ``matching`` in place, increasing its size by
    one) if an augmenting path exists, ``False`` otherwise.  This is the local
    step the framework's ``Augment`` operation delegates to on the union of two
    structures.
    """
    solver = _BlossomSolver(graph, _mate_list(matching, graph.n))
    for v in range(graph.n):
        if solver.match[v] == _NONE:
            if solver.try_augment(v):
                # rebuild matching from the solver's mate array
                new_edges = [(u, w) for u, w in enumerate(solver.match)
                             if w != _NONE and u < w]
                # mutate in place
                for u, w in matching.edge_list():
                    matching.remove(u, w)
                for u, w in new_edges:
                    matching.add(u, w)
                return True
    return False


def augment_to_optimal(graph: Graph, matching: Matching) -> int:
    """Augment ``matching`` (in place) until it is maximum; returns #augmentations."""
    count = 0
    while find_augmenting_path(graph, matching):
        count += 1
    return count
