"""The :class:`Matching` container.

A matching is stored as a ``mate`` array (``mate[v]`` is the matched partner of
``v`` or ``None``), the representation every algorithm in the paper implicitly
uses: free-vertex tests, matched-arc lookups and path augmentation are all
O(1)/O(length).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph, normalize_edge

Edge = Tuple[int, int]


class Matching:
    """A mutable matching of a graph on ``n`` vertices.

    The container does not keep a reference to the graph; validity with respect
    to a particular graph is checked by :meth:`validate`.
    """

    __slots__ = ("_n", "_mate", "_size")

    def __init__(self, n: int, edges: Optional[Iterable[Edge]] = None) -> None:
        self._n = n
        self._mate: List[Optional[int]] = [None] * n
        self._size = 0
        if edges is not None:
            for u, v in edges:
                self.add(u, v)

    # ------------------------------------------------------------------ basic
    @property
    def n(self) -> int:
        return self._n

    def __len__(self) -> int:
        """Number of matched edges."""
        return self._size

    @property
    def size(self) -> int:
        return self._size

    def mate(self, v: int) -> Optional[int]:
        """The matched partner of ``v`` or ``None`` if ``v`` is free."""
        return self._mate[v]

    def is_matched(self, v: int) -> bool:
        return self._mate[v] is not None

    def is_free(self, v: int) -> bool:
        """Whether ``v`` is a free vertex (Definition 3.1)."""
        return self._mate[v] is None

    def contains_edge(self, u: int, v: int) -> bool:
        return self._mate[u] == v and self._mate[v] == u

    def free_vertices(self) -> List[int]:
        """All free vertices."""
        return [v for v in range(self._n) if self._mate[v] is None]

    def matched_vertices(self) -> List[int]:
        return [v for v in range(self._n) if self._mate[v] is not None]

    def edges(self) -> Iterator[Edge]:
        """Iterate over matched edges as canonical ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            v = self._mate[u]
            if v is not None and u < v:
                yield (u, v)

    def edge_list(self) -> List[Edge]:
        return list(self.edges())

    def mate_list(self) -> Sequence[Optional[int]]:
        """The internal mate array (read-only view; do not mutate).

        The array-native phase engine snapshots this once per phase to build
        its vectorized mate/matched masks instead of issuing n ``mate()``
        calls.
        """
        return self._mate

    def copy(self) -> "Matching":
        m = Matching(self._n)
        m._mate = list(self._mate)
        m._size = self._size
        return m

    def __repr__(self) -> str:  # pragma: no cover
        return f"Matching(n={self._n}, size={self._size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._n == other._n and self._mate == other._mate

    # -------------------------------------------------------------- mutation
    def add(self, u: int, v: int) -> None:
        """Add matched edge ``{u, v}``; both endpoints must currently be free."""
        if u == v:
            raise ValueError("cannot match a vertex to itself")
        if self._mate[u] is not None or self._mate[v] is not None:
            raise ValueError(
                f"cannot add ({u}, {v}): an endpoint is already matched")
        self._mate[u] = v
        self._mate[v] = u
        self._size += 1

    def add_disjoint_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk :meth:`add` for a batch of vertex-disjoint edges.

        The caller guarantees the batch is endpoint-disjoint and touches only
        free vertices (as the vectorized greedy selection does by
        construction); validation is a single debug assertion instead of a
        per-edge check.  Returns the number of edges added.
        """
        mate = self._mate
        count = 0
        for u, v in edges:
            assert mate[u] is None and mate[v] is None and u != v, \
                f"add_disjoint_edges: ({u}, {v}) conflicts with the matching"
            mate[u] = v
            mate[v] = u
            count += 1
        self._size += count
        return count

    def remove(self, u: int, v: int) -> None:
        """Remove matched edge ``{u, v}``."""
        if self._mate[u] != v or self._mate[v] != u:
            raise ValueError(f"({u}, {v}) is not a matched edge")
        self._mate[u] = None
        self._mate[v] = None
        self._size -= 1

    def remove_vertex_edge(self, v: int) -> Optional[Edge]:
        """If ``v`` is matched, remove its matched edge; return the edge removed."""
        w = self._mate[v]
        if w is None:
            return None
        self.remove(v, w)
        return normalize_edge(v, w)

    # ---------------------------------------------------------- augmentation
    def augment_along(self, path: Sequence[int]) -> None:
        """Augment along an augmenting path given as a vertex sequence.

        The path must start and end at free vertices and alternate
        unmatched/matched/.../unmatched edges (Definition 3.2).  Raises
        ``ValueError`` if the path is not a valid augmenting path for the
        current matching; the matching is left unchanged in that case.
        """
        if len(path) < 2 or len(path) % 2 != 0:
            raise ValueError("an augmenting path has an even number of vertices")
        if len(set(path)) != len(path):
            raise ValueError("augmenting path must be simple")
        if not (self.is_free(path[0]) and self.is_free(path[-1])):
            raise ValueError("augmenting path endpoints must be free")
        # check alternation: edges at odd indices (0-based pairs) are matched
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            if i % 2 == 0:
                if self.contains_edge(u, v):
                    raise ValueError("expected unmatched edge on the path")
            else:
                if not self.contains_edge(u, v):
                    raise ValueError("expected matched edge on the path")
        # flip: remove matched edges then add unmatched ones
        for i in range(1, len(path) - 1, 2):
            self.remove(path[i], path[i + 1])
        for i in range(0, len(path) - 1, 2):
            self.add(path[i], path[i + 1])

    def augment_all(self, paths: Iterable[Sequence[int]]) -> int:
        """Augment along a collection of vertex-disjoint augmenting paths.

        Returns the number of paths applied (= increase in matching size).
        """
        count = 0
        for p in paths:
            self.augment_along(p)
            count += 1
        return count

    # ------------------------------------------------------------ validation
    def validate(self, graph: Optional[Graph] = None) -> None:
        """Raise ``AssertionError`` if the internal state is inconsistent or,
        when ``graph`` is given, if a matched edge is not a graph edge."""
        size = 0
        for u in range(self._n):
            v = self._mate[u]
            if v is None:
                continue
            assert 0 <= v < self._n, f"mate of {u} out of range"
            assert self._mate[v] == u, f"mate pointers of {u},{v} inconsistent"
            assert v != u, "self-matched vertex"
            if u < v:
                size += 1
                if graph is not None:
                    assert graph.has_edge(u, v), f"matched edge ({u},{v}) not in graph"
        assert size == self._size, "cached size out of date"

    def restricted_to(self, graph: Graph) -> "Matching":
        """A copy with every matched edge absent from ``graph`` dropped.

        Used by the dynamic maintainer after edge deletions: deleting a matched
        edge removes it from the matching.
        """
        m = Matching(self._n)
        for u, v in self.edges():
            if graph.has_edge(u, v):
                m.add(u, v)
        return m

    @classmethod
    def from_mate_array(cls, mate: Sequence[Optional[int]]) -> "Matching":
        """Build a matching from a ``mate`` array (used by the exact matchers)."""
        m = cls(len(mate))
        for u, v in enumerate(mate):
            if v is not None and v >= 0 and u < v:
                m.add(u, v)
        return m
