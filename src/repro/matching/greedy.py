"""Greedy maximal matchings -- the textbook Theta(1)-approximate oracles.

A maximal matching is a 2-approximate maximum matching; this is the canonical
instantiation of the ``Amatching`` oracle of Definition 5.1 (``c = 2``) and of
the baseline the framework boosts.  Both a deterministic edge-order greedy and
a random-order greedy (used when an oblivious/adaptive adversary matters) are
provided, plus a degree-bounded variant used by some weak-oracle constructions.

Determinism and the fast path
-----------------------------
* The random-order variants take either a ``seed`` or an explicit
  ``random.Random`` instance (``rng=``); callers that run sweeps thread one
  ``rng`` through every call so whole benchmark runs replay bit-for-bit.
  The edge list is sorted canonically before shuffling, so a fixed seed
  produces the *same* matching on every graph backend.
* When NumPy is available and the edge list is large, the sequential scan is
  replaced by a vectorized round-based selection that provably returns the
  exact same matching (an edge is greedy-selected iff it is the
  earliest-remaining edge at both endpoints; repeatedly selecting all such
  edges at once reproduces the sequential order).  A round cap guards the
  adversarial case (e.g. a path scanned end-to-end needs Theta(n) rounds);
  leftovers fall back to the sequential scan.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graph.backends import _np, edge_endpoint_arrays
from repro.graph.graph import Graph
from repro.matching.matching import Matching

Edge = Tuple[int, int]

#: below this many edges the plain Python scan wins over array set-up costs
_VECTORIZE_MIN_EDGES = 2048

#: rounds of vectorized selection before falling back to the sequential scan
_MAX_VECTOR_ROUNDS = 32


def _resolve_rng(rng: Optional[random.Random], seed: Optional[int]) -> random.Random:
    """An explicit ``rng`` wins; otherwise derive one from ``seed``."""
    return rng if rng is not None else random.Random(seed)


def _greedy_select_arrays(orig_u, orig_v, n: int,
                          blocked: Optional[set]) -> List[Edge]:
    """The edges sequential greedy would pick, given endpoint arrays.

    Round-based equivalent of the sequential scan: every round selects the
    edges that are the earliest remaining edge at both endpoints (those are
    exactly the edges sequential greedy commits to before any conflicting
    edge), drops everything touching a matched vertex, and repeats.
    Returns the picked edges in sequential pick order.
    """
    np = _np
    us, vs = orig_u, orig_v
    pos = np.arange(us.size, dtype=np.int64)
    if blocked:
        blocked_mask = np.zeros(n, dtype=bool)
        blocked_mask[sorted(blocked)] = True
        keep = ~(blocked_mask[us] | blocked_mask[vs])
        us, vs, pos = us[keep], vs[keep], pos[keep]
    matched = np.zeros(n, dtype=bool)
    winner_pos: List[int] = []
    rounds = 0
    while pos.size and rounds < _MAX_VECTOR_ROUNDS:
        rounds += 1
        rank = np.arange(pos.size, dtype=np.int64)
        # Scatter-min of rank per endpoint: fancy assignment keeps the *last*
        # write per index, so assigning in reverse rank order leaves the
        # minimum (ranks ascend).  Far faster than np.minimum.at.
        first_u = np.full(n, pos.size, dtype=np.int64)
        first_u[us[::-1]] = rank[::-1]
        first_v = np.full(n, pos.size, dtype=np.int64)
        first_v[vs[::-1]] = rank[::-1]
        first = np.minimum(first_u, first_v)
        win = (first[us] == rank) & (first[vs] == rank)
        wu, wv = us[win], vs[win]
        matched[wu] = True
        matched[wv] = True
        winner_pos.extend(pos[win].tolist())
        keep = ~(matched[us] | matched[vs])
        us, vs, pos = us[keep], vs[keep], pos[keep]
    wp = np.asarray(sorted(winner_pos), dtype=np.int64)
    out = list(zip(orig_u[wp].tolist(), orig_v[wp].tolist()))
    if pos.size:  # round cap hit: finish the tail sequentially
        taken = matched
        for u, v in zip(orig_u[pos].tolist(), orig_v[pos].tolist()):
            if not taken[u] and not taken[v]:
                taken[u] = True
                taken[v] = True
                out.append((u, v))
    return out


def _greedy_select_vectorized(edges: Sequence[Edge], n: int,
                              blocked: Optional[set]) -> List[Edge]:
    """Array-dispatch wrapper of :func:`_greedy_select_arrays` for edge lists."""
    us, vs = edge_endpoint_arrays(edges)
    return _greedy_select_arrays(us, vs, n, blocked)


def greedy_maximal_matching(graph: Graph,
                            edge_order: Optional[Sequence[Edge]] = None,
                            forbidden: Optional[Iterable[int]] = None) -> Matching:
    """Deterministic greedy maximal matching.

    Parameters
    ----------
    graph:
        Input graph.
    edge_order:
        Optional explicit edge order; defaults to the graph's iteration order.
    forbidden:
        Vertices that must remain unmatched (used when peeling already-matched
        vertices, Lemma 5.3 / Lemma 6.7).
    """
    matching = Matching(graph.n)
    blocked = set(forbidden) if forbidden is not None else None
    if edge_order is None:
        backend = graph.backend
        if (_np is not None and graph.m >= _VECTORIZE_MIN_EDGES
                and hasattr(backend, "_edge_arrays")):
            # CSR fast path: feed the backend's endpoint arrays straight into
            # the vectorized selection, skipping the tuple round-trip.
            u_arr, v_arr = backend._edge_arrays()
            matching.add_disjoint_edges(
                _greedy_select_arrays(u_arr, v_arr, graph.n, blocked))
            return matching
        edges: Sequence[Edge] = graph.edge_list()
    elif isinstance(edge_order, (list, tuple)):
        edges = edge_order
    else:
        edges = list(edge_order)

    if _np is not None and len(edges) >= _VECTORIZE_MIN_EDGES:
        matching.add_disjoint_edges(
            _greedy_select_vectorized(edges, graph.n, blocked))
        return matching

    mate = matching._mate
    for u, v in edges:
        if blocked is not None and (u in blocked or v in blocked):
            continue
        if mate[u] is None and mate[v] is None:
            matching.add(u, v)
    return matching


def random_greedy_matching(graph: Graph, seed: Optional[int] = None,
                           forbidden: Optional[Iterable[int]] = None,
                           rng: Optional[random.Random] = None) -> Matching:
    """Greedy maximal matching over a uniformly random edge order.

    Pass ``rng`` to thread one explicit :class:`random.Random` through a whole
    run (reproducible benchmarks); ``seed`` builds a private generator.  The
    edge list is canonically sorted before shuffling, so the result for a
    fixed seed is backend-independent.
    """
    rng = _resolve_rng(rng, seed)
    edges = sorted(graph.edge_list())
    rng.shuffle(edges)
    return greedy_maximal_matching(graph, edge_order=edges, forbidden=forbidden)


def greedy_on_vertex_subset(graph: Graph, subset: Sequence[int],
                            seed: Optional[int] = None,
                            rng: Optional[random.Random] = None) -> List[Edge]:
    """Greedy maximal matching of the induced subgraph ``G[S]``.

    Returns the matched edges in the *original* labelling.  This is the
    work-horse behind several ``Aweak`` implementations (Definition 6.1): it
    touches only edges with both endpoints in ``S`` (fetched in one bulk
    ``subgraph_edges`` call, which array backends vectorize).
    """
    rng = _resolve_rng(rng, seed)
    s = set(subset)
    sub_edges = sorted(graph.subgraph_edges(s))
    rng.shuffle(sub_edges)
    if _np is not None and len(sub_edges) >= _VECTORIZE_MIN_EDGES:
        return _greedy_select_vectorized(sub_edges, graph.n, None)
    used = set()
    out: List[Edge] = []
    for u, v in sub_edges:
        if u not in used and v not in used:
            used.add(u)
            used.add(v)
            out.append((u, v))
    return out


def maximal_matching_is_maximal(graph: Graph, matching: Matching) -> bool:
    """Check maximality: no graph edge has both endpoints free."""
    for u, v in graph.edges():
        if matching.is_free(u) and matching.is_free(v):
            return False
    return True
