"""Greedy maximal matchings -- the textbook Theta(1)-approximate oracles.

A maximal matching is a 2-approximate maximum matching; this is the canonical
instantiation of the ``Amatching`` oracle of Definition 5.1 (``c = 2``) and of
the baseline the framework boosts.  Both a deterministic edge-order greedy and
a random-order greedy (used when an oblivious/adaptive adversary matters) are
provided, plus a degree-bounded variant used by some weak-oracle constructions.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching

Edge = Tuple[int, int]


def greedy_maximal_matching(graph: Graph,
                            edge_order: Optional[Sequence[Edge]] = None,
                            forbidden: Optional[Iterable[int]] = None) -> Matching:
    """Deterministic greedy maximal matching.

    Parameters
    ----------
    graph:
        Input graph.
    edge_order:
        Optional explicit edge order; defaults to the graph's iteration order.
    forbidden:
        Vertices that must remain unmatched (used when peeling already-matched
        vertices, Lemma 5.3 / Lemma 6.7).
    """
    matching = Matching(graph.n)
    blocked = set(forbidden) if forbidden is not None else set()
    edges = edge_order if edge_order is not None else graph.edges()
    for u, v in edges:
        if u in blocked or v in blocked:
            continue
        if matching.is_free(u) and matching.is_free(v):
            matching.add(u, v)
    return matching


def random_greedy_matching(graph: Graph, seed: Optional[int] = None,
                           forbidden: Optional[Iterable[int]] = None) -> Matching:
    """Greedy maximal matching over a uniformly random edge order."""
    rng = random.Random(seed)
    edges = graph.edge_list()
    rng.shuffle(edges)
    return greedy_maximal_matching(graph, edge_order=edges, forbidden=forbidden)


def greedy_on_vertex_subset(graph: Graph, subset: Sequence[int],
                            seed: Optional[int] = None) -> List[Edge]:
    """Greedy maximal matching of the induced subgraph ``G[S]``.

    Returns the matched edges in the *original* labelling.  This is the
    work-horse behind several ``Aweak`` implementations (Definition 6.1): it
    touches only edges with both endpoints in ``S``.
    """
    rng = random.Random(seed)
    s = set(subset)
    sub_edges = graph.subgraph_edges(s)
    rng.shuffle(sub_edges)
    used = set()
    out: List[Edge] = []
    for u, v in sub_edges:
        if u not in used and v not in used:
            used.add(u)
            used.add(v)
            out.append((u, v))
    return out


def maximal_matching_is_maximal(graph: Graph, matching: Matching) -> bool:
    """Check maximality: no graph edge has both endpoints free."""
    for u, v in graph.edges():
        if matching.is_free(u) and matching.is_free(v):
            return False
    return True
