"""Matching primitives: containers, greedy/exact algorithms, verification.

These are the substrates every part of the framework relies on:

* :class:`~repro.matching.matching.Matching` -- mutable matching container with
  validation and path augmentation (the object the framework improves).
* :func:`~repro.matching.greedy.greedy_maximal_matching` /
  :func:`~repro.matching.greedy.random_greedy_matching` -- the textbook
  2-approximations, used as the Theta(1)-approximate oracles ``Amatching``.
* :func:`~repro.matching.hopcroft_karp.hopcroft_karp` -- exact maximum matching
  in bipartite graphs (used by the OMv path and as a fast exact reference on
  bipartite inputs).
* :func:`~repro.matching.blossom.maximum_matching` -- exact maximum matching in
  general graphs (Edmonds' blossom algorithm), the ground truth every
  approximation test compares against, and the local augmenting-path finder
  used inside the ``Augment`` operation.
* :mod:`~repro.matching.verify` -- certification helpers (validity, approximation
  ratio, Berge-style certificates of near-optimality).
"""

from repro.matching.matching import Matching
from repro.matching.greedy import greedy_maximal_matching, random_greedy_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.blossom import maximum_matching, maximum_matching_size, find_augmenting_path
from repro.matching.verify import (
    is_valid_matching,
    approximation_ratio,
    has_short_augmenting_path,
)

__all__ = [
    "Matching",
    "greedy_maximal_matching",
    "random_greedy_matching",
    "hopcroft_karp",
    "maximum_matching",
    "maximum_matching_size",
    "find_augmenting_path",
    "is_valid_matching",
    "approximation_ratio",
    "has_short_augmenting_path",
]
