"""The static boosting framework of Section 5 (Theorem 1.1).

Given oracle access to an algorithm ``Amatching`` that returns a
``c``-approximate maximum matching of any graph it is handed, the framework
computes a (1+eps)-approximate maximum matching of ``G`` by simulating the
semi-streaming algorithm:

* the initial matching is obtained by iterated peeling with ``Amatching``
  (Lemma 5.3);
* ``Contract-and-Augment`` is simulated by Algorithm 4: the structure-level
  graph ``H'`` (Definition 5.4) is built, ``Amatching`` is invoked on it for
  O(log 1/eps) iterations, and every matched pair of structures is augmented;
* ``Extend-Active-Path`` is simulated by Algorithm 5: for every stage
  ``s = 0..l_max`` the bipartite graph ``H'_s`` of s-feasible arcs
  (Definition 5.8) is built and ``Amatching`` is invoked on it for
  O(log 1/eps) iterations, performing ``Overtake`` on every matched arc.

Every oracle invocation is charged to the ``oracle_calls`` counter -- the
quantity Theorem 1.1 bounds by O(eps^-7 log(1/eps)) per run and Table 1
compares across frameworks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

try:  # optional: the reference engine works without numpy
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

try:  # the packed-bitset kernel tier rides on numpy too
    from repro.core import kernels
except ImportError:  # pragma: no cover - the image bakes numpy in
    kernels = None  # type: ignore[assignment]

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.oracles import (
    CountingOracle,
    GreedyMatchingOracle,
    MatchingOracle,
    ensure_counting,
)
from repro.core.operations import apply_augmentations, augment_op, overtake_op
from repro.core.phase import (_type2_candidates, backtrack_pass,
                              contract_pass, run_phase)
from repro.core.structures import FrozenViews, PhaseState, StructNode

Edge = Tuple[int, int]


# ---------------------------------------------------------------------------
# derived graphs H' and H'_s
# ---------------------------------------------------------------------------

def build_structure_graph(state: PhaseState) -> Tuple[Graph, Dict[Edge, Edge]]:
    """Build ``H'`` (Definition 5.4): one vertex per structure, an edge between
    two structures iff some G-edge connects outer vertices of both.

    Returns ``(H', witness)`` where ``witness[(i, j)]`` is a G-edge realising
    the H'-edge ``{i, j}`` (i < j in H' labelling).  The array engine pulls
    the candidate type-2 arcs with one boolean-mask pass over the key-sorted
    edge arrays; the reference engine walks the same edge order scalar-wise,
    so both build the identical graph and witness map.
    """
    structures = state.live_structures()
    index = {id(s): i for i, s in enumerate(structures)}
    hprime = Graph(len(structures))
    witness: Dict[Edge, Edge] = {}
    if state.engine in ("array", "kernel"):
        eu, ev = state.edge_arrays()
        idx = _type2_candidates(state)
        candidates = list(zip(eu[idx].tolist(), ev[idx].tolist()))
    else:
        candidates = state.edge_pairs()
    for u, v in candidates:
        if state.removed[u] or state.removed[v]:
            continue
        nu, nv = state.node_of[u], state.node_of[v]
        if nu is None or nv is None or not (nu.outer and nv.outer):
            continue
        if nu.structure is nv.structure:
            continue
        if state.matching.contains_edge(u, v):
            continue
        i, j = index[id(nu.structure)], index[id(nv.structure)]
        key = (i, j) if i < j else (j, i)
        if hprime.add_edge(*key):
            witness[key] = (u, v) if i < j else (v, u)
    return hprime, witness


def stage_right_vertices(state: PhaseState, stage: int,
                         unvisited_only: bool = False) -> List[int]:
    """Right part of ``H'_s``: matched, not removed, inner-or-unvisited
    vertices with label > ``stage + 1``, ascending.

    With ``unvisited_only`` the in-structure (inner) vertices are excluded --
    the sampling driver of Section 6.6 covers those by per-structure sampling
    and only needs the unvisited remainder in bulk.  The array engine answers
    with one boolean-mask pass; the reference engine scans ``range(n)`` in
    the same ascending order.
    """
    if state.engine in ("array", "kernel"):
        mask = (state.matched_arr & ~state.removed_arr
                & (state.vlabel_arr > stage + 1))
        if unvisited_only:
            mask &= state.sid_arr == -1
        else:
            mask &= ~state.outer_arr
        return np.flatnonzero(mask).tolist()
    out: List[int] = []
    for v in range(state.graph.n):
        if state.removed[v] or state.matching.is_free(v):
            continue
        node = state.node_of[v]
        if unvisited_only:
            if node is not None:
                continue
        elif node is not None and node.outer:
            continue
        if state.label_of_vertex(v) > stage + 1:
            out.append(v)
    return out


def build_stage_graph(state: PhaseState, stage: int) -> Tuple[Graph, Dict[Edge, Edge], int]:
    """Build ``H'_s`` (Definition 5.8) for stage ``s``.

    Left part: working vertices of structures that are active, not on hold and
    not yet extended, whose distance (label) equals ``s``.  Right part: inner
    or unvisited matched G-vertices with label > s+1.  Returns
    ``(H'_s, witness, num_left)`` where the first ``num_left`` vertices of the
    returned graph are the left part.
    """
    left_nodes: List[StructNode] = [
        structure.working for structure in state.live_structures()
        if state.eligible_working(structure, stage)]
    if not left_nodes:
        # no eligible working vertex at this stage: H'_s has no left part and
        # therefore no edges; skip the O(n) right-side scan entirely
        return Graph(0), {}, 0

    right_vertices = stage_right_vertices(state, stage)

    left_index = {id(node): i for i, node in enumerate(left_nodes)}
    right_index = {v: len(left_nodes) + i for i, v in enumerate(right_vertices)}
    hs = Graph(len(left_nodes) + len(right_vertices))
    witness: Dict[Edge, Edge] = {}
    # kernel engine: one AND sweep of the packed adjacency row against the
    # packed right set yields the same ascending candidate list the scalar
    # membership filter produces, without touching off-right neighbours
    packed = state.packed_adjacency() if state.engine == "kernel" else None
    if packed is not None:
        right_bits = kernels.int_from_indices(right_vertices)
    else:
        right_set = set(right_vertices)
    for node in left_nodes:
        i = left_index[id(node)]
        for x in node.vertices:
            if packed is not None:
                candidates = kernels.bits_of_int(
                    state.packed_int_row(x) & right_bits)
            else:
                candidates = [y for y in state.sorted_neighbors(x)
                              if y in right_set]
            for y in candidates:
                if state.arc_type(x, y) != 3:
                    continue
                j = right_index[y]
                key = (i, j)
                if hs.add_edge(i, j):
                    witness[key] = (x, y)
    return hs, witness, len(left_nodes)


# ---------------------------------------------------------------------------
# the oracle-driven phase driver (Algorithms 4 and 5)
# ---------------------------------------------------------------------------

class OracleDriver:
    """Phase driver that simulates the two streaming passes with ``Amatching``."""

    def __init__(self, oracle: MatchingOracle, profile: ParameterProfile,
                 rng: Optional[random.Random] = None) -> None:
        self.oracle = oracle
        self.profile = profile
        self.rng = rng if rng is not None else random.Random(0)

    # -- Algorithm 5 --------------------------------------------------------
    def extend_active_path(self, state: PhaseState) -> None:
        for stage in self.profile.stages():
            state.counters.add("stages")
            for _it in range(self.profile.sim_iterations):
                hs, witness, num_left = build_stage_graph(state, stage)
                if hs.m == 0:
                    break
                state.counters.add("iterations")
                matched = self.oracle.find_matching(hs)
                performed = 0
                for a, b in matched:
                    key = (a, b) if a < num_left else (b, a)
                    if key not in witness:
                        continue
                    x, y = witness[key]
                    # conditions may have been invalidated by an earlier
                    # overtake in this batch; re-check before acting.
                    nu = state.omega(x)
                    if (state.arc_type(x, y) == 3 and nu is not None
                            and state.distance(nu) == stage):
                        overtake_op(state, x, y, stage + 1)
                        performed += 1
                if performed == 0:
                    break
        # Algorithm 5, line 9 would now run the Contract-and-Augment simulation
        # a second time; Remark 2 observes it can be skipped because the phase
        # driver (Algorithm 2) invokes contract_and_augment immediately after
        # this procedure anyway.  Skipping it halves the oracle calls.

    # -- Algorithm 4 --------------------------------------------------------
    def contract_and_augment(self, state: PhaseState) -> None:
        contract_pass(state)
        for _it in range(self.profile.sim_iterations):
            hprime, witness = build_structure_graph(state)
            if hprime.m == 0:
                break
            state.counters.add("iterations")
            matched = self.oracle.find_matching(hprime)
            performed = 0
            for a, b in matched:
                key = (a, b) if a < b else (b, a)
                if key not in witness:
                    continue
                u, v = witness[key]
                if state.arc_type(u, v) == 2:
                    augment_op(state, u, v)
                    performed += 1
            if performed == 0:
                break
        # Augmentation may expose new type-1 arcs involving fresh working
        # vertices only in later bundles; a final local contraction keeps the
        # no-type-1 invariant (Corollary B.5) without extra oracle calls.
        contract_pass(state)


# ---------------------------------------------------------------------------
# the framework (Theorem 1.1)
# ---------------------------------------------------------------------------

class BoostingFramework:
    """The boosting framework of Theorem 1.1.

    Parameters
    ----------
    eps:
        Target approximation parameter.
    oracle:
        A :class:`MatchingOracle`; defaults to the greedy 2-approximation.
    profile:
        Parameter schedule; defaults to the practical profile for ``eps``.
    counters:
        Counter bag; ``oracle_calls`` accumulates the Theorem 1.1 quantity.
    seed:
        Randomness for stream orders / tie-breaking.
    check_invariants:
        Validate structure invariants after every pass-bundle (slow).
    """

    def __init__(self, eps: float, oracle: Optional[MatchingOracle] = None,
                 profile: Optional[ParameterProfile] = None,
                 counters: Optional[Counters] = None,
                 seed: Optional[int] = None,
                 check_invariants: bool = False) -> None:
        self.counters = counters if counters is not None else Counters()
        base_oracle = oracle if oracle is not None else GreedyMatchingOracle()
        self.oracle: CountingOracle = ensure_counting(base_oracle, self.counters)
        self.profile = profile if profile is not None else ParameterProfile.practical(
            eps, c=base_oracle.c)
        self.eps = self.profile.eps
        self.rng = random.Random(seed)
        self.check_invariants = check_invariants

    # -- Lemma 5.3 -----------------------------------------------------------
    def initial_matching(self, graph: Graph) -> Matching:
        """Compute a Theta(1)-approximate initial matching by iterated peeling.

        Lemma 5.3: after ``2c`` iterations of "find a c-approximate matching
        among the still-unmatched vertices and keep it", the union is a
        4-approximate matching.
        """
        matching = Matching(graph.n)
        rounds = max(1, int(2 * self.oracle.c) + 1)
        for _ in range(rounds):
            free = matching.free_vertices()
            sub, back = graph.induced_subgraph(free)
            if sub.m == 0:
                break
            found = self.oracle.find_matching(sub)
            if not found:
                break
            for x, y in found:
                matching.add(back[x], back[y])
        return matching

    # -- Theorem 1.1 ---------------------------------------------------------
    def run(self, graph: Graph, initial: Optional[Matching] = None) -> Matching:
        """Boost to a (1+eps)-approximate maximum matching of ``graph``."""
        # Honour the profile's backend selector (no-op when backend=None or
        # the input already matches; matchings transfer between
        # representations because vertex ids are preserved).
        graph = self.profile.resolve_graph(graph)
        matching = initial.copy() if initial is not None else self.initial_matching(graph)
        driver = OracleDriver(self.oracle, self.profile, rng=self.rng)
        # the graph is fixed for the whole run: share the frozen derived
        # views (CSR / sorted neighbours / packed rows) across its phases
        views = FrozenViews()
        for h in self.profile.scales:
            for _t in range(self.profile.phases(h)):
                self.counters.add("phases")
                records = run_phase(graph, matching, self.profile, h, driver,
                                    counters=self.counters,
                                    check_invariants=self.check_invariants,
                                    shared_views=views)
                gained = apply_augmentations(matching, records)
                self.counters.add("matching_gain", gained)
                if self.profile.early_exit and gained == 0:
                    break
        return matching


def boost_matching(graph: Graph, eps: float,
                   oracle: Optional[MatchingOracle] = None,
                   profile: Optional[ParameterProfile] = None,
                   counters: Optional[Counters] = None,
                   seed: Optional[int] = None,
                   check_invariants: bool = False) -> Matching:
    """Convenience wrapper: build a :class:`BoostingFramework` and run it."""
    framework = BoostingFramework(eps, oracle=oracle, profile=profile,
                                  counters=counters, seed=seed,
                                  check_invariants=check_invariants)
    return framework.run(graph)
