"""Parameter schedules for the framework.

The paper's algorithm is organised as

    scales h = 1/2, 1/4, ..., eps^2/64          (Algorithm 1, line 2)
      phases t = 1 .. 144/(h*eps)               (Algorithm 1, line 3)
        pass-bundles tau = 1 .. 72/(h*eps)      (Algorithm 2, line 5)
          [oracle mode] stages s = 0 .. l_max,  (Algorithm 5)
            iterations   1 .. 22*c*ln(1/eps)    (Algorithms 4 and 5)

with l_max = 3/eps, structure-size limit limit_h = 6/h + 1 and the structure
size bound Delta_h = 36 h / eps (Lemma 4.5).

Those constants are proof artefacts: they are chosen so that union bounds and
negligibility arguments close, and they are wildly conservative (the paper
itself notes that e.g. delta = eps^107 "can be greatly reduced by a more
careful analysis", Remark 3).  Executing the literal schedule on any graph a
Python process can hold would perform astronomically many no-op passes.

:class:`ParameterProfile` therefore exposes two constructors:

* :meth:`ParameterProfile.paper` -- the literal formulas, for inspection and
  for the invocation-count *accounting* reported in the Table 1 benchmark;
* :meth:`ParameterProfile.practical` -- the same schedule *shape* with small
  multiplicative constants and early-exit enabled, used for actually running
  the algorithms.  All approximation-quality tests run against this profile
  and verify the output empirically against the exact optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional


def _next_power_of_two_inverse(eps: float) -> float:
    """Round eps down so that 1/eps is a power of two (Section 3 assumption)."""
    if not 0 < eps <= 0.5:
        raise ValueError(f"eps must lie in (0, 0.5], got {eps}")
    k = math.ceil(math.log2(1.0 / eps))
    return 1.0 / (2 ** k)


@dataclass(frozen=True)
class ParameterProfile:
    """A concrete parameter schedule.

    Attributes
    ----------
    eps:
        Target approximation parameter (possibly rounded so 1/eps is a power
        of two).
    ell_max:
        Maximum label / structure depth, ``3/eps`` in the paper.
    scales:
        The list of scales ``h`` (decreasing powers of two).
    phase_factor, bundle_factor:
        ``phases(h) = ceil(phase_factor / (h * eps))`` and similarly for
        pass-bundles; the paper uses 144 and 72.
    sim_iterations:
        Iterations per simulated procedure (Algorithms 4/5); the paper uses
        ``22 c ln(1/eps)``.
    limit_factor:
        ``limit_h = limit_factor / h + 1`` (paper: 6).
    delta:
        The ``delta`` handed to the weak oracle in Section 6 (paper: eps^107;
        practical: Theta(eps)).
    early_exit:
        Allow skipping the remainder of a scale once a phase finds no
        augmentation (sound: phases are deterministic restarts, so an
        unproductive phase would repeat forever).
    max_phase_cap, max_bundle_cap:
        Hard caps to keep practical runs bounded.
    backend:
        Graph storage backend the static frameworks should run on (a name
        from :data:`repro.graph.backends.BACKENDS`), or ``None`` (default) to
        keep whatever backend the input graph already uses.  When set,
        :func:`~repro.core.streaming.semi_streaming_matching` and
        :class:`~repro.core.boosting.BoostingFramework` convert their input
        once at entry (via :meth:`resolve_graph`); ``"csr"`` enables the
        vectorized NumPy fast paths regardless of how the input was built.
        The weak-oracle/dynamic frameworks ignore this field: their oracles
        are *bound* to a live graph object that is mutated in place, so the
        backend must be chosen when that graph (or :class:`DynamicGraph`) is
        constructed.
    """

    eps: float
    ell_max: int
    scales: List[float]
    phase_factor: float
    bundle_factor: float
    sim_iterations: int
    limit_factor: float
    delta: float
    early_exit: bool = True
    max_phase_cap: int = 10 ** 9
    max_bundle_cap: int = 10 ** 9
    oracle_c: float = 2.0
    backend: Optional[str] = None
    #: phase-engine selector: ``"array"`` (vectorized candidate generation,
    #: the default), ``"kernel"`` (the array engine plus packed-bitset
    #: word-parallel sweeps from :mod:`repro.core.kernels` on the hot
    #: candidate passes; degrades to plain array behaviour when the packed
    #: adjacency would blow the memory budget) or ``"reference"`` (the
    #: scalar path, kept byte-identical for the parity suite; also the
    #: fallback when NumPy is missing).  All three engines are
    #: byte-identical -- same matchings, same counters, same rng stream.
    engine: str = "array"
    #: epoch-repair selector for the dynamic maintainers: ``"rebuild"`` (the
    #: default -- every epoch boundary reconstructs the per-phase state from
    #: scratch) or ``"incremental"`` (reuse a persistent
    #: :class:`~repro.core.repair.RepairContext` so a rebuild touches only
    #: the state the updates since the previous rebuild actually dirtied).
    #: Both modes execute the identical algorithm and are byte-identical --
    #: same matchings, same counters, same rng stream -- which the repair
    #: parity suite pins, mirroring the ``engine`` seam.
    repair: str = "rebuild"
    #: incremental-repair fallback threshold: when more than this many
    #: distinct edges changed since the frozen-graph views were last synced,
    #: the :class:`~repro.core.repair.RepairContext` recompiles them
    #: wholesale instead of patching (patching is O(m + k) per sync; past
    #: this point the wholesale O(m log m) rebuild is cheaper and simpler)
    repair_patch_cap: int = 2048

    # ------------------------------------------------------------ constructors
    @classmethod
    def paper(cls, eps: float, c: float = 2.0,
              backend: Optional[str] = None) -> "ParameterProfile":
        """The literal schedule of the paper (use for accounting, not running)."""
        eps = _next_power_of_two_inverse(eps)
        ell_max = max(1, int(round(3.0 / eps)))
        scales = cls._scales(eps)
        sim_iters = max(1, int(math.ceil(22 * c * math.log(1.0 / eps))))
        return cls(
            eps=eps,
            ell_max=ell_max,
            scales=scales,
            phase_factor=144.0,
            bundle_factor=72.0,
            sim_iterations=sim_iters,
            limit_factor=6.0,
            delta=eps ** 107,
            early_exit=False,
            oracle_c=c,
            backend=backend,
        )

    @classmethod
    def practical(cls, eps: float, c: float = 2.0,
                  max_phase_cap: int = 64, max_bundle_cap: int = 256,
                  backend: Optional[str] = None) -> "ParameterProfile":
        """Same schedule shape with small constants and early exit (default)."""
        eps = _next_power_of_two_inverse(eps)
        ell_max = max(3, int(round(3.0 / eps)))
        scales = cls._scales(eps)
        sim_iters = max(2, int(math.ceil(2 * math.log(1.0 / eps) + 2)))
        return cls(
            eps=eps,
            ell_max=ell_max,
            scales=scales,
            phase_factor=4.0,
            bundle_factor=4.0,
            sim_iterations=sim_iters,
            limit_factor=6.0,
            delta=max(eps / 8.0, 1e-6),
            early_exit=True,
            max_phase_cap=max_phase_cap,
            max_bundle_cap=max_bundle_cap,
            oracle_c=c,
            backend=backend,
        )

    # ------------------------------------------------------------ backend
    def resolve_graph(self, graph):
        """Return ``graph`` on this profile's backend (converted iff needed).

        The single entry-point helper every framework that honours
        ``backend`` should call: ``backend=None`` returns the graph
        unchanged, otherwise a one-time O(m) conversion happens only when the
        backends actually differ (vertex ids are preserved, so matchings
        computed on the result fit the original graph).
        """
        if self.backend is not None and graph.backend_name != self.backend:
            return graph.with_backend(self.backend)
        return graph

    # ------------------------------------------------------------ schedule API
    @staticmethod
    def _scales(eps: float) -> List[float]:
        scales: List[float] = []
        h = 0.5
        floor = (eps ** 2) / 64.0
        while h >= floor and h > 1e-12:
            scales.append(h)
            h /= 2.0
        if not scales:
            scales.append(0.5)
        return scales

    def phases(self, h: float) -> int:
        """Number of phases at scale ``h``."""
        return min(self.max_phase_cap,
                   max(1, int(math.ceil(self.phase_factor / (h * self.eps)))))

    def pass_bundles(self, h: float) -> int:
        """Number of pass-bundles per phase at scale ``h`` (tau_max)."""
        return min(self.max_bundle_cap,
                   max(1, int(math.ceil(self.bundle_factor / (h * self.eps)))))

    def structure_limit(self, h: float) -> int:
        """``limit_h``: structures at or above this size are put on hold."""
        return max(3, int(math.ceil(self.limit_factor / h)) + 1)

    def structure_size_bound(self, h: float) -> int:
        """``Delta_h = 36 h / eps`` (Lemma 4.5), the proof-level size bound."""
        return max(3, int(math.ceil(36.0 * h / self.eps)))

    def stages(self) -> range:
        """Stage labels for the Extend-Active-Path simulation (Algorithm 5)."""
        return range(0, self.ell_max + 1)

    @property
    def label_default(self) -> int:
        """The initial label ``l_max + 1`` of every matched arc."""
        return self.ell_max + 1

    # ---------------------------------------------------------- cost formulas
    def paper_invocation_bound(self) -> float:
        """O(log(1/eps)/eps^7) -- the headline oracle-call bound of Theorem 1.1."""
        return math.log(1.0 / self.eps) / (self.eps ** 7)

    def fmu22_invocation_bound(self) -> float:
        """O(1/eps^52) -- the [FMU22] bound quoted in Table 1 (MPC row)."""
        return 1.0 / (self.eps ** 52)

    def fmu22_mmss25_invocation_bound(self) -> float:
        """O(1/eps^39) -- the [FMU22]+[MMSS25] bound quoted in Table 1."""
        return 1.0 / (self.eps ** 39)
