"""``Alg-Phase``: pass-bundles, the two streaming passes, and backtracking.

This module implements Algorithm 2 of the paper, parameterised by a *driver*
object that supplies the two expensive procedures of each pass-bundle:

* ``extend_active_path(state)``  -- Algorithm 3 in the streaming algorithm, or
  its oracle-driven simulation (Algorithm 5 / Section 6.6);
* ``contract_and_augment(state)`` -- Section 4.7 in the streaming algorithm, or
  its simulation (Algorithm 4 / Section 6.5).

The schedule around the driver (per-bundle initialisation of the on-hold /
modified / extended marks, the backtracking of stuck structures, the recording
and end-of-phase application of augmentations) is shared by every mode, which
is exactly the point of the paper's framework: only the two procedures need a
model-specific implementation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, Tuple

try:  # optional: PhaseState downgrades to engine="reference" without numpy
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

try:  # the packed-bitset kernel tier rides on numpy too
    from repro.core import kernels
except ImportError:  # pragma: no cover - the image bakes numpy in
    kernels = None  # type: ignore[assignment]

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.structures import AugmentationRecord, PhaseState, Structure
from repro.core.operations import augment_op, contract_op, overtake_op

Edge = Tuple[int, int]


class PhaseDriver(Protocol):
    """The two model-specific procedures of a pass-bundle."""

    def extend_active_path(self, state: PhaseState) -> None:  # pragma: no cover
        ...

    def contract_and_augment(self, state: PhaseState) -> None:  # pragma: no cover
        ...


# ---------------------------------------------------------------------------
# shared passes
# ---------------------------------------------------------------------------

def try_extend_arc(state: PhaseState, u: int, v: int) -> Optional[str]:
    """Apply Algorithm 3's per-arc logic to the arc ``(u, v)``.

    Returns the name of the operation performed (``"contract"``, ``"augment"``,
    ``"overtake"``) or ``None`` if the arc was skipped.  A structure that is on
    hold or already extended in this pass is never extended again (Section 4.6).
    """
    if state.removed[u] or state.removed[v]:
        return None
    nu = state.omega(u)
    nv = state.omega(v)
    if nu is None or nv is nu:
        return None
    structure = nu.structure
    if structure.working is not nu:
        return None
    if state.matching.contains_edge(u, v):
        return None
    if structure.on_hold or structure.extended:
        return None

    if nv is not None and nv.outer:
        if nv.structure is structure:
            contract_op(state, u, v)
            return "contract"
        augment_op(state, u, v)
        return "augment"

    # Omega(v) is inner or unvisited: candidate Overtake (case 3 of Section 4.6)
    if state.matching.is_free(v):
        return None
    if nv is not None and nv.structure is structure and nv.is_ancestor_of(nu):
        return None
    k = state.distance(nu) + 1
    mate = state.matching.mate(v)
    assert mate is not None
    if k < state.label_of_edge(v, mate):
        overtake_op(state, u, v, k)
        return "overtake"
    return None


def _find_type1_arc(state: PhaseState, structure: Structure) -> Optional[Edge]:
    """First type-1 arc out of the structure's working node, or ``None``.

    Candidate order is the working node's vertex order crossed with sorted
    neighbour order -- identical for both engines, so the vectorized mask
    scan below picks exactly the arc the scalar reference loop would.
    """
    w = structure.working
    assert w is not None
    # Bulk mask scan only pays off on non-trivial blossoms; a trivial
    # working node (the overwhelmingly common case) walks its memoised
    # sorted neighbour list scalar-wise.  All paths scan the identical
    # candidate order, so the engines stay byte-identical either way.
    if state.engine == "kernel" and not w.is_trivial:
        if state.packed_adjacency() is not None:
            # outer vertices of this structure minus the working node itself:
            # one ANDN sweep replaces the per-candidate node/structure checks
            mask = (structure.outer_bits()
                    & ~kernels.int_from_indices(w.vertices))
            mate = state.matching.mate
            for x in w.vertices:
                hit = state.packed_int_row(x) & mask
                if not hit:
                    continue
                y = (hit & -hit).bit_length() - 1
                if mate(x) == y:
                    # x has exactly one mate, so at most one bit to skip
                    hit &= hit - 1
                    if not hit:
                        continue
                    y = (hit & -hit).bit_length() - 1
                return x, y
            return None
    if state.engine in ("array", "kernel") and not w.is_trivial:
        indptr, indices = state.adjacency()
        verts = w.vertices
        chunks = [indices[indptr[x]:indptr[x + 1]] for x in verts]
        ys = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if ys.size == 0:
            return None
        counts = [len(c) for c in chunks]
        xs = np.repeat(np.asarray(verts, dtype=np.int64), counts)
        mask = (state.outer_arr[ys] & (state.sid_arr[ys] == structure.alpha)
                & (state.nid_arr[ys] != w.id) & (state.mate_arr[xs] != ys))
        hit = np.flatnonzero(mask)
        if hit.size == 0:
            return None
        k = int(hit[0])
        return int(xs[k]), int(ys[k])
    for x in w.vertices:
        for y in state.sorted_neighbors(x):
            if state.removed[y]:
                continue
            ny = state.node_of[y]
            if (ny is not None and ny is not w and ny.outer
                    and ny.structure is structure
                    and not state.matching.contains_edge(x, y)):
                return (x, y)
    return None


def contract_pass(state: PhaseState) -> int:
    """Step 1 of Contract-and-Augment: exhaust type-1 arcs (Section 4.7).

    For every structure, repeatedly contract blossoms containing the working
    vertex until no edge connects the working node to another outer node of
    the same structure.  Contraction is local to a structure, so one sweep over
    the structures suffices.  Returns the number of contractions performed.
    """
    total = 0
    for structure in state.live_structures():
        while structure.working is not None:
            found = _find_type1_arc(state, structure)
            if found is None:
                break
            contract_op(state, *found)
            total += 1
    return total


def _type2_candidates(state: PhaseState):
    """Index array (into the key-sorted edge arrays) of candidate type-2 arcs.

    The mask is computed against the state *before* any augmentation; that is
    sound because augmenting only removes structures, so it can invalidate a
    candidate (the per-candidate re-check catches that) but never create one.
    """
    eu, ev = state.edge_arrays()
    if eu.size == 0:
        return np.zeros(0, dtype=np.int64)
    live = (state.outer_arr[eu] & state.outer_arr[ev]
            & (state.sid_arr[eu] != state.sid_arr[ev])
            & (state.mate_arr[eu] != ev))
    return np.flatnonzero(live)


def augment_pass(state: PhaseState) -> int:
    """Step 2 of Contract-and-Augment, exact version: exhaust type-2 arcs.

    A single sweep suffices because augmenting only removes structures and can
    never create a new outer-outer arc between surviving structures.
    Returns the number of augmentations performed.
    """
    total = 0
    if state.engine in ("array", "kernel"):
        eu, ev = state.edge_arrays()
        idx = _type2_candidates(state)
        candidates = zip(eu[idx].tolist(), ev[idx].tolist())
    else:
        candidates = iter(state.edge_pairs())
    for u, v in candidates:
        if state.removed[u] or state.removed[v]:
            continue
        nu, nv = state.node_of[u], state.node_of[v]
        if nu is None or nv is None or not (nu.outer and nv.outer):
            continue
        if nu.structure is nv.structure:
            continue
        if state.matching.contains_edge(u, v):
            continue
        augment_op(state, u, v)
        total += 1
    return total


def backtrack_pass(state: PhaseState) -> int:
    """``Backtrack-Stuck-Structures`` (Section 4.8).

    Every structure that is active, not on hold and not modified in this
    pass-bundle retreats its working vertex by one matched step (to the parent
    of its parent) or becomes inactive if the working vertex is the root.
    Returns the number of backtracks performed.
    """
    total = 0
    for structure in state.live_structures():
        if structure.on_hold or structure.modified:
            continue
        w = structure.working
        if w is None:
            continue
        if w.is_root:
            structure.working = None
        else:
            parent = w.parent
            assert parent is not None
            structure.working = parent.parent
        state.counters.add("backtracks")
        total += 1
    return total


# ---------------------------------------------------------------------------
# the streaming (exact) driver
# ---------------------------------------------------------------------------

class DirectDriver:
    """The semi-streaming driver: both procedures scan the edge stream directly.

    ``shuffle`` controls whether the stream order is re-randomised for every
    pass (the model allows an arbitrary order per pass; randomising avoids
    adversarial orderings on the synthetic workloads).
    """

    def __init__(self, rng: Optional[random.Random] = None, shuffle: bool = True) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self.shuffle = shuffle

    def _arc_stream(self, state: PhaseState) -> List[Edge]:
        # one bulk pull of both arc orientations from the frozen phase view
        # (vectorized zip on the CSR arrays) instead of per-edge iteration
        arcs = list(state.arc_pairs())
        if self.shuffle:
            self.rng.shuffle(arcs)
        return arcs

    def extend_active_path(self, state: PhaseState) -> None:
        state.counters.add("passes")
        for u, v in self._arc_stream(state):
            try_extend_arc(state, u, v)

    def contract_and_augment(self, state: PhaseState) -> None:
        state.counters.add("passes")
        contract_pass(state)
        augment_pass(state)


# ---------------------------------------------------------------------------
# running a phase
# ---------------------------------------------------------------------------

def run_phase(graph: Graph, matching: Matching, profile: ParameterProfile,
              h: float, driver: PhaseDriver,
              counters: Optional[Counters] = None,
              check_invariants: bool = False,
              context=None, shared_views=None) -> List[AugmentationRecord]:
    """Execute one phase (Algorithm 2) and return the recorded augmentations.

    The matching is *not* modified; apply the returned records with
    :func:`repro.core.operations.apply_augmentations` (Algorithm 1, line 6).

    ``context`` (a :class:`~repro.core.repair.RepairContext`) switches the
    phase to incremental repair: the per-vertex state and frozen views are
    borrowed from the context instead of built from scratch, and returned to
    the clean baseline on the way out (even on error).  The executed
    algorithm is byte-identical either way.

    ``shared_views`` (a :class:`~repro.core.structures.FrozenViews`) lets a
    framework running many phases over one fixed graph share the frozen
    derived views (CSR, sorted neighbours, packed rows) across them instead
    of rematerialising per phase; ignored under ``context``.
    """
    counters = counters if counters is not None else Counters()
    state = PhaseState(graph, matching, profile.ell_max, counters,
                       engine=profile.engine, context=context,
                       shared_views=shared_views)
    try:
        state.init_structures()
        if not state.structures:
            # no free vertices -> no structures -> no operation can ever
            # fire; skip the pass-bundle schedule outright (warm-started
            # rebuilds hit this constantly)
            return state.records
        limit = profile.structure_limit(h)
        tau_max = profile.pass_bundles(h)

        progress_keys = ("augmentations", "contractions", "overtakes")
        for _tau in range(tau_max):
            counters.add("pass_bundles")
            for structure in state.live_structures():
                structure.reset_marks(limit)
            # only the three progress counters gate early exit; reading them
            # directly avoids copying the whole counter dict every bundle
            before = [counters.get(key) for key in progress_keys]

            driver.extend_active_path(state)
            driver.contract_and_augment(state)
            backtrack_pass(state)

            if check_invariants:
                state.check_invariants()

            if not state.structures:
                break  # every structure augmented away; later bundles no-op

            if profile.early_exit:
                progress = sum(counters.get(key) - prev
                               for key, prev in zip(progress_keys, before))
                any_active = any(s.active for s in state.live_structures())
                if progress == 0 and not any_active:
                    break

        return state.records
    finally:
        if context is not None:
            context.detach()
