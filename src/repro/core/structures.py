"""Free-vertex structures, blossom nodes, labels and the per-phase state.

This module implements the data model of Section 4.1:

* a :class:`StructNode` is a vertex of the contracted graph ``G' = G/Omega``
  that belongs to some structure -- either a trivial blossom (a single
  G-vertex) or a contracted non-trivial blossom (an odd set of G-vertices with
  a base);
* a :class:`Structure` ``S_alpha`` is an alternating tree of struct-nodes
  rooted at the free vertex ``alpha``, with a working vertex ``w'_alpha`` and
  the on-hold / modified / extended marks of Section 4.4;
* a :class:`PhaseState` holds the global per-phase state: which structure (if
  any) each G-vertex belongs to, which vertices were (hypothetically) removed
  by ``Augment``, the labels of matched edges (Definition 4.4), and the
  augmentations recorded so far.

Deviations from the paper:

* labels are kept per matched *edge* rather than per directed arc -- a
  conservative simplification (it can only forbid overtakes the paper would
  allow, never enable an illegal one);
* a recorded augmentation stores the local re-matching of the two structures'
  vertex sets rather than an explicit alternating path; the re-matching is
  produced by an exact Edmonds search on that (small) vertex set, so every
  recorded augmentation increases the matching size by exactly one when it is
  applied at the end of the phase.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph, normalize_edge
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters

Edge = Tuple[int, int]

_node_ids = itertools.count()


class OrderedNodeSet:
    """Insertion-ordered set of :class:`StructNode`\\ s.

    Iteration order must be determined by the algorithm alone: structures
    are walked when collecting outer vertices, so a plain ``set`` (iterated
    in object-address hash order) made seeded runs diverge between processes
    -- the parallel bench runner exposed exactly that.  A dict preserves
    insertion order; membership stays identity-based like the set it
    replaces.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable["StructNode"] = ()) -> None:
        self._items: Dict["StructNode", None] = dict.fromkeys(items)

    def add(self, node: "StructNode") -> None:
        self._items[node] = None

    def discard(self, node: "StructNode") -> None:
        self._items.pop(node, None)

    def clear(self) -> None:
        self._items.clear()

    def __contains__(self, node: object) -> bool:
        return node in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OrderedNodeSet({list(self._items)!r})"


class StructNode:
    """A vertex of the contracted graph ``G'`` inside some structure.

    A trivial node holds a single G-vertex; a blossom node holds an odd number
    of G-vertices and remembers its *base* (the unique vertex left unmatched by
    the matching restricted to the blossom, Section 3.2).
    Inner nodes are always trivial (Definition 3.8, condition C2).
    """

    __slots__ = ("id", "vertices", "base", "outer", "parent", "children", "structure")

    def __init__(self, vertices: Sequence[int], base: int, outer: bool,
                 structure: "Structure") -> None:
        self.id = next(_node_ids)
        self.vertices: List[int] = list(vertices)
        self.base = base
        self.outer = outer
        self.parent: Optional["StructNode"] = None
        self.children: List["StructNode"] = []
        self.structure = structure

    @property
    def is_trivial(self) -> bool:
        return len(self.vertices) == 1

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> Iterable["StructNode"]:
        """This node and all its ancestors up to the root."""
        node: Optional[StructNode] = self
        while node is not None:
            yield node
            node = node.parent

    def subtree(self) -> List["StructNode"]:
        """This node and all its descendants (iterative DFS)."""
        out = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    def is_ancestor_of(self, other: "StructNode") -> bool:
        return any(anc is self for anc in other.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "outer" if self.outer else "inner"
        return f"StructNode(id={self.id}, {kind}, base={self.base}, |B|={len(self.vertices)})"


class Structure:
    """The structure ``S_alpha`` of a free vertex ``alpha`` (Definition 4.1)."""

    __slots__ = ("alpha", "root", "working", "nodes", "g_vertices",
                 "on_hold", "modified", "extended")

    def __init__(self, alpha: int) -> None:
        self.alpha = alpha
        self.root = StructNode([alpha], alpha, outer=True, structure=self)
        self.working: Optional[StructNode] = self.root
        self.nodes: OrderedNodeSet = OrderedNodeSet((self.root,))
        self.g_vertices: Set[int] = {alpha}
        self.on_hold = False
        self.modified = False
        self.extended = False

    @property
    def size(self) -> int:
        """Number of G-vertices in the structure (|S_alpha| of Section 5.1)."""
        return len(self.g_vertices)

    @property
    def active(self) -> bool:
        """Whether the structure has a working vertex (Definition 4.3)."""
        return self.working is not None

    def active_path(self) -> List[StructNode]:
        """Nodes on the active path, root first (Definition 4.2); [] if inactive."""
        if self.working is None:
            return []
        path = list(self.working.ancestors())
        path.reverse()
        return path

    def outer_vertices(self) -> List[int]:
        """All G-vertices lying in outer nodes of the structure."""
        out: List[int] = []
        for node in self.nodes:
            if node.outer:
                out.extend(node.vertices)
        return out

    def reset_marks(self, limit: int) -> None:
        """Per-pass-bundle initialisation (Algorithm 2, lines 6-9)."""
        self.on_hold = self.size >= limit
        self.modified = False
        self.extended = False

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Structure(alpha={self.alpha}, size={self.size}, "
                f"active={self.active}, on_hold={self.on_hold})")


@dataclass
class AugmentationRecord:
    """One recorded augmentation: the vertex set and its new local matching."""

    vertices: List[int]
    new_edges: List[Edge]


class PhaseState:
    """Global state of one phase (Algorithm 2) over a graph and matching."""

    def __init__(self, graph: Graph, matching: Matching, ell_max: int,
                 counters: Optional[Counters] = None) -> None:
        self.graph = graph
        self.matching = matching
        self.ell_max = ell_max
        self.label_default = ell_max + 1
        self.counters = counters if counters is not None else Counters()

        n = graph.n
        self.node_of: List[Optional[StructNode]] = [None] * n
        self.removed: List[bool] = [False] * n
        # Labels of matched edges (Definition 4.4), keyed by canonical edge.
        self.edge_label: Dict[Edge, int] = {}
        self.structures: Dict[int, Structure] = {}
        self.records: List[AugmentationRecord] = []

    # ----------------------------------------------------------- construction
    def init_structures(self) -> None:
        """Create the single-vertex structure of every free vertex (Alg. 2, l.3)."""
        for alpha in self.matching.free_vertices():
            structure = Structure(alpha)
            self.structures[alpha] = structure
            self.node_of[alpha] = structure.root

    # ------------------------------------------------------------------ views
    def omega(self, v: int) -> Optional[StructNode]:
        """``Omega(v)``: the struct-node containing ``v`` (None if unvisited)."""
        return self.node_of[v]

    def structure_of(self, v: int) -> Optional[Structure]:
        node = self.node_of[v]
        return node.structure if node is not None else None

    def is_unvisited(self, v: int) -> bool:
        return self.node_of[v] is None

    def is_outer(self, v: int) -> bool:
        node = self.node_of[v]
        return node is not None and node.outer

    def is_inner(self, v: int) -> bool:
        node = self.node_of[v]
        return node is not None and not node.outer

    def live_structures(self) -> List[Structure]:
        return list(self.structures.values())

    # ----------------------------------------------------------------- labels
    def label_of_edge(self, u: int, v: int) -> int:
        """Label of the matched edge {u, v} (default ``l_max + 1``)."""
        return self.edge_label.get(normalize_edge(u, v), self.label_default)

    def set_label(self, u: int, v: int, value: int) -> None:
        self.edge_label[normalize_edge(u, v)] = value

    def label_of_vertex(self, v: int) -> int:
        """``l(v)`` of Section 5.1: 0 for free vertices, else its matched-edge label."""
        mate = self.matching.mate(v)
        if mate is None:
            return 0
        return self.label_of_edge(v, mate)

    def distance(self, node: StructNode) -> int:
        """``distance(u)`` of Section 4.6: 0 at the root, else the label of the
        matched edge connecting the node's base to its (inner) parent."""
        if node.is_root:
            return 0
        parent = node.parent
        assert parent is not None and not parent.outer and parent.is_trivial
        return self.label_of_edge(parent.vertices[0], node.base)

    # ------------------------------------------------------------ type tests
    def arc_type(self, u: int, v: int) -> int:
        """Classify the G-arc ``(u, v)`` per Definition 5.2.

        Returns 1, 2 or 3 for the three useful types and 0 otherwise.  The arc
        is interpreted with ``u`` as the tail:

        * type 1 -- both endpoints outer in the same structure and one of them
          is the working vertex (a ``Contract`` opportunity);
        * type 2 -- outer endpoints in two different structures (an ``Augment``
          opportunity; no working-vertex requirement);
        * type 3 -- ``Omega(u)`` is the working vertex of a structure that is
          not on hold, ``Omega(v)`` is inner or unvisited and matched, and its
          label exceeds ``distance(u) + 1`` (an ``Overtake`` opportunity).
        """
        if self.removed[u] or self.removed[v]:
            return 0
        if self.matching.contains_edge(u, v):
            return 0
        nu, nv = self.node_of[u], self.node_of[v]
        if nu is None or not nu.outer:
            return 0
        su = nu.structure
        if nv is not None and nv is nu:
            return 0
        if nv is not None and nv.outer:
            if nv.structure is su:
                return 1 if (su.working is nu or su.working is nv) else 0
            return 2
        # nv is inner or unvisited: candidate type 3
        if su.working is not nu:
            return 0
        if self.matching.is_free(v):
            return 0
        if su.on_hold:
            return 0
        if nv is not None and nv.structure is su and nv.is_ancestor_of(nu):
            # precondition (P2) of Overtake: never overtake an ancestor
            return 0
        if self.label_of_vertex(v) > self.distance(nu) + 1:
            return 3
        return 0

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Debug validator: raises ``AssertionError`` on inconsistent state.

        Checks vertex-disjointness of structures, the alternating-tree shape
        (root outer and free; parent/child alternation; inner nodes trivial
        and matched into their unique child), and node_of consistency.
        """
        seen: Set[int] = set()
        for structure in self.structures.values():
            assert structure.root.outer and structure.root.parent is None
            assert self.matching.is_free(structure.alpha)
            assert structure.alpha in structure.root.vertices
            for node in structure.nodes:
                assert node.structure is structure
                for x in node.vertices:
                    assert not self.removed[x], f"removed vertex {x} still in a structure"
                    assert self.node_of[x] is node, f"node_of[{x}] inconsistent"
                    assert x not in seen, f"vertex {x} in two structures"
                    seen.add(x)
                if node.parent is not None:
                    assert node.parent in structure.nodes
                    assert node in node.parent.children
                    assert node.outer != node.parent.outer, "tree must alternate outer/inner"
                if not node.outer:
                    assert node.is_trivial, "inner nodes must be trivial blossoms"
                    v = node.vertices[0]
                    mate = self.matching.mate(v)
                    assert mate is not None, "inner vertices are matched"
                    assert len(node.children) == 1, "inner node has exactly one child"
                    assert mate in node.children[0].vertices
                    assert node.children[0].base == mate
                else:
                    assert len(node.vertices) % 2 == 1, "blossoms have odd size"
                for child in node.children:
                    assert child.parent is node
            if structure.working is not None:
                assert structure.working in structure.nodes
                assert structure.working.outer, "working vertex is an outer vertex"
            assert structure.g_vertices == {x for node in structure.nodes
                                            for x in node.vertices}
        for v in range(self.graph.n):
            node = self.node_of[v]
            if node is not None:
                assert v in node.vertices
