"""Free-vertex structures, blossom nodes, labels and the per-phase state.

This module implements the data model of Section 4.1:

* a :class:`StructNode` is a vertex of the contracted graph ``G' = G/Omega``
  that belongs to some structure -- either a trivial blossom (a single
  G-vertex) or a contracted non-trivial blossom (an odd set of G-vertices with
  a base);
* a :class:`Structure` ``S_alpha`` is an alternating tree of struct-nodes
  rooted at the free vertex ``alpha``, with a working vertex ``w'_alpha`` and
  the on-hold / modified / extended marks of Section 4.4;
* a :class:`PhaseState` holds the global per-phase state: which structure (if
  any) each G-vertex belongs to, which vertices were (hypothetically) removed
  by ``Augment``, the labels of matched edges (Definition 4.4), and the
  augmentations recorded so far.

Deviations from the paper:

* labels are kept per matched *edge* rather than per directed arc -- a
  conservative simplification (it can only forbid overtakes the paper would
  allow, never enable an illegal one);
* a recorded augmentation stores the local re-matching of the two structures'
  vertex sets rather than an explicit alternating path; the re-matching is
  produced by an exact Edmonds search on that (small) vertex set, so every
  recorded augmentation increases the matching size by exactly one when it is
  applied at the end of the phase.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

try:  # NumPy is optional: without it PhaseState falls back to scalar state
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

try:  # the packed-bitset kernel tier rides on numpy too
    from repro.core import kernels as _kernels
except ImportError:  # pragma: no cover - the image bakes numpy in
    _kernels = None  # type: ignore[assignment]

from repro.graph.backends import compile_csr
from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters

Edge = Tuple[int, int]

_node_ids = itertools.count()


class OrderedNodeSet:
    """Insertion-ordered set of :class:`StructNode`\\ s.

    Iteration order must be determined by the algorithm alone: structures
    are walked when collecting outer vertices, so a plain ``set`` (iterated
    in object-address hash order) made seeded runs diverge between processes
    -- the parallel bench runner exposed exactly that.  A dict preserves
    insertion order; membership stays identity-based like the set it
    replaces.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable["StructNode"] = ()) -> None:
        self._items: Dict["StructNode", None] = dict.fromkeys(items)

    def add(self, node: "StructNode") -> None:
        self._items[node] = None

    def discard(self, node: "StructNode") -> None:
        self._items.pop(node, None)

    def clear(self) -> None:
        self._items.clear()

    def __contains__(self, node: object) -> bool:
        return node in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OrderedNodeSet({list(self._items)!r})"


class StructNode:
    """A vertex of the contracted graph ``G'`` inside some structure.

    A trivial node holds a single G-vertex; a blossom node holds an odd number
    of G-vertices and remembers its *base* (the unique vertex left unmatched by
    the matching restricted to the blossom, Section 3.2).
    Inner nodes are always trivial (Definition 3.8, condition C2).
    """

    __slots__ = ("id", "vertices", "base", "outer", "parent", "children", "structure")

    def __init__(self, vertices: Sequence[int], base: int, outer: bool,
                 structure: "Structure") -> None:
        self.id = next(_node_ids)
        self.vertices: List[int] = list(vertices)
        self.base = base
        self.outer = outer
        self.parent: Optional["StructNode"] = None
        self.children: List["StructNode"] = []
        self.structure = structure

    @property
    def is_trivial(self) -> bool:
        return len(self.vertices) == 1

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> Iterable["StructNode"]:
        """This node and all its ancestors up to the root."""
        node: Optional[StructNode] = self
        while node is not None:
            yield node
            node = node.parent

    def subtree(self) -> List["StructNode"]:
        """This node and all its descendants (iterative DFS)."""
        out = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    def is_ancestor_of(self, other: "StructNode") -> bool:
        return any(anc is self for anc in other.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "outer" if self.outer else "inner"
        return f"StructNode(id={self.id}, {kind}, base={self.base}, |B|={len(self.vertices)})"


class Structure:
    """The structure ``S_alpha`` of a free vertex ``alpha`` (Definition 4.1)."""

    __slots__ = ("alpha", "root", "working", "nodes", "g_vertices",
                 "on_hold", "modified", "extended",
                 "_outer_cache", "_sorted_cache",
                 "_outer_bits", "_member_bits")

    def __init__(self, alpha: int) -> None:
        self.alpha = alpha
        self.root = StructNode([alpha], alpha, outer=True, structure=self)
        self.working: Optional[StructNode] = self.root
        self.nodes: OrderedNodeSet = OrderedNodeSet((self.root,))
        self.g_vertices: Set[int] = {alpha}
        self.on_hold = False
        self.modified = False
        self.extended = False
        self._outer_cache: Optional[List[int]] = None
        self._sorted_cache: Optional[List[int]] = None
        self._outer_bits: Optional[int] = None
        self._member_bits: Optional[int] = None

    @property
    def size(self) -> int:
        """Number of G-vertices in the structure (|S_alpha| of Section 5.1)."""
        return len(self.g_vertices)

    @property
    def active(self) -> bool:
        """Whether the structure has a working vertex (Definition 4.3)."""
        return self.working is not None

    def active_path(self) -> List[StructNode]:
        """Nodes on the active path, root first (Definition 4.2); [] if inactive."""
        if self.working is None:
            return []
        path = list(self.working.ancestors())
        path.reverse()
        return path

    def outer_vertices(self) -> List[int]:
        """All G-vertices lying in outer nodes of the structure.

        Memoised between mutations (the sampling drivers call this once per
        oracle iteration); treat the returned list as read-only.
        """
        out = self._outer_cache
        if out is None:
            out = self._outer_cache = [x for node in self.nodes if node.outer
                                       for x in node.vertices]
        return out

    def sorted_vertices(self) -> List[int]:
        """``g_vertices`` in ascending order, memoised between mutations.

        The sampling drivers draw one uniform vertex per structure per
        iteration; sorting the set on every draw dominated the dynamic-stack
        profile, so the sorted view is cached and invalidated on mutation.
        """
        out = self._sorted_cache
        if out is None:
            out = self._sorted_cache = sorted(self.g_vertices)
        return out

    def outer_bits(self) -> int:
        """Indicator int of :meth:`outer_vertices` (kernel engine only).

        Memoised alongside the list view and invalidated by the same
        :meth:`invalidate_caches` call, so the two can never disagree.
        """
        bits = self._outer_bits
        if bits is None:
            bits = self._outer_bits = _kernels.int_from_indices(
                self.outer_vertices())
        return bits

    def member_bits(self) -> int:
        """Indicator int of ``g_vertices`` (kernel engine only)."""
        bits = self._member_bits
        if bits is None:
            bits = self._member_bits = _kernels.int_from_indices(
                self.sorted_vertices())
        return bits

    def invalidate_caches(self) -> None:
        """Drop memoised vertex views (call after membership/flag changes)."""
        self._outer_cache = None
        self._sorted_cache = None
        self._outer_bits = None
        self._member_bits = None

    def reset_marks(self, limit: int) -> None:
        """Per-pass-bundle initialisation (Algorithm 2, lines 6-9)."""
        self.on_hold = self.size >= limit
        self.modified = False
        self.extended = False

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Structure(alpha={self.alpha}, size={self.size}, "
                f"active={self.active}, on_hold={self.on_hold})")


@dataclass
class AugmentationRecord:
    """One recorded augmentation: the vertex set and its new local matching."""

    vertices: List[int]
    new_edges: List[Edge]


class FrozenViews:
    """Frozen-graph view cache, shareable across the phases of one rebuild.

    ``run_phase`` freezes the graph, and the boosting frameworks run many
    phases over the *same* fixed graph before it next mutates -- so the
    deterministic derived views (canonical edge pairs, CSR arrays, sorted
    neighbour lists, packed kernel rows and their int-tier mirrors) can be
    materialised once per rebuild instead of once per phase.  A framework
    threads one instance through ``run_phase(..., shared_views=...)``; a
    standalone phase gets a private instance and behaves exactly as before.
    Never reuse an instance across graph mutations, and never share one
    into a context-attached phase (the repair context patches its own
    packed copy between phases).
    """

    __slots__ = ("edge_pairs", "eu", "ev", "indptr", "indices", "nbrs",
                 "packed", "packed_ready", "int_rows")

    def __init__(self) -> None:
        self.edge_pairs: Optional[List[Edge]] = None
        self.eu = None
        self.ev = None
        self.indptr = None
        self.indices = None
        self.nbrs: Dict[int, List[int]] = {}
        self.packed = None
        self.packed_ready = False
        self.int_rows: Dict[int, int] = {}


class PhaseState:
    """Global state of one phase (Algorithm 2) over a graph and matching.

    Array layout (PR 4)
    -------------------
    The per-vertex state is kept twice: as the scalar Python structures the
    pointer-chasing code paths read (``node_of``, ``removed``, ``vlabel``)
    and, when NumPy is available, as flat int/bool array mirrors
    (``removed_arr``, ``vlabel_arr``, ``outer_arr``, ``sid_arr``,
    ``nid_arr``) the vectorized passes consume in bulk.  Both views are
    mutated ONLY through the helpers below (:meth:`register_node`,
    :meth:`mark_removed`, :meth:`move_to_structure`, :meth:`set_label`), so
    they can never diverge; :meth:`check_invariants` cross-checks them.

    Labels are stored per *vertex* rather than per matched edge: the matching
    is frozen for the duration of a phase (augmentations are recorded and
    applied afterwards), so every matched vertex has exactly one incident
    matched edge and ``vlabel[v]`` is that edge's label (Definition 4.4);
    free vertices keep ``vlabel[v] = 0``, which makes ``label_of_vertex`` an
    O(1) array read.

    The phase also freezes the graph, so canonical edge/arc/adjacency views
    are materialised lazily once per phase (:meth:`edge_pairs`,
    :meth:`edge_arrays`, :meth:`adjacency`, :meth:`sorted_neighbors`) in a
    deterministic key-sorted order shared by every backend and both engines.
    """

    def __init__(self, graph: Graph, matching: Matching, ell_max: int,
                 counters: Optional[Counters] = None,
                 engine: str = "array", context=None,
                 shared_views: Optional[FrozenViews] = None) -> None:
        if engine not in ("array", "reference", "kernel"):
            raise ValueError(f"unknown phase engine {engine!r}")
        self.graph = graph
        self.matching = matching
        self.ell_max = ell_max
        self.label_default = ell_max + 1
        self.counters = counters if counters is not None else Counters()
        # the vectorized engine needs numpy; degrade to the scalar reference
        self.engine = engine if _np is not None else "reference"
        self._use_arrays = _np is not None
        self.context = context
        self.structures: Dict[int, Structure] = {}
        self.records: List[AugmentationRecord] = []
        # frozen-graph derived views (edge pairs, CSR, sorted neighbours,
        # packed kernel rows + int mirrors), possibly shared across the
        # phases of one rebuild -- see FrozenViews.  Context-attached phases
        # always get a private instance: their packed/CSR views delegate to
        # the context's patched copies, and the int-tier row memo must stay
        # phase-local so between-phase patches are always observed.
        self._views = (shared_views
                       if shared_views is not None and context is None
                       else FrozenViews())

        if context is not None:
            # incremental repair: borrow the persistent per-vertex state and
            # the patchable frozen views instead of allocating O(n) afresh;
            # the mutation funnel below journals every touched vertex so the
            # context can reset in O(touched) when the phase detaches
            context.attach(self)
            return

        n = graph.n
        self.node_of: List[Optional[StructNode]] = [None] * n
        self.removed: List[bool] = [False] * n
        mate = matching.mate_list()
        default = self.label_default
        # per-vertex label of the (unique) incident matched edge; 0 if free
        self.vlabel: List[int] = [0 if m is None else default for m in mate]

        if self._use_arrays:
            self.mate_arr = _np.fromiter(
                (-1 if m is None else m for m in mate), dtype=_np.int64, count=n)
            self.matched_arr = self.mate_arr >= 0
            self.removed_arr = _np.zeros(n, dtype=bool)
            self.vlabel_arr = _np.where(self.matched_arr, default, 0).astype(_np.int64)
            self.outer_arr = _np.zeros(n, dtype=bool)
            self.sid_arr = _np.full(n, -1, dtype=_np.int64)
            self.nid_arr = _np.full(n, -1, dtype=_np.int64)
        else:  # pragma: no cover - exercised only without numpy
            self.mate_arr = None
            self.matched_arr = None
            self.removed_arr = None
            self.vlabel_arr = None
            self.outer_arr = None
            self.sid_arr = None
            self.nid_arr = None

    # ----------------------------------------------------------- construction
    def init_structures(self) -> None:
        """Create the single-vertex structure of every free vertex (Alg. 2, l.3)."""
        free = (self.context.free_vertices() if self.context is not None
                else self.matching.free_vertices())
        for alpha in free:
            structure = Structure(alpha)
            self.structures[alpha] = structure
            self.register_node(structure.root)

    # -------------------------------------------------- state mutation funnel
    def register_node(self, node: StructNode) -> None:
        """Point every vertex of ``node`` at it (scalar state + array mirrors)."""
        node_of = self.node_of
        for x in node.vertices:
            node_of[x] = node
        if self._use_arrays:
            verts = node.vertices
            self.nid_arr[verts] = node.id
            self.outer_arr[verts] = node.outer
            self.sid_arr[verts] = node.structure.alpha
        if self.context is not None:
            self.context._touched.extend(node.vertices)

    def move_to_structure(self, vertices: Sequence[int], alpha: int) -> None:
        """Re-home vertices' structure id after a cross-structure Overtake.

        No dirty journaling needed: a vertex only ever moves between
        structures after :meth:`register_node` put it in one, so it is
        already journalled.
        """
        if self._use_arrays and len(vertices):
            self.sid_arr[list(vertices)] = alpha

    def mark_removed(self, vertices: Iterable[int]) -> None:
        """Remove vertices from play for the rest of the phase (Augment)."""
        verts = list(vertices)
        removed = self.removed
        node_of = self.node_of
        for x in verts:
            removed[x] = True
            node_of[x] = None
        if self._use_arrays and verts:
            self.removed_arr[verts] = True
            self.sid_arr[verts] = -1
            self.nid_arr[verts] = -1
            self.outer_arr[verts] = False
        if self.context is not None:
            self.context._touched.extend(verts)

    # ------------------------------------------------------ frozen-graph views
    def edge_pairs(self) -> List[Edge]:
        """Canonical ``(u, v)`` edge tuples, key-sorted (both engines' order)."""
        if self.context is not None:
            return self.context.edge_pairs()
        views = self._views
        if views.edge_pairs is None:
            if self._use_arrays:
                eu, ev = self.edge_arrays()
                views.edge_pairs = list(zip(eu.tolist(), ev.tolist()))
            else:  # pragma: no cover - exercised only without numpy
                views.edge_pairs = sorted(self.graph.edge_list())
        return views.edge_pairs

    def edge_arrays(self):
        """Canonical endpoint arrays ``(eu, ev)`` with ``eu < ev``, key-sorted."""
        if self.context is not None:
            return self.context.edge_arrays()
        views = self._views
        if views.eu is None:
            backend = self.graph.backend
            if hasattr(backend, "edge_arrays"):
                views.eu, views.ev = backend.edge_arrays()
            else:
                pairs = sorted(self.graph.edge_list())
                views.eu = _np.fromiter((u for u, _ in pairs), dtype=_np.int64,
                                        count=len(pairs))
                views.ev = _np.fromiter((v for _, v in pairs), dtype=_np.int64,
                                        count=len(pairs))
        return views.eu, views.ev

    def adjacency(self):
        """CSR ``(indptr, indices)`` of the frozen phase graph (sorted order)."""
        if self.context is not None:
            return self.context.adjacency()
        views = self._views
        if views.indptr is None:
            backend = self.graph.backend
            if hasattr(backend, "csr_arrays"):
                views.indptr, views.indices = backend.csr_arrays()
            else:
                eu, ev = self.edge_arrays()
                views.indptr, views.indices = compile_csr(eu, ev, self.graph.n)
        return views.indptr, views.indices

    def sorted_neighbors(self, v: int) -> List[int]:
        """Neighbours of ``v`` in ascending order (memoised for the phase)."""
        if self.context is not None:
            return self.context.sorted_neighbors(v)
        cache = self._views.nbrs
        nbrs = cache.get(v)
        if nbrs is None:
            if self._use_arrays:
                indptr, indices = self.adjacency()
                nbrs = indices[indptr[v]:indptr[v + 1]].tolist()
            else:  # pragma: no cover - exercised only without numpy
                nbrs = sorted(self.graph.neighbor_list(v))
            cache[v] = nbrs
        return nbrs

    def packed_adjacency(self):
        """Packed uint64 adjacency rows of the frozen phase graph, or ``None``.

        The kernel engine's view: row ``v`` is the packed neighbour set of
        ``v``, built lazily (once per phase) from the CSR view via
        :func:`repro.core.kernels.pack_adjacency` and gated by
        :func:`repro.core.kernels.packing_budget_ok` -- callers must fall
        back to the array-tier scan on ``None``, which keeps the engines
        byte-identical either way.  Context-attached phases borrow the
        context's incrementally patched copy.
        """
        if self.context is not None:
            return self.context.packed_adjacency()
        views = self._views
        if not views.packed_ready:
            views.packed_ready = True
            n = self.graph.n
            if _kernels is not None and _kernels.packing_budget_ok(n):
                indptr, indices = self.adjacency()
                views.packed = _kernels.pack_adjacency(indptr, indices, n)
        return views.packed

    def packed_int_row(self, x: int) -> int:
        """Row ``x`` of :meth:`packed_adjacency` as one indicator int.

        The per-row sweep format (see the kernels module's int-tier notes):
        callers guard on ``packed_adjacency() is not None`` first.  Each
        touched row is converted once and memoised for as long as the views
        live -- one phase, or a whole rebuild under shared views (a
        context-attached phase always holds a private memo, so between-phase
        repair patches are always observed).
        """
        rows = self._views.int_rows
        row = rows.get(x)
        if row is None:
            row = rows[x] = _kernels.int_from_words(self.packed_adjacency()[x])
        return row

    def arc_pairs(self) -> List[Edge]:
        """Both orientations of every edge, grouped by (ascending) tail."""
        if self._use_arrays:
            indptr, indices = self.adjacency()
            src = _np.repeat(_np.arange(self.graph.n, dtype=_np.int64),
                             _np.diff(indptr))
            return list(zip(src.tolist(), indices.tolist()))
        out: List[Edge] = []  # pragma: no cover - exercised only without numpy
        for u in range(self.graph.n):
            out.extend((u, v) for v in self.sorted_neighbors(u))
        return out

    # ------------------------------------------------------------------ views
    def omega(self, v: int) -> Optional[StructNode]:
        """``Omega(v)``: the struct-node containing ``v`` (None if unvisited)."""
        return self.node_of[v]

    def structure_of(self, v: int) -> Optional[Structure]:
        node = self.node_of[v]
        return node.structure if node is not None else None

    def is_unvisited(self, v: int) -> bool:
        return self.node_of[v] is None

    def is_outer(self, v: int) -> bool:
        node = self.node_of[v]
        return node is not None and node.outer

    def is_inner(self, v: int) -> bool:
        node = self.node_of[v]
        return node is not None and not node.outer

    def live_structures(self) -> List[Structure]:
        return list(self.structures.values())

    # ----------------------------------------------------------------- labels
    def label_of_edge(self, u: int, v: int) -> int:
        """Label of the matched edge {u, v} (default ``l_max + 1``).

        Labels only ever attach to matched edges (Definition 4.4) and the
        matching is frozen per phase, so the label lives on the endpoints:
        for the matched pair ``{u, v}`` it is ``vlabel[u] (== vlabel[v])``.
        """
        if self.matching.mate(u) == v:
            return self.vlabel[u]
        return self.label_default

    def set_label(self, u: int, v: int, value: int) -> None:
        self.vlabel[u] = value
        self.vlabel[v] = value
        if self._use_arrays:
            self.vlabel_arr[u] = value
            self.vlabel_arr[v] = value
        if self.context is not None:
            self.context._label_touched.append(u)
            self.context._label_touched.append(v)

    def label_of_vertex(self, v: int) -> int:
        """``l(v)`` of Section 5.1: 0 for free vertices, else its matched-edge label."""
        return self.vlabel[v]

    def eligible_working(self, structure: Structure, stage: int) -> bool:
        """Whether the structure can extend at ``stage`` (Sections 5.5/6.6):
        it has a working vertex, is neither on hold nor already extended in
        this pass-bundle, and the working vertex's distance equals ``stage``.

        The single source of truth for the stage filter -- the stage-graph
        builder, the sampling driver's stage skip/in-structure sweep and the
        stage sampler all share it.
        """
        w = structure.working
        if w is None or structure.on_hold or structure.extended:
            return False
        # distance(w) inlined (this is the hottest predicate of the sampling
        # driver): 0 at the root, else the matched-edge label of the inner
        # parent's base vertex
        parent = w.parent
        if parent is None:
            return stage == 0
        return self.vlabel[parent.vertices[0]] == stage

    def distance(self, node: StructNode) -> int:
        """``distance(u)`` of Section 4.6: 0 at the root, else the label of the
        matched edge connecting the node's base to its (inner) parent."""
        if node.is_root:
            return 0
        parent = node.parent
        assert parent is not None and not parent.outer and parent.is_trivial
        # the inner parent is matched to this node's base (invariant), so the
        # matched-edge label is the parent vertex's vlabel
        return self.vlabel[parent.vertices[0]]

    # ------------------------------------------------------------ type tests
    def arc_type(self, u: int, v: int) -> int:
        """Classify the G-arc ``(u, v)`` per Definition 5.2.

        Returns 1, 2 or 3 for the three useful types and 0 otherwise.  The arc
        is interpreted with ``u`` as the tail:

        * type 1 -- both endpoints outer in the same structure and one of them
          is the working vertex (a ``Contract`` opportunity);
        * type 2 -- outer endpoints in two different structures (an ``Augment``
          opportunity; no working-vertex requirement);
        * type 3 -- ``Omega(u)`` is the working vertex of a structure that is
          not on hold, ``Omega(v)`` is inner or unvisited and matched, and its
          label exceeds ``distance(u) + 1`` (an ``Overtake`` opportunity).
        """
        if self.removed[u] or self.removed[v]:
            return 0
        if self.matching.contains_edge(u, v):
            return 0
        nu, nv = self.node_of[u], self.node_of[v]
        if nu is None or not nu.outer:
            return 0
        su = nu.structure
        if nv is not None and nv is nu:
            return 0
        if nv is not None and nv.outer:
            if nv.structure is su:
                return 1 if (su.working is nu or su.working is nv) else 0
            return 2
        # nv is inner or unvisited: candidate type 3
        if su.working is not nu:
            return 0
        if self.matching.is_free(v):
            return 0
        if su.on_hold:
            return 0
        if nv is not None and nv.structure is su and nv.is_ancestor_of(nu):
            # precondition (P2) of Overtake: never overtake an ancestor
            return 0
        if self.label_of_vertex(v) > self.distance(nu) + 1:
            return 3
        return 0

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Debug validator: raises ``AssertionError`` on inconsistent state.

        Checks vertex-disjointness of structures, the alternating-tree shape
        (root outer and free; parent/child alternation; inner nodes trivial
        and matched into their unique child), and node_of consistency.
        """
        seen: Set[int] = set()
        for structure in self.structures.values():
            assert structure.root.outer and structure.root.parent is None
            assert self.matching.is_free(structure.alpha)
            assert structure.alpha in structure.root.vertices
            for node in structure.nodes:
                assert node.structure is structure
                for x in node.vertices:
                    assert not self.removed[x], f"removed vertex {x} still in a structure"
                    assert self.node_of[x] is node, f"node_of[{x}] inconsistent"
                    assert x not in seen, f"vertex {x} in two structures"
                    seen.add(x)
                if node.parent is not None:
                    assert node.parent in structure.nodes
                    assert node in node.parent.children
                    assert node.outer != node.parent.outer, "tree must alternate outer/inner"
                if not node.outer:
                    assert node.is_trivial, "inner nodes must be trivial blossoms"
                    v = node.vertices[0]
                    mate = self.matching.mate(v)
                    assert mate is not None, "inner vertices are matched"
                    assert len(node.children) == 1, "inner node has exactly one child"
                    assert mate in node.children[0].vertices
                    assert node.children[0].base == mate
                else:
                    assert len(node.vertices) % 2 == 1, "blossoms have odd size"
                for child in node.children:
                    assert child.parent is node
            if structure.working is not None:
                assert structure.working in structure.nodes
                assert structure.working.outer, "working vertex is an outer vertex"
            assert structure.g_vertices == {x for node in structure.nodes
                                            for x in node.vertices}
        for v in range(self.graph.n):
            node = self.node_of[v]
            if node is not None:
                assert v in node.vertices

        # memoised per-structure views must agree with a fresh walk
        for structure in self.structures.values():
            if structure._outer_cache is not None:
                fresh = [x for node in structure.nodes if node.outer
                         for x in node.vertices]
                assert structure._outer_cache == fresh, "stale outer cache"
            if structure._sorted_cache is not None:
                assert structure._sorted_cache == sorted(structure.g_vertices), \
                    "stale sorted-vertex cache"
            if structure._outer_bits is not None:
                assert (_kernels.bits_of_int(structure._outer_bits)
                        == sorted(structure.outer_vertices())), \
                    "stale packed outer mask"
            if structure._member_bits is not None:
                assert (_kernels.bits_of_int(structure._member_bits)
                        == sorted(structure.g_vertices)), \
                    "stale packed member mask"

        # the packed adjacency (kernel engine) must mirror the CSR view
        packed = self._views.packed if self.context is None else None
        if packed is not None:
            indptr, indices = self.adjacency()
            for v in range(self.graph.n):
                assert (_kernels.iter_set_bits(packed[v])
                        == indices[indptr[v]:indptr[v + 1]].tolist()), \
                    f"packed adjacency row {v} diverged from the CSR view"

        # scalar state and array mirrors must never diverge
        if self._use_arrays:
            for v in range(self.graph.n):
                node = self.node_of[v]
                assert bool(self.removed_arr[v]) == bool(self.removed[v]), \
                    f"removed mirror diverged at {v}"
                assert int(self.vlabel_arr[v]) == self.vlabel[v], \
                    f"label mirror diverged at {v}"
                if node is None:
                    assert self.nid_arr[v] == -1 and self.sid_arr[v] == -1
                    assert not self.outer_arr[v]
                else:
                    assert self.nid_arr[v] == node.id, f"nid mirror at {v}"
                    assert self.sid_arr[v] == node.structure.alpha
                    assert bool(self.outer_arr[v]) == node.outer
