"""Packed-bitset kernel tier: word-parallel primitives for the hot paths.

The OMv substrate proved the payoff of packing Boolean rows into machine
words ("an honest ~64x constant factor"); this module generalises that trick
into a reusable kernel library the rest of the stack can build on.  The
design follows the layout-first mindset of the 2.5D sparse-matmul
decomposition (PAPERS.md): commit to a data layout -- here little-endian
uint64 words, bit ``j`` of a length-``n`` set living at word ``j >> 6``,
offset ``j & 63`` -- and the operations fall out as word-parallel primitives.

Layout contract
---------------
* A *packed set* over a universe of size ``n`` is a 1-D ``uint64`` array of
  ``words_for(n)`` words.  Bits at positions ``>= n`` in the last word are
  zero (every kernel preserves this, so popcounts never overcount).
* A *packed matrix* is a 2-D ``uint64`` array, one packed set per row.
* ``np.packbits``/``np.unpackbits`` (``bitorder="little"``) are used only at
  the boundaries (:func:`pack_indicator`, :func:`unpack_words`); everything
  between operates on whole words.
* Popcount goes through a 16-bit lookup table (:data:`POPCOUNT16`) -- the
  words are viewed as ``uint16`` quads, gathered through the table and
  summed, which keeps the working set at 64 KiB instead of a 2^64 table or a
  per-bit loop.

Backend selection
-----------------
``REPRO_KERNEL_BACKEND`` picks the implementation tier:

* ``"numpy"`` -- the vectorized NumPy kernels below (always available);
* ``"numba"`` -- JIT-compiled versions of the scan kernels, used only when
  the ``numba`` package imports cleanly; on hosts without it the selection
  *silently* degrades to ``"numpy"`` (byte-identical results, the bench
  records which backend actually ran via :func:`active_backend`);
* ``"auto"`` (default) -- ``"numba"`` if importable, else ``"numpy"``.

Byte-identity across backends is a hard contract: every kernel returns
bit-for-bit identical outputs under either backend (pinned by
``tests/test_kernels.py``), so flipping the env var can never change a
matching, a counter, or an epoch boundary.

Timing registry
---------------
Each public kernel is wrapped by :func:`_timed`; when timing is enabled
(:func:`enable_timing`, done by ``repro.bench --profile``) every call
accumulates ``(calls, total_ns)`` into :data:`KERNEL_TIMINGS` so the
profiler can append a per-kernel table to the hotspot report.  Disabled
(the default) the overhead is one branch per call.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.contracts import hot_path

#: bits per packed word (the layout contract; do not change casually --
#: checkpoints and fixtures encode it)
WORD_BITS = 64

#: popcount lookup table: POPCOUNT16[x] = number of set bits in the uint16 x.
#: Built once at import via unpackbits (boundary use, not a hot path).
POPCOUNT16: np.ndarray = (
    np.unpackbits(np.arange(1 << 16, dtype=np.uint16).view(np.uint8))
    .reshape(-1, 16)
    .sum(axis=1)
    .astype(np.uint16)
)

# --------------------------------------------------------------------------
# backend selection
# --------------------------------------------------------------------------

_REQUESTED = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower()
if _REQUESTED not in ("auto", "numpy", "numba"):
    raise ValueError(
        f"REPRO_KERNEL_BACKEND must be 'auto', 'numpy' or 'numba', "
        f"got {_REQUESTED!r}")

_numba = None
if _REQUESTED in ("auto", "numba"):
    try:  # pragma: no cover - numba is absent on the CI image
        import numba as _numba  # type: ignore[no-redef]
    except ImportError:
        # the silent fallback the tier promises: absent compiler, identical
        # results, no warning spam on every import
        _numba = None

_ACTIVE = "numba" if _numba is not None else "numpy"


def active_backend() -> str:
    """The kernel backend actually in use (``"numpy"`` or ``"numba"``)."""
    return _ACTIVE


def requested_backend() -> str:
    """What ``REPRO_KERNEL_BACKEND`` asked for (before auto-detection)."""
    return _REQUESTED


# --------------------------------------------------------------------------
# timing registry
# --------------------------------------------------------------------------

#: kernel name -> [calls, total_ns]; mutated only while timing is enabled
KERNEL_TIMINGS: Dict[str, List[int]] = {}

_TIMING_ENABLED = False


def enable_timing(enabled: bool = True) -> None:
    """Toggle per-kernel call/ns accumulation (used by ``--profile``)."""
    global _TIMING_ENABLED
    _TIMING_ENABLED = enabled


def reset_timings() -> None:
    KERNEL_TIMINGS.clear()


def timing_table() -> List[Tuple[str, int, int]]:
    """Snapshot of the registry as ``(kernel, calls, total_ns)`` rows,
    descending by total time."""
    rows = [(name, calls, ns) for name, (calls, ns) in KERNEL_TIMINGS.items()]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def _timed(fn: Callable) -> Callable:
    """Wrap a kernel with the (branch-guarded) timing accumulator.

    Applied *outside* :func:`~repro.utils.contracts.hot_path` so the tag
    lands on the real kernel body, per the contracts-module rule.
    """
    name = fn.__name__

    def wrapper(*args, **kwargs):
        if not _TIMING_ENABLED:
            return fn(*args, **kwargs)
        start = time.perf_counter_ns()
        out = fn(*args, **kwargs)
        cell = KERNEL_TIMINGS.get(name)
        if cell is None:
            cell = KERNEL_TIMINGS[name] = [0, 0]
        cell[0] += 1
        cell[1] += time.perf_counter_ns() - start
        return out

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


# --------------------------------------------------------------------------
# layout primitives
# --------------------------------------------------------------------------

def words_for(n: int) -> int:
    """Number of uint64 words covering an ``n``-bit universe."""
    return (n + WORD_BITS - 1) >> 6


def pack_indicator(mask) -> np.ndarray:
    """Pack a boolean indicator vector into little-endian uint64 words.

    Boundary kernel: one ``np.packbits`` plus zero-padding to a whole number
    of words.  ``mask`` may be any boolean-convertible 1-D sequence.
    """
    mask = np.asarray(mask, dtype=bool)
    packed_bytes = np.packbits(mask, bitorder="little")
    pad = (-len(packed_bytes)) % 8
    if pad:
        packed_bytes = np.concatenate(
            [packed_bytes, np.zeros(pad, dtype=np.uint8)])
    return packed_bytes.view("<u8")


def unpack_words(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack uint64 words back to an ``n``-long boolean vector (boundary)."""
    bits = np.unpackbits(words.view("<u1"), bitorder="little")
    return bits[:n].astype(bool)


#: widest universe (in words) the scalar Python-int fast paths cover; below
#: this, arbitrary-precision int bit tricks beat per-call numpy dispatch by
#: an order of magnitude (same threshold the OMv extractor uses)
SCALAR_WORDS_MAX = 16


def pack_indices(indices, n: int) -> np.ndarray:
    """Packed set of the given bit positions over an ``n``-bit universe."""
    nwords = words_for(n)
    if nwords <= SCALAR_WORDS_MAX:
        acc = 0
        for j in indices:
            acc |= 1 << int(j)
        return np.frombuffer(acc.to_bytes(nwords << 3, "little"),
                             dtype="<u8").copy()
    words = np.zeros(nwords, dtype=np.uint64)
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size:
        np.bitwise_or.at(words, idx >> 6,
                         np.uint64(1) << (idx & 63).astype(np.uint64))
    return words


def set_bit(words: np.ndarray, j: int) -> None:
    """Set bit ``j`` in a packed set, in place (O(1))."""
    words[j >> 6] |= np.uint64(1) << np.uint64(j & 63)


def clear_bit(words: np.ndarray, j: int) -> None:
    """Clear bit ``j`` in a packed set, in place (O(1))."""
    words[j >> 6] &= ~(np.uint64(1) << np.uint64(j & 63))


def test_bit(words: np.ndarray, j: int) -> bool:
    """Whether bit ``j`` is set in a packed set (O(1))."""
    return bool((words[j >> 6] >> np.uint64(j & 63)) & np.uint64(1))


# --------------------------------------------------------------------------
# word-parallel kernels (numpy backend)
# --------------------------------------------------------------------------

def _popcount_words_np(words: np.ndarray) -> int:
    quads = words.view("<u2")
    return int(POPCOUNT16[quads].sum())


def _any_and_rows_np(rows: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return (rows & mask[None, :]).any(axis=1)


def _first_set_bits_np(rows: np.ndarray) -> np.ndarray:
    nonzero = rows != 0
    has_any = nonzero.any(axis=1)
    word_idx = nonzero.argmax(axis=1)
    row_idx = np.arange(rows.shape[0])
    word = rows[row_idx, word_idx]
    # isolate the lowest set bit; a single power of two up to 2^63 is exactly
    # representable in float64, so log2 recovers the offset without a scan
    isolated = word & (~word + np.uint64(1))
    safe = np.where(isolated == 0, np.uint64(1), isolated)
    offset = np.log2(safe.astype(np.float64)).astype(np.int64)
    first = (word_idx.astype(np.int64) << 6) + offset
    return np.where(has_any, first, np.int64(-1))


if _numba is not None:  # pragma: no cover - numba absent on the CI image
    # Compiled scan kernels: identical arithmetic, loop-level fusion.  The
    # dispatch below guarantees byte-identity because both tiers compute
    # the same words -> the same integers.
    @_numba.njit(cache=True)
    def _popcount_words_nb(words):  # type: ignore[misc]
        total = 0
        for w in words:
            x = np.uint64(w)
            while x:
                x &= x - np.uint64(1)
                total += 1
        return total

    @_numba.njit(cache=True)
    def _any_and_rows_nb(rows, mask):  # type: ignore[misc]
        out = np.zeros(rows.shape[0], dtype=np.bool_)
        for i in range(rows.shape[0]):
            for j in range(rows.shape[1]):
                if rows[i, j] & mask[j]:
                    out[i] = True
                    break
        return out

    @_numba.njit(cache=True)
    def _first_set_bits_nb(rows):  # type: ignore[misc]
        out = np.full(rows.shape[0], -1, dtype=np.int64)
        for i in range(rows.shape[0]):
            for j in range(rows.shape[1]):
                w = rows[i, j]
                if w:
                    offset = 0
                    while not (w >> np.uint64(offset)) & np.uint64(1):
                        offset += 1
                    out[i] = (j << 6) + offset
                    break
        return out

    _popcount_impl = _popcount_words_nb
    _any_and_impl = _any_and_rows_nb
    _first_set_impl = _first_set_bits_nb
else:
    _popcount_impl = _popcount_words_np
    _any_and_impl = _any_and_rows_np
    _first_set_impl = _first_set_bits_np


@_timed
@hot_path
def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits in a packed set (16-bit-LUT or compiled)."""
    return _popcount_impl(words)


@_timed
@hot_path
def any_and_rows(rows: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row predicate ``(row & mask) != 0`` over a packed matrix.

    This is the masked matrix product of the OMv query: row ``i`` of
    ``M v`` is 1 iff the packed row intersects the packed indicator.
    """
    return _any_and_impl(rows, mask)


@_timed
@hot_path
def first_set_bits(rows: np.ndarray) -> np.ndarray:
    """Lowest set bit position per row of a packed matrix; -1 for empty rows.

    Because the layout is little-endian, the lowest set bit is the *minimum*
    element of the set -- exactly the deterministic choice the scalar scans
    make, which is what keeps the kernel tier byte-identical.
    """
    return _first_set_impl(rows)


@_timed
@hot_path
def first_set_bit(words: np.ndarray) -> int:
    """Lowest set bit of a single packed set (-1 if empty)."""
    if words.size <= SCALAR_WORDS_MAX:
        as_int = int.from_bytes(words.tobytes(), "little")
        if not as_int:
            return -1
        return (as_int & -as_int).bit_length() - 1
    return int(_first_set_impl(words.reshape(1, -1))[0])


@_timed
@hot_path
def and_words(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
    """Word-parallel intersection ``a & b`` (named kernel for the profiler)."""
    return np.bitwise_and(a, b, out=out)


@_timed
@hot_path
def andnot_words(a: np.ndarray, b: np.ndarray,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Word-parallel difference ``a & ~b`` (ANDN sweep)."""
    return np.bitwise_and(a, np.bitwise_not(b), out=out)


@_timed
def iter_set_bits(words: np.ndarray) -> List[int]:
    """Ascending bit positions of a packed set.

    Narrow universes extract bits from one arbitrary-precision int
    (``x & -x`` isolates the lowest set bit -- the minimum element); wide
    ones scan only the non-zero words, unpacking 8 bytes per hit word.
    """
    out: List[int] = []
    if words.size <= SCALAR_WORDS_MAX:
        as_int = int.from_bytes(words.tobytes(), "little")
        while as_int:
            low = as_int & -as_int
            out.append(low.bit_length() - 1)
            as_int ^= low
        return out
    nonzero = np.flatnonzero(words)
    for w in nonzero:
        base = int(w) << 6
        bits = np.unpackbits(words[w:w + 1].view("<u1"), bitorder="little")
        out.extend((base + int(b)) for b in np.flatnonzero(bits))
    return out


# --------------------------------------------------------------------------
# int tier: row-at-a-time sweeps on arbitrary-precision ints
# --------------------------------------------------------------------------
# CPython bigints are themselves packed word arrays with C-level bitwise
# ops, but without numpy's per-call dispatch overhead -- for one-row-wide
# sweeps (the phase engine's candidate scans) they are the faster packed
# representation at every universe size the budget gate admits.  The
# uint64 rows stay the storage/batch/patching format; these helpers are
# the boundary between the two.  They sit below the timing registry's
# granularity (per-candidate calls), so they are deliberately un-_timed.

def int_from_words(words: np.ndarray) -> int:
    """The packed set as one int (same little-endian bit numbering)."""
    return int.from_bytes(words.tobytes(), "little")


def int_from_indices(indices) -> int:
    """Indicator int of an index collection (int-tier ``pack_indices``).

    Small collections fold shifts directly; wide ones (the stage graphs'
    right sets) scatter into a byte mask and let ``packbits`` do the
    packing, which amortises the per-index bigint reallocations away.
    """
    if len(indices) > 32:
        arr = np.asarray(indices, dtype=np.int64)
        mask = np.zeros(int(arr.max()) + 1, dtype=np.uint8)
        mask[arr] = 1
        return int.from_bytes(
            np.packbits(mask, bitorder="little").tobytes(), "little")
    acc = 0
    for j in indices:
        acc |= 1 << int(j)
    return acc


def bits_of_int(as_int: int) -> List[int]:
    """Ascending bit positions of an indicator int.

    ``x & -x`` isolates the lowest set bit -- the minimum element -- so the
    output order matches the scalar reference walk's candidate order.
    """
    out: List[int] = []
    while as_int:
        low = as_int & -as_int
        out.append(low.bit_length() - 1)
        as_int ^= low
    return out


@_timed
def select_bits(words: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Boolean gather: whether each of ``indices`` is set in the packed set.

    Touches only the words covering the requested indices -- the
    ``row_neighbors(restrict=...)`` fix rides on this kernel.
    """
    idx = np.asarray(indices, dtype=np.int64)
    gathered = words[idx >> 6]
    return ((gathered >> (idx & 63).astype(np.uint64)) & np.uint64(1)
            ).astype(bool)


def pack_adjacency(indptr: np.ndarray, indices: np.ndarray,
                   n: int) -> np.ndarray:
    """Packed adjacency matrix from a CSR view (one-time boundary pack).

    Returns an ``(n, words_for(n))`` uint64 matrix; row ``v`` is the packed
    neighbour set of ``v``.  O(n^2/64) memory -- callers gate on
    :func:`packing_budget_ok` before paying it.
    """
    nwords = words_for(n)
    if nwords <= SCALAR_WORDS_MAX:
        row_bytes = nwords << 3
        buf = bytearray(n * row_bytes)
        ptr = np.asarray(indptr).tolist()
        cols = np.asarray(indices).tolist()
        for v in range(n):
            acc = 0
            for j in cols[ptr[v]:ptr[v + 1]]:
                acc |= 1 << j
            if acc:
                buf[v * row_bytes:(v + 1) * row_bytes] = acc.to_bytes(
                    row_bytes, "little")
        return np.frombuffer(bytes(buf),
                             dtype="<u8").reshape(n, nwords).copy()
    words = np.zeros((n, nwords), dtype=np.uint64)
    if indices.size:
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        cols = indices.astype(np.int64, copy=False)
        np.bitwise_or.at(words, (src, cols >> 6),
                         np.uint64(1) << (cols & 63).astype(np.uint64))
    return words


#: default ceiling on the packed-adjacency universe: 1 << 14 vertices packs
#: into 32 MiB of words; beyond that the kernel engine falls back to the
#: array-tier scan (byte-identical either way)
PACKED_ADJACENCY_MAX_N = 1 << 14


def packing_budget_ok(n: int, limit: int = PACKED_ADJACENCY_MAX_N) -> bool:
    """Whether an ``n``-vertex packed adjacency fits the memory budget."""
    return 0 < n <= limit
