"""Incremental epoch repair: persistent per-phase state for the dynamic stack.

The dynamic maintainers (Theorem 7.1 online / Theorem 7.15 offline) rebuild
their matching every ``Theta(eps * |M|)`` updates with the Section 6
weak-oracle framework.  PR 4's warm start already skips the coarse scales,
but every remaining :func:`~repro.core.phase.run_phase` call still paid a
fresh O(n) :class:`~repro.core.structures.PhaseState` allocation, an O(n)
free-vertex scan, an O(m) ``restricted_to`` sweep and a wholesale
recomputation of the frozen-graph views (sorted edge arrays, CSR adjacency,
per-vertex neighbour memo) -- all of it to revisit state that a handful of
edge updates barely perturbed.

:class:`RepairContext` makes that cost proportional to what actually changed:

* **dirty-vertex tracking** -- the per-vertex scalar state and array mirrors
  (``node_of``/``removed``/``vlabel`` and their NumPy twins) live on the
  context and are *lent* to each phase (:meth:`attach`).  The PhaseState
  mutation funnel journals every vertex it touches; :meth:`detach` (called
  by ``run_phase`` on the way out) resets exactly the journalled entries to
  the clean baseline, so a phase that touched ``k`` vertices costs ``O(k)``
  to undo instead of ``O(n)`` to reallocate.
* **a mirrored matching** -- :meth:`bind_matching` returns a
  :class:`MirroredMatching` whose mutations keep the context's
  ``mate``/``matched``/``vlabel`` baselines fresh in O(1) per change, which
  in turn makes :meth:`free_vertices` a single ``flatnonzero`` instead of an
  O(n) Python scan and lets the maintainers skip ``restricted_to`` and
  ``initial.copy()`` entirely (both are provably the identity here: a
  deleted matched edge leaves the matching at update time, so every matched
  edge is always a live graph edge).
* **incrementally patched frozen views** -- the maintainer reports every
  effective edge change via :meth:`note_update`; at the next phase the
  sorted canonical-key array and the compiled CSR adjacency are *patched*
  (``searchsorted`` + ``delete``/``insert``, O(m + k)) instead of recompiled
  (O(m log m)), and only the touched vertices' entries of the neighbour
  memo are evicted.  When the dirty set exceeds
  ``profile.repair_patch_cap`` the views fall back to a wholesale
  recompilation -- patching a near-total rewrite would be slower and is not
  what the incremental path is for.

Parity guarantee
----------------
``repair="incremental"`` executes the *identical* algorithm: the same rng
stream, the same counters, the same matchings, the same epoch boundaries as
``repair="rebuild"``.  All savings come from overheads that are neither
counter-charged nor rng-consuming (allocations, scans, view compilation).
The repair parity suite pins this byte-for-byte, exactly like the
``engine="array"``/``"reference"`` seam it mirrors; the context keeps its own
bookkeeping in :attr:`RepairContext.stats` rather than in
:class:`~repro.instrumentation.counters.Counters` for the same reason.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.backends import compile_csr, require_numpy
from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.core.config import ParameterProfile
from repro.utils.contracts import hot_path

try:  # the packed-bitset kernel tier needs numpy (like the context itself)
    from repro.core import kernels as _kernels
except ImportError:  # pragma: no cover - the image bakes numpy in
    _kernels = None  # type: ignore[assignment]

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

Edge = Tuple[int, int]


class MirroredMatching(Matching):
    """A :class:`Matching` that mirrors every mutation into a RepairContext.

    The context's ``mate_arr``/``matched_arr``/``vlabel`` baselines must stay
    fresh between phases so that :meth:`RepairContext.attach` is a pure
    handoff; routing the three mutation primitives through the context makes
    that O(1) per matching change.  Mutations are only legal while no phase
    is attached (the matching is frozen for the duration of a phase --
    augmentations are recorded and applied afterwards).
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: "RepairContext") -> None:
        super().__init__(ctx.n)
        self._ctx = ctx

    @hot_path
    def add(self, u: int, v: int) -> None:
        super().add(u, v)
        self._ctx._on_match(u, v)

    @hot_path
    def add_disjoint_edges(self, edges: Iterable[Edge]) -> int:
        edges = list(edges)  # repro: allow[hot-path-alloc] -- bounded by one phase's augmenting set, and the iterable is consumed twice (base class + mirror)
        count = super().add_disjoint_edges(edges)
        for u, v in edges:
            self._ctx._on_match(u, v)
        return count

    @hot_path
    def remove(self, u: int, v: int) -> None:
        super().remove(u, v)
        self._ctx._on_unmatch(u, v)


class RepairContext:
    """Persistent phase state + patchable frozen views for one dynamic graph.

    Construct one per maintainer (``profile.repair == "incremental"``), bind
    the maintained matching with :meth:`bind_matching`, report every
    effective edge change via :meth:`note_update`, and pass the context down
    ``framework.run(...) -> run_phase(...)``; everything else is automatic.
    Requires NumPy (the maintainers silently fall back to ``"rebuild"``
    without it, mirroring the phase-engine degradation).
    """

    def __init__(self, graph: Graph, profile: ParameterProfile) -> None:
        np = require_numpy("incremental epoch repair")
        self.graph = graph
        self.n = graph.n
        self.label_default = profile.label_default
        self.patch_cap = max(1, profile.repair_patch_cap)
        n = self.n

        # clean-baseline per-vertex state, lent to each phase via attach()
        self.node_of: List[Optional[object]] = [None] * n
        self.removed: List[bool] = [False] * n
        self.vlabel: List[int] = [0] * n
        self.mate_arr = np.full(n, -1, dtype=np.int64)
        self.matched_arr = np.zeros(n, dtype=bool)
        self.removed_arr = np.zeros(n, dtype=bool)
        self.vlabel_arr = np.zeros(n, dtype=np.int64)
        self.outer_arr = np.zeros(n, dtype=bool)
        self.sid_arr = np.full(n, -1, dtype=np.int64)
        self.nid_arr = np.full(n, -1, dtype=np.int64)

        # dirty-vertex journals appended by the PhaseState mutation funnel
        self._touched: List[int] = []
        self._label_touched: List[int] = []
        self._attached = False

        # patchable frozen-graph views (compiled lazily at first use)
        self._keys = None          # sorted canonical edge keys (u*n+v, u<v)
        self._eu = None
        self._ev = None
        self._indptr = None        # CSR over both arc orientations
        self._indices = None
        self._edge_pairs: Optional[List[Edge]] = None
        self._nbrs: Dict[int, List[int]] = {}
        self._packed_adj = None    # packed adjacency rows (kernel engine)
        # pending[key] = True (insert) / False (delete) relative to the
        # synced views; a change that toggles an edge back to its synced
        # state removes the entry, so len(_pending) is the true dirty count
        self._pending: Dict[int, bool] = {}

        self.matching: Optional[MirroredMatching] = None
        self.stats = {
            "attaches": 0,
            "incremental_patches": 0,
            "wholesale_compiles": 0,
            "patched_edges": 0,
        }

    # -------------------------------------------------------------- matching
    def bind_matching(self) -> MirroredMatching:
        """Create (once) and return the mirrored matching this context repairs."""
        if self.matching is None:
            self.matching = MirroredMatching(self)
        return self.matching

    @hot_path
    def _on_match(self, u: int, v: int) -> None:
        assert not self._attached, "the matching is frozen while a phase runs"
        default = self.label_default
        self.mate_arr[u] = v
        self.mate_arr[v] = u
        self.matched_arr[u] = True
        self.matched_arr[v] = True
        self.vlabel[u] = default
        self.vlabel[v] = default
        self.vlabel_arr[u] = default
        self.vlabel_arr[v] = default

    @hot_path
    def _on_unmatch(self, u: int, v: int) -> None:
        assert not self._attached, "the matching is frozen while a phase runs"
        self.mate_arr[u] = -1
        self.mate_arr[v] = -1
        self.matched_arr[u] = False
        self.matched_arr[v] = False
        self.vlabel[u] = 0
        self.vlabel[v] = 0
        self.vlabel_arr[u] = 0
        self.vlabel_arr[v] = 0

    def free_vertices(self) -> List[int]:
        """Ascending free vertices (same order as ``Matching.free_vertices``)."""
        return _np.flatnonzero(self.mate_arr < 0).tolist()

    # ------------------------------------------------------------ dirty edges
    @hot_path
    def note_update(self, u: int, v: int, inserted: bool) -> None:
        """Record one *effective* edge change (the graph actually mutated)."""
        if self._keys is None:
            return  # views not compiled yet; the next sync compiles fresh
        if u > v:
            u, v = v, u
        key = u * self.n + v
        pending = self._pending
        prev = pending.pop(key, None)
        if prev is None:
            pending[key] = inserted
            if len(pending) > self.patch_cap:
                self._drop_views()
        else:
            # effective changes on one edge strictly alternate, so a second
            # entry can only toggle the edge back to its synced state
            assert prev is not inserted

    def _drop_views(self) -> None:
        self._keys = None
        self._eu = None
        self._ev = None
        self._indptr = None
        self._indices = None
        self._edge_pairs = None
        self._nbrs.clear()
        self._packed_adj = None
        self._pending.clear()

    # ------------------------------------------------------------ view syncing
    def _sync_views(self) -> None:
        if self._keys is None:
            self._compile_views()
        elif self._pending:
            self._patch_views()

    def _compile_views(self) -> None:
        np = _np
        backend = self.graph.backend
        if hasattr(backend, "edge_arrays"):
            eu, ev = backend.edge_arrays()
        else:
            pairs = sorted(self.graph.edge_list())
            eu = np.fromiter((u for u, _ in pairs), dtype=np.int64,
                             count=len(pairs))
            ev = np.fromiter((v for _, v in pairs), dtype=np.int64,
                             count=len(pairs))
        self._eu, self._ev = eu, ev
        self._keys = eu * self.n + ev
        self._indptr = None  # CSR recompiled lazily on first adjacency() use
        self._indices = None
        self._edge_pairs = None
        self._nbrs.clear()
        self._packed_adj = None  # repacked lazily on first packed_adjacency()
        self._pending.clear()
        self.stats["wholesale_compiles"] += 1

    def _patch_views(self) -> None:
        np = _np
        pending = self._pending
        ins = sorted(k for k, p in pending.items() if p)
        dele = sorted(k for k, p in pending.items() if not p)
        keys = self._keys
        if dele:
            darr = np.asarray(dele, dtype=np.int64)
            pos = np.searchsorted(keys, darr)
            assert pos.size == 0 or (int(pos.max()) < keys.size
                                     and np.array_equal(keys[pos], darr)), \
                "pending delete of an edge absent from the synced views"
            keys = np.delete(keys, pos)
        if ins:
            iarr = np.asarray(ins, dtype=np.int64)
            pos = np.searchsorted(keys, iarr)
            # np.insert positions are relative to the pre-insert array and
            # equal positions insert in sequence order, so sorted keys stay
            # sorted
            keys = np.insert(keys, pos, iarr)
        self._keys = keys
        self._eu = keys // self.n
        self._ev = keys % self.n
        self._edge_pairs = None
        if self._indptr is not None:
            self._patch_csr(dele, ins)
        if self._packed_adj is not None:
            # each pending edge touches exactly two packed rows: O(k) bit
            # flips keep the kernel view in step with the patched CSR
            words = self._packed_adj
            for k in dele:
                u, v = divmod(k, self.n)
                _kernels.clear_bit(words[u], v)
                _kernels.clear_bit(words[v], u)
            for k in ins:
                u, v = divmod(k, self.n)
                _kernels.set_bit(words[u], v)
                _kernels.set_bit(words[v], u)
        touched = set()
        for k in pending:
            touched.add(k // self.n)
            touched.add(k % self.n)
        for v in sorted(touched):
            self._nbrs.pop(v, None)
        self.stats["incremental_patches"] += 1
        self.stats["patched_edges"] += len(dele) + len(ins)
        pending.clear()

    def _patch_csr(self, dele: List[int], ins: List[int]) -> None:
        """Patch the compiled CSR arrays in two passes (deletes, then inserts).

        Positions are computed per arc with a binary search inside the
        endpoint's row; the batches are tiny (at most ``patch_cap`` edges),
        so the Python loop over arcs is dwarfed by the two array rewrites.
        """
        np = _np
        n = self.n
        indptr, indices = self._indptr, self._indices
        if dele:
            srcs: List[int] = []
            positions: List[int] = []
            for k in dele:
                u, v = divmod(k, n)
                for s, d in ((u, v), (v, u)):
                    lo, hi = int(indptr[s]), int(indptr[s + 1])
                    p = lo + int(np.searchsorted(indices[lo:hi], d))
                    assert p < hi and indices[p] == d, \
                        "CSR patch: deleted arc missing from the row"
                    srcs.append(s)
                    positions.append(p)
            indices = np.delete(indices, positions)
            indptr = indptr.copy()
            indptr[1:] -= np.cumsum(np.bincount(srcs, minlength=n))
        if ins:
            arcs: List[Edge] = []
            for k in ins:
                u, v = divmod(k, n)
                arcs.append((u, v))
                arcs.append((v, u))
            arcs.sort()  # keeps equal insert positions in ascending-dst order
            positions = []
            vals: List[int] = []
            for s, d in arcs:
                lo, hi = int(indptr[s]), int(indptr[s + 1])
                positions.append(lo + int(np.searchsorted(indices[lo:hi], d)))
                vals.append(d)
            indices = np.insert(indices, positions, vals)
            indptr = indptr.copy()
            indptr[1:] += np.cumsum(
                np.bincount([s for s, _ in arcs], minlength=n))
        self._indptr, self._indices = indptr, indices

    # ------------------------------------------------------------ frozen views
    # Same contracts as the PhaseState originals; PhaseState delegates here
    # when a context is attached.
    def edge_arrays(self):
        self._sync_views()
        return self._eu, self._ev

    def edge_pairs(self) -> List[Edge]:
        self._sync_views()
        if self._edge_pairs is None:
            self._edge_pairs = list(zip(self._eu.tolist(), self._ev.tolist()))
        return self._edge_pairs

    def adjacency(self):
        self._sync_views()
        if self._indptr is None:
            self._indptr, self._indices = compile_csr(self._eu, self._ev,
                                                      self.n)
        return self._indptr, self._indices

    def sorted_neighbors(self, v: int) -> List[int]:
        self._sync_views()
        nbrs = self._nbrs.get(v)
        if nbrs is None:
            indptr, indices = self.adjacency()
            nbrs = self._nbrs[v] = indices[indptr[v]:indptr[v + 1]].tolist()
        return nbrs

    def packed_adjacency(self):
        """Packed uint64 adjacency rows (kernel engine), or ``None``.

        Built once from the synced CSR when the packing budget allows it,
        then *patched* bit-wise alongside the other frozen views -- a kernel
        phase after a handful of updates pays O(k) bit flips, not an O(m)
        repack.
        """
        self._sync_views()
        if self._packed_adj is None:
            if _kernels is None or not _kernels.packing_budget_ok(self.n):
                return None
            indptr, indices = self.adjacency()
            self._packed_adj = _kernels.pack_adjacency(indptr, indices, self.n)
        return self._packed_adj

    # ------------------------------------------------------------ attach cycle
    def attach(self, state) -> None:
        """Lend the persistent per-vertex state to ``state`` (one phase)."""
        if self._attached:
            raise RuntimeError("RepairContext is already attached to a phase")
        if state.graph is not self.graph:
            raise ValueError("RepairContext is bound to a different graph")
        if self.matching is None or state.matching is not self.matching:
            raise ValueError(
                "incremental repair runs on the context's mirrored matching "
                "(bind_matching()) only")
        if state.label_default != self.label_default:
            raise ValueError("profile ell_max diverged from the RepairContext")
        state.node_of = self.node_of
        state.removed = self.removed
        state.vlabel = self.vlabel
        state.mate_arr = self.mate_arr
        state.matched_arr = self.matched_arr
        state.removed_arr = self.removed_arr
        state.vlabel_arr = self.vlabel_arr
        state.outer_arr = self.outer_arr
        state.sid_arr = self.sid_arr
        state.nid_arr = self.nid_arr
        self._attached = True
        self.stats["attaches"] += 1

    def detach(self) -> None:
        """Reset the journalled dirty vertices to the clean baseline."""
        assert self._attached, "detach without a matching attach"
        touched = self._touched
        if touched:
            node_of = self.node_of
            removed = self.removed
            for v in touched:
                node_of[v] = None
                removed[v] = False
            idx = _np.asarray(touched, dtype=_np.int64)
            self.removed_arr[idx] = False
            self.outer_arr[idx] = False
            self.sid_arr[idx] = -1
            self.nid_arr[idx] = -1
            self._touched = []
        label_touched = self._label_touched
        if label_touched:
            default = self.label_default
            matched_arr = self.matched_arr
            vlabel = self.vlabel
            vlabel_arr = self.vlabel_arr
            # the matching is frozen during a phase, so matched_arr still
            # holds the baseline the labels must return to
            for v in label_touched:
                base = default if matched_arr[v] else 0
                vlabel[v] = base
                vlabel_arr[v] = base
            self._label_touched = []
        self._attached = False

    # ------------------------------------------------------------- validation
    def verify_views(self) -> None:
        """Test helper: synced views must equal a from-scratch recompute."""
        np = _np
        self._sync_views()
        pairs = sorted(self.graph.edge_list())
        expect = np.fromiter((u * self.n + v for u, v in pairs),
                             dtype=np.int64, count=len(pairs))
        assert np.array_equal(self._keys, expect), "patched key array diverged"
        assert np.array_equal(self._eu, self._keys // self.n)
        assert np.array_equal(self._ev, self._keys % self.n)
        if self._indptr is not None:
            indptr, indices = compile_csr(self._eu, self._ev, self.n)
            assert np.array_equal(self._indptr, indptr), "patched indptr diverged"
            assert np.array_equal(self._indices, indices), "patched indices diverged"
        if self._nbrs:
            indptr, indices = self.adjacency()
            for v, nbrs in self._nbrs.items():
                assert nbrs == indices[indptr[v]:indptr[v + 1]].tolist(), \
                    f"stale neighbour memo for vertex {v}"
        if self._packed_adj is not None:
            indptr, indices = self.adjacency()
            for v in range(self.n):
                assert (_kernels.iter_set_bits(self._packed_adj[v])
                        == indices[indptr[v]:indptr[v + 1]].tolist()), \
                    f"patched packed adjacency row {v} diverged"

    def verify_baseline(self) -> None:
        """Test helper: the per-vertex state must be at the clean baseline."""
        assert not self._attached
        assert not self._touched and not self._label_touched
        n = self.n
        assert all(x is None for x in self.node_of)
        assert not any(self.removed)
        assert not self.removed_arr.any()
        assert not self.outer_arr.any()
        assert (self.sid_arr == -1).all() and (self.nid_arr == -1).all()
        matching = self.matching
        for v in range(n):
            mate = matching.mate(v) if matching is not None else None
            assert int(self.mate_arr[v]) == (-1 if mate is None else mate)
            assert bool(self.matched_arr[v]) == (mate is not None)
            base = self.label_default if mate is not None else 0
            assert self.vlabel[v] == base and int(self.vlabel_arr[v]) == base
