"""The three basic operations on structures: Augment, Contract, Overtake.

These implement Section 4.5 of the paper.  All three operate on a
:class:`~repro.core.structures.PhaseState` and are invoked either directly by
the streaming passes (Section 4.6/4.7) or by the oracle-driven simulations
(Sections 5.4/5.5 and 6.5/6.6).

Correctness conventions
-----------------------
* Every operation validates its preconditions and raises ``ValueError`` when
  they are violated; the drivers re-check arc types before invoking, so in
  normal operation the checks never fire -- they exist to catch driver bugs.
* ``Augment`` records the local re-matching of the two structures' vertex sets
  (computed by a single exact Edmonds augmentation restricted to those
  vertices) instead of expanding blossom paths via Lemma 3.5.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.matching.blossom import find_augmenting_path
from repro.core.structures import (
    AugmentationRecord,
    PhaseState,
    StructNode,
    Structure,
)

Edge = Tuple[int, int]


# ---------------------------------------------------------------------------
# Augment (Section 4.5.1)
# ---------------------------------------------------------------------------

def augment_op(state: PhaseState, u: int, v: int) -> AugmentationRecord:
    """Perform ``Augment(g, P)`` on the unmatched arc ``g = (u, v)``.

    Preconditions: ``Omega(u)`` and ``Omega(v)`` are outer vertices of two
    *different* structures, neither endpoint is removed, and ``{u, v}`` is an
    unmatched edge of ``G``.

    Effect: an augmenting path between the two structures' free vertices is
    found inside ``G`` restricted to the union of the two structures (it exists
    by the tree-representation property and Lemma 3.5); the resulting local
    re-matching is recorded in ``state.records``; both structures are removed
    and all their vertices marked removed for the rest of the phase.
    """
    nu, nv = state.omega(u), state.omega(v)
    if nu is None or nv is None or not (nu.outer and nv.outer):
        raise ValueError("Augment requires two outer vertices")
    sa, sb = nu.structure, nv.structure
    if sa is sb:
        raise ValueError("Augment requires two different structures")
    if state.removed[u] or state.removed[v]:
        raise ValueError("Augment on a removed vertex")
    if state.matching.contains_edge(u, v):
        raise ValueError("Augment requires an unmatched edge")
    if not state.graph.has_edge(u, v):
        raise ValueError(f"({u}, {v}) is not an edge of G")

    # Subgraph induction goes through the graph backend's bulk
    # ``induced_edges`` primitive (vectorized on CSR); structures are small
    # (O(1/h) vertices) but Augment fires often enough for this to matter.
    vertices = sorted(sa.g_vertices | sb.g_vertices)
    sub, back = state.graph.induced_subgraph(vertices)
    fwd = {old: new for new, old in back.items()}

    local = Matching(sub.n)
    for x in vertices:
        mate = state.matching.mate(x)
        if mate is not None and mate in fwd and fwd[x] < fwd[mate]:
            local.add(fwd[x], fwd[mate])

    old_size = local.size
    found = find_augmenting_path(sub, local)
    if not found:  # pragma: no cover - guarded by the structure invariants
        raise RuntimeError(
            "Augment: no augmenting path inside the union of two structures; "
            "structure invariants violated")
    assert local.size == old_size + 1

    record = AugmentationRecord(
        vertices=list(vertices),
        new_edges=[(back[x], back[y]) for x, y in local.edges()],
    )
    state.records.append(record)

    for structure in (sa, sb):
        _remove_structure(state, structure)
    state.counters.add("augmentations")
    return record


def _remove_structure(state: PhaseState, structure: Structure) -> None:
    """Remove a structure and mark all its vertices as removed (Section 4.5.1)."""
    state.mark_removed(structure.g_vertices)
    state.structures.pop(structure.alpha, None)
    structure.nodes.clear()
    structure.g_vertices = set()
    structure.working = None
    structure.invalidate_caches()


# ---------------------------------------------------------------------------
# Contract (Section 4.5.2)
# ---------------------------------------------------------------------------

def contract_op(state: PhaseState, u: int, v: int) -> StructNode:
    """Perform ``Contract(g)`` on the unmatched arc ``g = (u, v)``.

    Preconditions: ``Omega(u)`` and ``Omega(v)`` are distinct outer vertices of
    the same structure and ``Omega(u)`` is the working vertex.

    Effect: the unique blossom of ``T'_alpha + g'`` (Lemma 3.7) -- the nodes on
    the tree path between ``Omega(u)`` and ``Omega(v)`` through their LCA -- is
    contracted into a single outer node, which becomes the new working vertex.
    Labels of matched edges inside the new blossom are set to 0.
    """
    nu, nv = state.omega(u), state.omega(v)
    if nu is None or nv is None or nu is nv:
        raise ValueError("Contract requires two distinct nodes")
    if not (nu.outer and nv.outer):
        raise ValueError("Contract requires two outer vertices")
    structure = nu.structure
    if nv.structure is not structure:
        raise ValueError("Contract requires both endpoints in the same structure")
    if structure.working is not nu:
        raise ValueError("Contract requires Omega(u) to be the working vertex")

    # --- find the tree path nu .. lca .. nv -------------------------------
    ancestors_u = list(nu.ancestors())
    ancestor_ids = {id(node): i for i, node in enumerate(ancestors_u)}
    lca: Optional[StructNode] = None
    path_v: List[StructNode] = []
    for node in nv.ancestors():
        if id(node) in ancestor_ids:
            lca = node
            break
        path_v.append(node)
    assert lca is not None, "two nodes of one tree always have an LCA"
    path_u = ancestors_u[: ancestor_ids[id(lca)]]
    # ordered and duplicate-free: blossom vertex order (hence derived-graph
    # iteration downstream) must be determined by the tree paths, not by the
    # address-hash order a set of nodes would impose
    absorbed = list(dict.fromkeys(path_u + path_v + [lca]))
    absorbed_set = set(absorbed)

    # --- build the blossom node -------------------------------------------
    blossom_vertices: List[int] = []
    for node in absorbed:
        blossom_vertices.extend(node.vertices)
    new_node = StructNode(blossom_vertices, base=lca.base, outer=True,
                          structure=structure)
    new_node.parent = lca.parent
    if lca.parent is not None:
        lca.parent.children = [new_node if c is lca else c
                               for c in lca.parent.children]
    else:
        structure.root = new_node
    for node in absorbed:
        for child in node.children:
            if child not in absorbed_set:
                child.parent = new_node
                new_node.children.append(child)
    for node in absorbed:
        structure.nodes.discard(node)
    structure.nodes.add(new_node)
    state.register_node(new_node)
    structure.invalidate_caches()  # inner vertices of the path became outer

    # --- labels of matched edges inside the blossom become 0 ----------------
    inside = set(blossom_vertices)
    for x in blossom_vertices:
        mate = state.matching.mate(x)
        if mate is not None and mate in inside:
            state.set_label(x, mate, 0)

    structure.working = new_node
    structure.modified = True
    structure.extended = True
    state.counters.add("contractions")
    return new_node


# ---------------------------------------------------------------------------
# Overtake (Section 4.5.3)
# ---------------------------------------------------------------------------

def overtake_op(state: PhaseState, u: int, v: int, k: int) -> None:
    """Perform ``Overtake(g, a, k)`` where ``g = (u, v)`` and ``a = (v, mate(v))``.

    Preconditions (P1)-(P3) of Section 4.5.3: ``Omega(u)`` is the working
    vertex of a structure ``S_alpha``; ``Omega(v)`` is unvisited or an inner
    vertex (not an ancestor of ``Omega(u)`` when it lies in ``S_alpha``); and
    ``k`` is smaller than the current label of the matched edge at ``v``.
    """
    nu = state.omega(u)
    if nu is None or not nu.outer:
        raise ValueError("Overtake requires Omega(u) to be an outer vertex")
    sa = nu.structure
    if sa.working is not nu:
        raise ValueError("Overtake requires Omega(u) to be the working vertex")
    if state.removed[u] or state.removed[v]:
        raise ValueError("Overtake on a removed vertex")
    t = state.matching.mate(v)
    if t is None:
        raise ValueError("Overtake requires v to be matched")
    if not k < state.label_of_edge(v, t):
        raise ValueError("Overtake requires k < l(a)  (P3)")
    if not state.graph.has_edge(u, v):
        raise ValueError(f"({u}, {v}) is not an edge of G")

    nv = state.omega(v)

    if nv is None:
        # ------------------------------------------------- Case 1: unvisited
        assert state.omega(t) is None, "matched pairs enter structures together"
        inner = StructNode([v], base=v, outer=False, structure=sa)
        outer = StructNode([t], base=t, outer=True, structure=sa)
        inner.parent = nu
        nu.children.append(inner)
        outer.parent = inner
        inner.children.append(outer)
        sa.nodes.add(inner)
        sa.nodes.add(outer)
        sa.g_vertices.add(v)
        sa.g_vertices.add(t)
        sa.invalidate_caches()
        state.register_node(inner)
        state.register_node(outer)
        state.set_label(v, t, k)
        sa.working = outer
        sa.modified = True
        sa.extended = True
        state.counters.add("overtakes")
        return

    # ------------------------------------------------------ Case 2: v is inner
    if nv.outer:
        raise ValueError("Overtake requires Omega(v) to be inner or unvisited")
    sb = nv.structure
    if sb is sa and nv.is_ancestor_of(nu):
        raise ValueError("Overtake within a structure must not target an ancestor (P2)")

    old_parent = nv.parent
    assert old_parent is not None, "inner nodes are never roots"
    old_parent.children = [c for c in old_parent.children if c is not nv]

    # the unique child of the inner node nv is the outer node containing t
    assert len(nv.children) == 1
    nt = nv.children[0]
    assert t in nt.vertices and nt.base == t

    moved = nv.subtree()

    if sb is not sa:
        # move the subtree (nodes, vertices) from S_beta to S_alpha
        moved_working = sb.working is not None and any(
            node is sb.working for node in moved)
        moved_vertices: List[int] = []
        for node in moved:
            node.structure = sa
            sb.nodes.discard(node)
            sa.nodes.add(node)
            for x in node.vertices:
                sb.g_vertices.discard(x)
                sa.g_vertices.add(x)
            moved_vertices.extend(node.vertices)
        sa.invalidate_caches()
        sb.invalidate_caches()
        state.move_to_structure(moved_vertices, sa.alpha)
        nv.parent = nu
        nu.children.append(nv)
        state.set_label(v, t, k)
        if moved_working:
            sa.working = sb.working
            sb.working = old_parent
        else:
            sa.working = nt
        sa.modified = True
        sb.modified = True
        sa.extended = True  # the overtaker is marked as extended (Section 4.5)
        state.counters.add("overtakes")
        state.counters.add("cross_structure_overtakes")
        return

    # ------------------------------------------- Case 2.1: same structure
    nv.parent = nu
    nu.children.append(nv)
    state.set_label(v, t, k)
    sa.working = nt
    sa.modified = True
    sa.extended = True
    state.counters.add("overtakes")


# ---------------------------------------------------------------------------
# Applying the recorded augmentations (Algorithm 1, line 6)
# ---------------------------------------------------------------------------

def apply_augmentations(matching: Matching,
                        records: List[AugmentationRecord]) -> int:
    """Apply recorded augmentations to ``matching``; returns the size increase.

    The records' vertex sets are pairwise disjoint and no matched edge leaves
    any of them, so replacing the induced sub-matching of each record with its
    recorded re-matching increases the total size by exactly one per record.
    """
    before = matching.size
    for record in records:
        inside = set(record.vertices)
        for x in record.vertices:
            mate = matching.mate(x)
            if mate is not None:
                assert mate in inside, (
                    "augmentation record is not closed under the matching")
                if x < mate:
                    matching.remove(x, mate)
        for x, y in record.new_edges:
            matching.add(x, y)
    return matching.size - before
