"""The paper's primary contribution: structures, phases, and boosting frameworks.

Layout (mirroring the paper):

* :mod:`~repro.core.config` -- the parameter schedule (scales, phases,
  pass-bundles, stages, iteration counts), with both the paper's proof-level
  constants and a practical profile.
* :mod:`~repro.core.structures` -- free-vertex structures ``S_alpha``
  (alternating trees over contracted blossoms), labels, and the per-phase
  global state (Section 4.1 - 4.4).
* :mod:`~repro.core.operations` -- the three basic operations ``Augment``,
  ``Contract`` and ``Overtake`` (Section 4.5).
* :mod:`~repro.core.phase` -- ``Alg-Phase``: pass-bundles, Extend-Active-Path,
  Contract-and-Augment, Backtrack-Stuck-Structures (Sections 4.6 - 4.8),
  parameterised by a *driver* so the same machinery runs in streaming mode
  (direct edge scans) or oracle mode (Sections 5 and 6).
* :mod:`~repro.core.streaming` -- the [MMSS25] semi-streaming algorithm
  (Algorithm 1), the starting point of the framework.
* :mod:`~repro.core.oracles` -- the ``Amatching`` oracle protocol and concrete
  Theta(1)-approximate oracles with invocation counting.
* :mod:`~repro.core.boosting` -- the static boosting framework of Section 5
  (Theorem 1.1).
* :mod:`~repro.core.dynamic_boosting` -- the weak-oracle boosting framework of
  Section 6 (Theorem 6.2).
"""

from repro.core.config import ParameterProfile
from repro.core.oracles import (
    MatchingOracle,
    GreedyMatchingOracle,
    RandomGreedyMatchingOracle,
    ExactMatchingOracle,
    CountingOracle,
)
from repro.core.streaming import semi_streaming_matching
from repro.core.boosting import BoostingFramework, boost_matching
from repro.core.dynamic_boosting import WeakOracleBoostingFramework, boost_matching_weak

__all__ = [
    "ParameterProfile",
    "MatchingOracle",
    "GreedyMatchingOracle",
    "RandomGreedyMatchingOracle",
    "ExactMatchingOracle",
    "CountingOracle",
    "semi_streaming_matching",
    "BoostingFramework",
    "boost_matching",
    "WeakOracleBoostingFramework",
    "boost_matching_weak",
]
