"""The [MMSS25] semi-streaming (1+eps)-approximate matching algorithm.

This is Algorithm 1 of the paper (reviewed in Section 4): a 2-approximate
initial matching is improved over a schedule of scales and phases, where each
phase runs pass-bundles of two streaming passes (Extend-Active-Path and
Contract-and-Augment) plus a backtracking step.  The boosting frameworks of
Sections 5 and 6 simulate exactly this algorithm, so it also serves as the
reference implementation the simulations are tested against.

The number of passes over the edge stream is tracked in the ``passes``
counter.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.matching.greedy import greedy_maximal_matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.operations import apply_augmentations
from repro.core.phase import DirectDriver, run_phase


def semi_streaming_matching(graph: Graph, eps: float,
                            profile: Optional[ParameterProfile] = None,
                            seed: Optional[int] = None,
                            counters: Optional[Counters] = None,
                            check_invariants: bool = False) -> Matching:
    """Compute a (1+eps)-approximate maximum matching by the [MMSS25] algorithm.

    Parameters
    ----------
    graph:
        Input graph.
    eps:
        Approximation parameter in (0, 1/2]; rounded so that 1/eps is a power
        of two (Section 3).
    profile:
        Parameter schedule; defaults to :meth:`ParameterProfile.practical`.
    seed:
        Seed for the per-pass stream order.
    counters:
        Optional counter bag (``passes``, ``phases``, ``augmentations``, ...).
    check_invariants:
        Run the structure validator after every pass-bundle (slow; for tests).

    Returns
    -------
    Matching
        The computed matching (always a valid matching of ``graph``).
    """
    profile = profile if profile is not None else ParameterProfile.practical(eps)
    counters = counters if counters is not None else Counters()
    rng = random.Random(seed)

    # Run on the backend the profile asks for (no-op when backend=None or
    # the input already matches; the returned matching fits the original).
    graph = profile.resolve_graph(graph)

    # Line 1 of Algorithm 1: a 2-approximate (maximal) initial matching.
    matching = greedy_maximal_matching(graph)
    counters.add("passes")

    driver = DirectDriver(rng=rng)
    for h in profile.scales:
        num_phases = profile.phases(h)
        for _t in range(num_phases):
            counters.add("phases")
            records = run_phase(graph, matching, profile, h, driver,
                                counters=counters,
                                check_invariants=check_invariants)
            gained = apply_augmentations(matching, records)
            counters.add("matching_gain", gained)
            if profile.early_exit and gained == 0:
                # A phase is a deterministic restart given (M, h); if it finds
                # nothing, repeating it at the same scale cannot help.
                break

    return matching
