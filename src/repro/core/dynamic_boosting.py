"""The weak-oracle boosting framework of Section 6 (Theorem 6.2).

The static framework of Section 5 needs a matching oracle for *adaptively
derived* graphs (``H'``, ``H'_s``).  A dynamic-matching data structure can only
afford a much weaker oracle ``Aweak`` (Definition 6.1): given a vertex subset
``S`` of the *fixed* graph ``G``, it returns a Theta(1)-approximate matching of
``G[S]`` provided ``G[S]`` has a large matching.

Section 6 shows the simulation still goes through by *sampling* one vertex per
structure and invoking ``Aweak`` on the sampled set:

* ``Contract-and-Augment`` (Section 6.5): sample one outer vertex per
  structure; any edge of ``G[S]`` then connects outer vertices of two distinct
  structures, i.e. is a type-2 arc, and each returned matched edge yields an
  ``Augment``.
* ``Extend-Active-Path`` (Section 6.6): per stage ``s``, first perform the
  in-structure s-feasible overtakes directly (Invariant 6.10), then repeatedly
  sample one vertex per structure and query the bipartite double cover
  ``B[S]`` so that returned edges are outer-to-inner, i.e. type-3 arcs, and
  each yields an ``Overtake``.

Deviation from the paper: unvisited matched vertices belong to no
structure, so sampling "one per structure" never proposes them; we add the
inner copies of all unvisited matched vertices to the query set, which only
enlarges the preserved subgraph and keeps the oracle calls intact.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.matching.matching import Matching

try:  # the packed-bitset kernel tier needs numpy
    from repro.core import kernels
except ImportError:  # pragma: no cover - the image bakes numpy in
    kernels = None  # type: ignore[assignment]
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.boosting import stage_right_vertices
from repro.core.oracles import CountingWeakOracle, WeakOracle, ensure_counting_weak
from repro.core.operations import apply_augmentations, augment_op, overtake_op
from repro.core.phase import contract_pass, run_phase
from repro.core.structures import FrozenViews, PhaseState, Structure

Edge = Tuple[int, int]


class SamplingOracleDriver:
    """Phase driver that simulates the streaming passes with ``Aweak`` sampling."""

    def __init__(self, weak_oracle: WeakOracle, profile: ParameterProfile,
                 rng: Optional[random.Random] = None,
                 sampling_rounds: int = 4,
                 patience: int = 3) -> None:
        self.weak_oracle = weak_oracle
        self.profile = profile
        self.rng = rng if rng is not None else random.Random(0)
        # The paper uses Theta(1/(lambda * delta)) sampling iterations; we run
        # ``sampling_rounds`` times the deterministic iteration count and stop
        # early after ``patience`` consecutive unproductive samples.
        self.iterations = max(1, sampling_rounds * profile.sim_iterations)
        self.patience = patience

    # -- sampling helpers ----------------------------------------------------
    # ``random.choice(seq)`` is exactly ``seq[rng._randbelow(len(seq))]``;
    # drawing through ``_randbelow`` directly skips one interpreter frame per
    # structure per iteration (the samplers dominate the dynamic-stack
    # profile) while consuming the identical random stream.
    def _sample_outer_per_structure(self, state: PhaseState) -> List[int]:
        # iterating the live dict view is safe here (sampling never mutates
        # the structure set) and skips the defensive copy live_structures()
        # pays for callers that do
        randbelow = self.rng._randbelow
        sampled = []
        for structure in state.structures.values():
            outs = structure.outer_vertices()
            if outs:
                sampled.append(outs[randbelow(len(outs))])
        return sampled

    def _sample_vertex_per_structure(self, state: PhaseState) -> List[int]:
        randbelow = self.rng._randbelow
        sampled = []
        for structure in state.structures.values():
            if structure.g_vertices:
                verts = structure.sorted_vertices()
                sampled.append(verts[randbelow(len(verts))])
        return sampled

    @staticmethod
    def _stage_eligible(state: PhaseState, stage: int) -> bool:
        """Whether any structure can extend at this stage (Section 6.6).

        A stage can only produce overtakes out of an eligible working vertex
        (:meth:`PhaseState.eligible_working`); when no structure qualifies,
        the whole sampling loop (and the in-structure sweep, which tests the
        same condition per structure) is a guaranteed no-op, so the driver
        skips the stage.  Most stages of a warm-started rebuild are skipped
        this way.
        """
        eligible = state.eligible_working
        for structure in state.structures.values():
            if eligible(structure, stage):
                return True
        return False

    # -- Section 6.6 ---------------------------------------------------------
    def extend_active_path(self, state: PhaseState) -> None:
        for stage in self.profile.stages():
            state.counters.add("stages")
            if not self._stage_eligible(state, stage):
                continue
            self._in_structure_overtakes(state, stage)
            misses = 0
            for _it in range(self.iterations):
                left, right = self._stage_sample(state, stage)
                if not left or not right:
                    break
                state.counters.add("iterations")
                result = self.weak_oracle.query_bipartite(left, right,
                                                          self.profile.delta)
                performed = 0
                if result:
                    for x, y in result:
                        # orient the arc: x must be the outer/working endpoint
                        if x not in set(left):
                            x, y = y, x
                        nu = state.omega(x)
                        if (state.arc_type(x, y) == 3 and nu is not None
                                and state.distance(nu) == stage):
                            overtake_op(state, x, y, stage + 1)
                            performed += 1
                if performed == 0:
                    misses += 1
                    if misses >= self.patience:
                        break
                else:
                    misses = 0

    def _in_structure_overtakes(self, state: PhaseState, stage: int) -> None:
        """Maintain Invariant 6.10: no s-feasible arc stays inside a structure.

        The kernel engine replaces the per-neighbour membership filter with
        one AND of the packed adjacency row against the structure's packed
        member mask; the surviving candidates come out in the same ascending
        order the scalar walk tests them in, so both engines perform the
        identical first overtake.
        """
        packed = (state.packed_adjacency() if state.engine == "kernel"
                  else None)
        for structure in state.live_structures():
            if not state.eligible_working(structure, stage):
                continue
            w = structure.working
            done = False
            for x in list(w.vertices):
                if done:
                    break
                if packed is not None:
                    candidates = kernels.bits_of_int(
                        state.packed_int_row(x) & structure.member_bits())
                else:
                    candidates = [y for y in state.sorted_neighbors(x)
                                  if (node_y := state.omega(y)) is not None
                                  and node_y.structure is structure]
                for y in candidates:
                    if state.arc_type(x, y) == 3:
                        overtake_op(state, x, y, stage + 1)
                        state.counters.add("in_structure_overtakes")
                        done = True
                        break

    def _stage_sample(self, state: PhaseState, stage: int) -> Tuple[List[int], List[int]]:
        """Build the sampled query sets (outer side, inner side) for a stage."""
        sampled = self._sample_vertex_per_structure(state)
        left: List[int] = []
        right: List[int] = []
        for v in sampled:
            node = state.omega(v)
            if node is None:
                continue
            structure = node.structure
            if node.outer:
                if (structure.working is node
                        and state.eligible_working(structure, stage)):
                    left.append(v)
            else:
                if state.label_of_vertex(v) > stage + 1:
                    right.append(v)
        if not left:
            # the caller stops on an empty side; don't pay for the other one
            return left, []
        # unvisited matched vertices are not covered by per-structure
        # sampling; pull them in one bulk mask pass over the vertex arrays
        right.extend(stage_right_vertices(state, stage, unvisited_only=True))
        return left, right

    # -- Section 6.5 ---------------------------------------------------------
    def contract_and_augment(self, state: PhaseState) -> None:
        contract_pass(state)
        misses = 0
        for _it in range(self.iterations):
            sampled = self._sample_outer_per_structure(state)
            if len(sampled) < 2:
                break
            state.counters.add("iterations")
            result = self.weak_oracle.query(sampled, self.profile.delta)
            performed = 0
            if result:
                for u, v in result:
                    if state.arc_type(u, v) == 2:
                        augment_op(state, u, v)
                        performed += 1
                    elif state.arc_type(v, u) == 2:
                        augment_op(state, v, u)
                        performed += 1
            if performed == 0:
                misses += 1
                if misses >= self.patience:
                    break
            else:
                misses = 0
        contract_pass(state)


class WeakOracleBoostingFramework:
    """The Section 6 framework: (1+eps)-approximation from ``Aweak`` only.

    Parameters mirror :class:`~repro.core.boosting.BoostingFramework`; the
    oracle is a :class:`~repro.core.oracles.WeakOracle` bound to the input
    graph.  ``weak_oracle_calls`` accumulates the Theorem 6.2 quantity.
    """

    def __init__(self, eps: float, weak_oracle: WeakOracle,
                 profile: Optional[ParameterProfile] = None,
                 counters: Optional[Counters] = None,
                 seed: Optional[int] = None,
                 sampling_rounds: int = 4,
                 check_invariants: bool = False) -> None:
        self.counters = counters if counters is not None else Counters()
        self.weak_oracle: CountingWeakOracle = ensure_counting_weak(
            weak_oracle, self.counters)
        self.profile = profile if profile is not None else ParameterProfile.practical(eps)
        self.eps = self.profile.eps
        self.rng = random.Random(seed)
        self.sampling_rounds = sampling_rounds
        self.check_invariants = check_invariants

    # -- Lemma 6.7 -----------------------------------------------------------
    def initial_matching(self, graph: Graph) -> Matching:
        """Iterated ``Aweak`` peeling yields a Theta(1)-approximate matching."""
        matching = Matching(graph.n)
        # at most ~1/(lambda*delta) productive iterations; cap generously
        max_rounds = max(4, 4 * self.profile.sim_iterations)
        for _ in range(max_rounds):
            free = matching.free_vertices()
            if len(free) < 2:
                break
            result = self.weak_oracle.query(free, self.profile.delta)
            if not result:
                break
            added = 0
            for u, v in result:
                if matching.is_free(u) and matching.is_free(v):
                    matching.add(u, v)
                    added += 1
            if added == 0:
                break
        return matching

    # -- Theorem 6.2 ---------------------------------------------------------
    def run(self, graph: Graph, initial: Optional[Matching] = None,
            warm_start: bool = False, context=None) -> Matching:
        """Compute a (1+eps)-approximate maximum matching of ``graph``.

        ``warm_start`` declares that ``initial`` is already (1+O(eps))-close
        to optimal -- the dynamic maintainers guarantee exactly that by the
        stability argument (at most ``eps/8 * |M|`` updates since the last
        rebuild).  The coarse scales of Algorithm 1 exist to erase large
        deficits, which a warm start cannot have, so the run short-circuits
        to the finest scales (whose structure-size limit and phase budget
        dominate the coarser ones); quality is unchanged, the per-rebuild
        work drops by the skipped scales' phase schedules.

        ``context`` (a :class:`~repro.core.repair.RepairContext`) enables
        incremental repair: ``initial`` must be the context's mirrored
        matching and is augmented *in place* (no copy), and every phase
        borrows the context's persistent state.  Byte-identical to a
        context-free run -- see ``repro.core.repair``.
        """
        if self.weak_oracle.graph is not graph:
            # Definition 6.1 binds the oracle to a fixed graph; verify the
            # caller handed the matching one (same object identity).
            raise ValueError("the weak oracle must be bound to the input graph")
        if context is not None:
            if initial is None or initial is not context.matching:
                raise ValueError("incremental repair must run on the "
                                 "RepairContext's mirrored matching")
            matching = initial
        else:
            matching = (initial.copy() if initial is not None
                        else self.initial_matching(graph))
        driver = SamplingOracleDriver(self.weak_oracle, self.profile,
                                      rng=self.rng,
                                      sampling_rounds=self.sampling_rounds)
        scales = self.profile.scales
        if warm_start and initial is not None and initial.size > 0:
            scales = scales[-2:]
            self.counters.add("warm_rebuilds")
        # the graph is fixed for the whole rebuild: share the frozen derived
        # views across its phases (run_phase ignores this under ``context``,
        # whose patched copies already persist between phases)
        views = FrozenViews() if context is None else None
        for h in scales:
            stagnant = 0
            for _t in range(self.profile.phases(h)):
                self.counters.add("phases")
                records = run_phase(graph, matching, self.profile, h, driver,
                                    counters=self.counters,
                                    check_invariants=self.check_invariants,
                                    context=context, shared_views=views)
                gained = apply_augmentations(matching, records)
                self.counters.add("matching_gain", gained)
                if self.profile.early_exit:
                    stagnant = stagnant + 1 if gained == 0 else 0
                    # sampling is randomised, so allow one unproductive retry
                    if stagnant >= 2:
                        break
        return matching


def boost_matching_weak(graph: Graph, eps: float, weak_oracle: WeakOracle,
                        profile: Optional[ParameterProfile] = None,
                        counters: Optional[Counters] = None,
                        seed: Optional[int] = None,
                        sampling_rounds: int = 4,
                        check_invariants: bool = False) -> Matching:
    """Convenience wrapper around :class:`WeakOracleBoostingFramework`."""
    framework = WeakOracleBoostingFramework(
        eps, weak_oracle, profile=profile, counters=counters, seed=seed,
        sampling_rounds=sampling_rounds, check_invariants=check_invariants)
    return framework.run(graph)
