"""Oracle protocols and concrete Theta(1)-approximate matching oracles.

Two oracle interfaces appear in the paper:

* ``Amatching`` (Definition 5.1) -- given an arbitrary graph ``H``, return a
  ``c``-approximate maximum matching of ``H``.  The static boosting framework
  (Section 5) invokes it on adaptively derived graphs ``H'`` and ``H'_s``.
* ``Aweak`` (Definition 6.1) -- bound to a fixed (possibly dynamic) graph
  ``G``; given a vertex subset ``S`` and a threshold ``delta``, return a
  matching of ``G[S]`` of size at least ``lambda * delta * n`` or ``bottom``;
  it must not return ``bottom`` whenever ``mu(G[S]) >= delta * n``.

This module defines both protocols, the stock implementations used in tests
and benchmarks (greedy, random-greedy, exact), and :class:`CountingOracle` /
:class:`CountingWeakOracle` wrappers that charge every invocation to a
:class:`~repro.instrumentation.counters.Counters` bag -- the quantity Table 1
and Table 2 are about.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.instrumentation.counters import Counters
from repro.matching.greedy import greedy_maximal_matching, random_greedy_matching
from repro.matching.blossom import maximum_matching

Edge = Tuple[int, int]


# ---------------------------------------------------------------------------
# Amatching (Definition 5.1)
# ---------------------------------------------------------------------------

class MatchingOracle(ABC):
    """A Theta(1)-approximate maximum-matching oracle (``Amatching``)."""

    #: approximation factor guaranteed by the oracle (``c`` in the paper)
    c: float = 2.0
    name: str = "oracle"

    @abstractmethod
    def find_matching(self, graph: Graph) -> List[Edge]:
        """Return a ``c``-approximate maximum matching of ``graph``."""


class GreedyMatchingOracle(MatchingOracle):
    """Deterministic greedy maximal matching: the textbook 2-approximation."""

    c = 2.0
    name = "greedy"

    def find_matching(self, graph: Graph) -> List[Edge]:
        return greedy_maximal_matching(graph).edge_list()


class RandomGreedyMatchingOracle(MatchingOracle):
    """Greedy maximal matching over a random edge order (2-approximation)."""

    c = 2.0
    name = "random-greedy"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def find_matching(self, graph: Graph) -> List[Edge]:
        # Thread the oracle's own Random instance through: one seed at
        # construction reproduces the whole invocation sequence.
        return random_greedy_matching(graph, rng=self._rng).edge_list()


class ExactMatchingOracle(MatchingOracle):
    """An exact (1-approximate) oracle; isolates framework behaviour from
    oracle quality in ablation experiments."""

    c = 1.0
    name = "exact"

    def find_matching(self, graph: Graph) -> List[Edge]:
        return maximum_matching(graph).edge_list()


class CountingOracle(MatchingOracle):
    """Wrap any :class:`MatchingOracle` and charge its invocations to counters.

    Counters charged per call: ``oracle_calls``, ``oracle_vertices_seen``,
    ``oracle_edges_seen``; the largest instance seen is kept in
    ``oracle_max_vertices``.
    """

    def __init__(self, inner: MatchingOracle, counters: Counters) -> None:
        self.inner = inner
        self.counters = counters
        self.c = inner.c
        self.name = f"counting({inner.name})"

    def find_matching(self, graph: Graph) -> List[Edge]:
        self.counters.add("oracle_calls")
        self.counters.add("oracle_vertices_seen", graph.n)
        self.counters.add("oracle_edges_seen", graph.m)
        if graph.n > self.counters.get("oracle_max_vertices"):
            self.counters.reset("oracle_max_vertices")
            self.counters.add("oracle_max_vertices", graph.n)
        return self.inner.find_matching(graph)


def ensure_counting(oracle: MatchingOracle, counters: Counters) -> "CountingOracle":
    """Wrap ``oracle`` in a :class:`CountingOracle` unless it already is one
    charging the same counter bag."""
    if isinstance(oracle, CountingOracle) and oracle.counters is counters:
        return oracle
    return CountingOracle(oracle, counters)


# ---------------------------------------------------------------------------
# Aweak (Definition 6.1)
# ---------------------------------------------------------------------------

class WeakOracle(ABC):
    """The weak induced-subgraph oracle ``Aweak`` bound to a graph ``G``.

    ``query(S, delta)`` must return a matching of ``G[S]`` of size at least
    ``lam * delta * n`` or ``None`` (the paper's ``bottom``); it must not
    return ``None`` when ``mu(G[S]) >= delta * n``.

    ``query_bipartite(left, right, delta)`` is the same contract on the
    induced subgraph of the bipartite double cover ``B[left+ ∪ right-]``
    (Definition 6.3): only edges with one endpoint in ``left`` and the other in
    ``right`` may be used, and the returned matching never contains an
    inner-inner edge.  The default implementation restricts ``query``'s search
    to such edges; specialised oracles (e.g. the OMv-backed one) override it.
    """

    #: the constant ``lambda`` of Definition 6.1
    lam: float = 0.5
    name: str = "weak-oracle"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    @abstractmethod
    def query(self, subset: Sequence[int], delta: float) -> Optional[List[Edge]]:
        """Matching in ``G[subset]`` of size >= lam*delta*n, or ``None``."""

    def query_bipartite(self, left: Sequence[int], right: Sequence[int],
                        delta: float) -> Optional[List[Edge]]:
        # Default implementation: emulate querying the bipartite double cover
        # B[left+ ∪ right-] by greedily matching the *cross* edges only (an
        # edge of G with one endpoint in ``left`` and the other in ``right``).
        # Restricting to cross edges is essential: a matching of G[left ∪
        # right] could spend right-right edges and starve the outer-inner
        # pairs the framework needs.  Subclasses with their own machinery
        # (e.g. the OMv-backed oracle) override this.
        #
        # The scan runs in canonical (sorted) order on both axes: neighbor
        # iteration order is backend-dependent (hash order on "adjset", index
        # order on "csr"), so an order-sensitive greedy here would make
        # seeded runs diverge between backends -- the same determinism
        # contract violation as iterating in address-hash order (see
        # "Execution layer" in ARCHITECTURE.md); cross-backend trace-replay
        # parity is pinned by tests/test_trace.py.
        left_set = set(left)
        right_set = set(right) - left_set
        matched_left = set()
        matched_right = set()
        result: List[Edge] = []
        for u in sorted(left_set):
            if u in matched_left:
                continue
            for v in sorted(self.graph.neighbor_list(u)):
                if v in right_set and v not in matched_right:
                    matched_left.add(u)
                    matched_right.add(v)
                    result.append((u, v))
                    break
        return result if result else None


class CountingWeakOracle(WeakOracle):
    """Charge every ``Aweak`` invocation to a counter bag.

    Counters: ``weak_oracle_calls``, ``weak_oracle_vertices_seen``,
    ``weak_oracle_bottom`` (number of ``None`` answers).
    """

    def __init__(self, inner: WeakOracle, counters: Counters) -> None:
        super().__init__(inner.graph)
        self.inner = inner
        self.counters = counters
        self.lam = inner.lam
        self.name = f"counting({inner.name})"

    def query(self, subset: Sequence[int], delta: float) -> Optional[List[Edge]]:
        self.counters.add("weak_oracle_calls")
        self.counters.add("weak_oracle_vertices_seen", len(subset))
        result = self.inner.query(subset, delta)
        if result is None:
            self.counters.add("weak_oracle_bottom")
        return result

    def query_bipartite(self, left: Sequence[int], right: Sequence[int],
                        delta: float) -> Optional[List[Edge]]:
        self.counters.add("weak_oracle_calls")
        self.counters.add("weak_oracle_vertices_seen", len(left) + len(right))
        result = self.inner.query_bipartite(left, right, delta)
        if result is None:
            self.counters.add("weak_oracle_bottom")
        return result


def ensure_counting_weak(oracle: WeakOracle, counters: Counters) -> CountingWeakOracle:
    if isinstance(oracle, CountingWeakOracle) and oracle.counters is counters:
        return oracle
    return CountingWeakOracle(oracle, counters)
