"""Dynamic baselines used by the Table 2 benchmarks.

Like :class:`~repro.dynamic.fully_dynamic.FullyDynamicMatching`, every
baseline builds its :class:`DynamicGraph` log-free by default (pass
``log_updates=True`` to keep ``dynamic_graph.log()``/``replay()`` usable)
and takes ``backend=`` to select the snapshot's storage.

* :class:`RecomputeFromScratchDynamic` -- exact blossom recomputation after
  every update: the (1)-approximation gold standard with Theta(m * n) update
  cost; the "upper wall" every dynamic algorithm must beat.
* :class:`LazyGreedyDynamic` -- maintain a maximal (2-approximate) matching
  with O(degree) work per update: the "lower wall" that is fast but far from
  (1+eps).
* :class:`ExponentialBoostingDynamic` -- the prior-framework comparator: the
  same periodic-rebuild skeleton as
  :class:`~repro.dynamic.fully_dynamic.FullyDynamicMatching`, but the rebuild
  engine is the McGregor-style boosting framework whose oracle-call count is
  exponential in 1/eps ([McG05] as adapted to the dynamic setting by
  [BKS23]/[AKK25]); Table 2's headline is precisely the gap between this
  baseline's 1/eps dependence and the polynomial dependence of this paper.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.backends import BackendSpec
from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.matching.blossom import maximum_matching
from repro.instrumentation.counters import Counters
from repro.dynamic.interfaces import DynamicMatchingAlgorithm
from repro.baselines.mcgregor import mcgregor_boost
from repro.core.oracles import GreedyMatchingOracle


class RecomputeFromScratchDynamic(DynamicMatchingAlgorithm):
    """Exact maximum matching recomputed after every update."""

    def __init__(self, n: int, counters: Optional[Counters] = None,
                 backend: BackendSpec = None,
                 log_updates: bool = False) -> None:
        self.dynamic_graph = DynamicGraph(n, backend=backend,
                                          log_updates=log_updates)
        self.counters = counters if counters is not None else Counters()
        self._matching = Matching(n)

    def update(self, update: Update) -> None:
        self.dynamic_graph.apply(update)
        if not self.charge_update(update):
            return
        graph = self.dynamic_graph.graph
        self._matching = maximum_matching(graph)
        # charge Theta(n + m) work for the recomputation pass
        self.counters.add("update_work", graph.n + graph.m)

    def current_matching(self) -> Matching:
        return self._matching


class LazyGreedyDynamic(DynamicMatchingAlgorithm):
    """Maintain a maximal matching with O(degree) work per update (2-approx)."""

    def __init__(self, n: int, counters: Optional[Counters] = None,
                 backend: BackendSpec = None,
                 log_updates: bool = False) -> None:
        self.dynamic_graph = DynamicGraph(n, backend=backend,
                                          log_updates=log_updates)
        self.counters = counters if counters is not None else Counters()
        self._matching = Matching(n)

    def update(self, update: Update) -> None:
        changed = self.dynamic_graph.apply(update)
        if not self.charge_update(update):
            return
        graph = self.dynamic_graph.graph
        if update.kind == Update.INSERT and changed:
            self.counters.add("update_work", 1)
            if self._matching.is_free(update.u) and self._matching.is_free(update.v):
                self._matching.add(update.u, update.v)
        elif update.kind == Update.DELETE and changed:
            if self._matching.contains_edge(update.u, update.v):
                self._matching.remove(update.u, update.v)
                # try to re-match both exposed endpoints greedily
                for x in (update.u, update.v):
                    self.counters.add("update_work", graph.degree(x) + 1)
                    if not self._matching.is_free(x):
                        continue
                    for y in graph.neighbor_list(x):
                        if self._matching.is_free(y):
                            self._matching.add(x, y)
                            break
            else:
                self.counters.add("update_work", 1)
        else:
            self.counters.add("update_work", 1)

    def current_matching(self) -> Matching:
        return self._matching


class ExponentialBoostingDynamic(DynamicMatchingAlgorithm):
    """Periodic-rebuild maintainer whose rebuild engine is the McGregor-style
    framework (exponential 1/eps dependence in oracle calls)."""

    def __init__(self, n: int, eps: float,
                 rebuild_slack: float = 0.125,
                 counters: Optional[Counters] = None,
                 seed: Optional[int] = None,
                 backend: BackendSpec = None,
                 log_updates: bool = False) -> None:
        self.eps = eps
        self.counters = counters if counters is not None else Counters()
        self.dynamic_graph = DynamicGraph(n, backend=backend,
                                          log_updates=log_updates)
        self.rebuild_slack = rebuild_slack
        self.rng = random.Random(seed)
        self._matching = Matching(n)
        self._updates_since_rebuild = 0
        self._size_at_rebuild = 0

    def update(self, update: Update) -> None:
        changed = self.dynamic_graph.apply(update)
        if not self.charge_update(update):
            return
        self.counters.add("update_work", 1)
        if update.kind == Update.DELETE and changed:
            if self._matching.contains_edge(update.u, update.v):
                self._matching.remove(update.u, update.v)
        elif update.kind == Update.INSERT and changed:
            if self._matching.is_free(update.u) and self._matching.is_free(update.v):
                self._matching.add(update.u, update.v)
        self._updates_since_rebuild += 1
        threshold = max(1, int(self.rebuild_slack * self.eps
                               * max(1, self._size_at_rebuild)))
        if self._updates_since_rebuild >= threshold:
            self._rebuild()

    def _rebuild(self) -> None:
        self.counters.add("dyn_rebuilds")
        graph = self.dynamic_graph.graph
        self._matching = mcgregor_boost(graph, self.eps,
                                        oracle=GreedyMatchingOracle(),
                                        counters=self.counters,
                                        seed=self.rng.randrange(2 ** 31))
        self.counters.add("update_work", graph.n)
        self._updates_since_rebuild = 0
        self._size_at_rebuild = self._matching.size

    def current_matching(self) -> Matching:
        return self._matching
