"""Fully dynamic (1+eps)-approximate matching (Theorem 7.1 framework).

The reduction behind Theorem 7.1 ([BKS23]/[AKK25], with this paper's
Theorem 6.2 plugged in as the static rebuild engine) rests on the classical
*stability* of approximate matchings:

    if ``M`` is a (1+eps/2)-approximate matching of ``G`` and at most
    ``(eps/8) * |M|`` edge updates are applied (dropping any deleted matched
    edge from ``M``), the surviving matching is still (1+eps)-approximate.

So the maintainer keeps a matching, serves queries in O(1), pays O(1) work per
update, and every ``Theta(eps * |M|)`` updates rebuilds the matching with the
Section 6 weak-oracle framework (whose cost is ``n * poly(1/eps)`` plus
``poly(1/eps)`` weak-oracle calls -- the polynomial dependence on ``1/eps``
that Table 2 contrasts with the exponential dependence of the prior
reductions).  Rebuild cost is charged to the counters and amortized over the
updates since the previous rebuild.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.graph.backends import BackendSpec
from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.config import ParameterProfile
from repro.core.oracles import WeakOracle
from repro.core.dynamic_boosting import WeakOracleBoostingFramework
from repro.core.repair import RepairContext
from repro.dynamic.interfaces import DynamicMatchingAlgorithm
from repro.dynamic.weak_oracles import GreedyInducedWeakOracle, OMvWeakOracle
from repro.utils.contracts import hot_path

try:  # incremental repair needs numpy; fall back to rebuild mode without it
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

OracleFactory = Callable[[Graph], WeakOracle]


class FullyDynamicMatching(DynamicMatchingAlgorithm):
    """Maintain a (1+eps)-approximate matching under edge insertions/deletions.

    Parameters
    ----------
    n:
        Number of vertices; the graph starts empty.
    eps:
        Target approximation parameter.
    oracle_factory:
        Builds the ``Aweak`` oracle bound to the maintained graph; defaults to
        the greedy induced-subgraph oracle.  If the produced oracle exposes
        ``notify_update`` (like :class:`~repro.dynamic.weak_oracles.OMvWeakOracle`)
        it is kept informed of every edge change.
    rebuild_slack:
        Rebuild after ``rebuild_slack * eps * |M|`` updates (default 1/8, the
        stability constant above), but at least ``min_rebuild_gap`` updates.
    counters:
        Work accounting: ``dyn_updates``, ``dyn_rebuilds``, ``update_work``
        (the amortized-update-time proxy: vertices touched per update),
        plus everything the rebuild framework charges (``weak_oracle_calls``...).
    backend:
        Storage backend of the maintained snapshot (``"adjset"`` / ``"csr"``).
    log_updates:
        Whether the underlying :class:`DynamicGraph` keeps its append-only
        update log.  Off by default: the maintainer never reads the log, and
        dropping it is what lets a million-update
        :class:`~repro.workloads.streams.UpdateStream` replay in O(live
        edges) memory.  Turn it on only to inspect ``dynamic_graph.log()`` /
        ``replay()`` afterwards.

    Accounting convention (Table 2): EMPTY updates are the padding Problem 1
    allows in an update sequence; they change nothing, so they are excluded
    from *both* sides of the amortization -- no ``dyn_updates``/``update_work``
    charge and no advance of the rebuild schedule -- and tallied separately as
    ``dyn_empty_updates``.  Non-empty no-ops (re-inserting a present edge,
    deleting an absent one) are genuine adversarial updates: they are charged
    and they advance the rebuild schedule like any other update.
    """

    def __init__(self, n: int, eps: float,
                 oracle_factory: Optional[OracleFactory] = None,
                 profile: Optional[ParameterProfile] = None,
                 rebuild_slack: float = 0.125,
                 min_rebuild_gap: int = 1,
                 counters: Optional[Counters] = None,
                 seed: Optional[int] = None,
                 backend: BackendSpec = None,
                 log_updates: bool = False) -> None:
        self.eps = eps
        self._seed = seed
        self.counters = counters if counters is not None else Counters()
        self.profile = profile if profile is not None else ParameterProfile.practical(eps)
        self.dynamic_graph = DynamicGraph(n, backend=backend,
                                          log_updates=log_updates)
        factory = oracle_factory if oracle_factory is not None else (
            lambda g: GreedyInducedWeakOracle(g, seed=seed))
        self.oracle = factory(self.dynamic_graph.graph)
        self.rebuild_slack = rebuild_slack
        self.min_rebuild_gap = max(1, min_rebuild_gap)
        self.rng = random.Random(seed)
        # One framework for the lifetime of the maintainer: the oracle is
        # bound to the (in-place mutated) graph anyway, and reusing the
        # framework lets consecutive rebuilds share its rng/profile instead
        # of reconstructing both per rebuild.
        self._framework = WeakOracleBoostingFramework(
            self.eps, self.oracle, profile=self.profile,
            counters=self.counters, seed=self.rng.randrange(2 ** 31))

        if self.profile.repair not in ("rebuild", "incremental"):
            raise ValueError(f"unknown repair mode {self.profile.repair!r}")
        if self.profile.repair == "incremental" and _np is not None:
            # persistent per-phase state + patchable frozen views; the
            # mirrored matching keeps the context's baselines fresh so every
            # rebuild costs O(touched) setup instead of O(n) (byte-identical
            # results either way -- see repro.core.repair)
            self.repair_context: Optional[RepairContext] = RepairContext(
                self.dynamic_graph.graph, self.profile)
            self._matching: Matching = self.repair_context.bind_matching()
        else:
            self.repair_context = None
            self._matching = Matching(n)
        self._updates_since_rebuild = 0
        self._size_at_rebuild = 0
        # monotone checkpoint revisions: bumped whenever the corresponding
        # checkpointed section *may* have changed (over-bumping is safe --
        # it only costs a delta writer one re-serialization; under-bumping
        # would silently persist stale state, so every mutation path bumps)
        self._graph_rev = 0
        self._matching_rev = 0
        self._profile_dict: Optional[dict] = None

    # ------------------------------------------------------------------ state
    @property
    def graph(self) -> Graph:
        return self.dynamic_graph.graph

    def current_matching(self) -> Matching:
        return self._matching

    # ---------------------------------------------------------------- updates
    @hot_path
    def update(self, update: Update) -> None:
        changed = self.dynamic_graph.apply(update)  # logs EMPTY padding too
        if changed:
            self._graph_rev += 1
            if self.repair_context is not None:
                self.repair_context.note_update(update.u, update.v,
                                               update.kind == Update.INSERT)
        if not self.charge_update(update):
            return
        self.counters.add("update_work", 1)

        if changed and hasattr(self.oracle, "notify_update"):
            self.oracle.notify_update(update.u, update.v,
                                      update.kind == Update.INSERT)

        if update.kind == Update.DELETE and changed:
            # a deleted matched edge leaves the matching immediately
            if self._matching.contains_edge(update.u, update.v):
                self._matching.remove(update.u, update.v)
                self._matching_rev += 1
                self.counters.add("matched_edge_deletions")
        elif update.kind == Update.INSERT and changed:
            # opportunistic O(1) improvement: match the new edge if both free
            if self._matching.is_free(update.u) and self._matching.is_free(update.v):
                self._matching.add(update.u, update.v)
                self._matching_rev += 1

        self._updates_since_rebuild += 1
        if self._needs_rebuild():
            self.rebuild()

    def insert(self, u: int, v: int) -> None:
        self.update(Update.insert(u, v))

    def delete(self, u: int, v: int) -> None:
        self.update(Update.delete(u, v))

    # ---------------------------------------------------------------- rebuild
    def _needs_rebuild(self) -> bool:
        threshold = max(self.min_rebuild_gap,
                        int(self.rebuild_slack * self.eps * max(1, self._size_at_rebuild)))
        return self._updates_since_rebuild >= threshold

    def rebuild(self) -> None:
        """Recompute the matching with the Section 6 weak-oracle framework."""
        self.counters.add("dyn_rebuilds")
        graph = self.dynamic_graph.graph
        # Warm start from the surviving matching (restricted to live edges);
        # the framework only augments, so the size never decreases.  Once a
        # previous rebuild has established (1+eps/2)-approximation, the
        # stability argument keeps the patched matching (1+eps)-close, so
        # the framework may skip its coarse scales (``warm_start``).
        if self.repair_context is not None:
            # restricted_to is the identity here (a deleted matched edge
            # leaves the matching at update time, so every matched edge is
            # live); augment the mirrored matching in place
            self._matching = self._framework.run(
                graph, initial=self._matching,
                warm_start=self._size_at_rebuild > 0,
                context=self.repair_context)
        else:
            warm = self._matching.restricted_to(graph)
            self._matching = self._framework.run(
                graph, initial=warm, warm_start=self._size_at_rebuild > 0)
        self.counters.add("update_work", graph.n)  # the n*poly(1/eps) term
        self._updates_since_rebuild = 0
        self._size_at_rebuild = self._matching.size
        self._matching_rev += 1  # the framework augments in place

    # ------------------------------------------------------------- checkpoint
    def checkpoint_revisions(self) -> dict:
        """Monotone per-section revision counters for delta checkpointing.

        A section whose revision did not move since the previous snapshot is
        guaranteed byte-identical, so a
        :class:`~repro.resilience.checkpoint.DeltaCheckpointWriter` may reuse
        the previous snapshot's copy instead of re-capturing and re-encoding
        it.  Revisions may over-bump (that only costs a re-serialization)
        but never under-bump.
        """
        return {"graph": self._graph_rev, "matching": self._matching_rev}

    def _sorted_edges(self) -> list:
        """Canonically sorted live edges (the checkpointed edge section).

        When incremental repair is active the context's patched key array
        already holds exactly this list, kept sorted in O(k) per sync; reuse
        it instead of re-sorting the edge set from scratch.
        """
        if self.repair_context is not None:
            return list(self.repair_context.edge_pairs())
        return sorted(self.dynamic_graph.graph.edge_list())

    def checkpoint_state(self, _reuse_edges: Optional[list] = None,
                         _reuse_mate: Optional[list] = None) -> dict:
        """Everything a byte-identical resume needs, as plain Python values.

        The packed form (``repro.resilience.checkpoint``) round-trips this
        dict through a versioned ``.npz``; capturing it is also a deep
        snapshot (fresh lists/dicts/state tuples), so an in-memory checkpoint
        stays valid while the live maintainer keeps mutating.

        What is captured -- and, as importantly, what is not: the live edge
        set (canonically sorted; the *history* that produced it is not
        needed, only the accounting it left behind), the mate array, the
        counter bag, the three RNG streams that evolve during a run (the
        maintainer's, the boosting framework's, and the weak oracle's when it
        has one), and the rebuild schedule.  The repair context's patchable
        views are deliberately *not* captured: they are a cache over the
        graph that the next rebuild recompiles wholesale, with byte-identical
        results (see ``repro.core.repair``).

        ``_reuse_edges``/``_reuse_mate`` are the delta-writer's fast path:
        a previous snapshot's section handed back verbatim because the
        corresponding :meth:`checkpoint_revisions` counter has not moved.
        Callers other than :class:`~repro.resilience.checkpoint.DeltaCheckpointWriter`
        should leave them unset.
        """
        import dataclasses as _dc

        matching = self._matching
        if _reuse_mate is not None:
            mate = _reuse_mate
        else:
            mate = [(-1 if m is None else m) for m in matching.mate_list()]
        edges = (_reuse_edges if _reuse_edges is not None
                 else self._sorted_edges())
        oracle_rng = getattr(self.oracle, "_rng", None)
        # the profile is a frozen dataclass; flatten it once per maintainer
        # (asdict deep-copies every field and dominates frequent-snapshot
        # capture cost otherwise)
        profile_dict = self._profile_dict
        if profile_dict is None:
            profile_dict = self._profile_dict = _dc.asdict(self.profile)
        return {
            "n": self.dynamic_graph.n,
            "eps": self.eps,
            "seed": self._seed,
            "backend": self.dynamic_graph.graph.backend_name,
            "profile": profile_dict,
            "rebuild_slack": self.rebuild_slack,
            "min_rebuild_gap": self.min_rebuild_gap,
            "edges": edges,
            "mate": mate,
            "counters": self.counters.as_dict(),
            "updates_since_rebuild": self._updates_since_rebuild,
            "size_at_rebuild": self._size_at_rebuild,
            "num_updates": self.dynamic_graph.num_updates,
            "max_edges_seen": self.dynamic_graph.max_edges_seen,
            "rng": self.rng.getstate(),
            "framework_rng": self._framework.rng.getstate(),
            "oracle_rng": None if oracle_rng is None else oracle_rng.getstate(),
        }

    @classmethod
    def from_checkpoint_state(cls, state: dict,
                              oracle_factory: Optional[OracleFactory] = None,
                              counters: Optional[Counters] = None,
                              ) -> "FullyDynamicMatching":
        """Reconstruct a maintainer whose observable behaviour -- mates,
        counters, epoch boundaries, every future random draw -- is
        byte-identical to the one that produced ``state``.

        ``oracle_factory`` must be the factory the original run used (the
        checkpoint cannot serialize a callable); ``counters`` lets the caller
        resume into a shared bag -- it is reset to the checkpointed totals,
        wiping anything the restore itself charged.
        """
        profile = ParameterProfile(**state["profile"])
        alg = cls(int(state["n"]), float(state["eps"]),
                  oracle_factory=oracle_factory, profile=profile,
                  rebuild_slack=float(state["rebuild_slack"]),
                  min_rebuild_gap=int(state["min_rebuild_gap"]),
                  counters=counters, seed=state["seed"],
                  backend=state["backend"])
        # Live edges, in canonical order.  A fresh repair context compiles
        # its views at the next rebuild, so no note_update calls are needed;
        # an OMv-style oracle is refreshed wholesale afterwards instead of
        # being notified per edge.
        alg.dynamic_graph.insert_edges(state["edges"])
        if hasattr(alg.oracle, "rebuild"):
            alg.oracle.rebuild()
        # Matched pairs go through Matching.add so a mirrored matching keeps
        # the repair baselines fresh, exactly as the original run did.
        for u, v in enumerate(state["mate"]):
            if v > u:
                alg._matching.add(u, v)
        # Counters last: reconstruction above may have charged the bag.
        alg.counters.reset()
        alg.counters.merge(state["counters"])
        alg.rng.setstate(state["rng"])
        alg._framework.rng.setstate(state["framework_rng"])
        oracle_rng = getattr(alg.oracle, "_rng", None)
        if state["oracle_rng"] is not None and oracle_rng is not None:
            oracle_rng.setstate(state["oracle_rng"])
        alg._updates_since_rebuild = int(state["updates_since_rebuild"])
        alg._size_at_rebuild = int(state["size_at_rebuild"])
        alg.dynamic_graph.restore_accounting(int(state["num_updates"]),
                                             int(state["max_edges_seen"]))
        return alg

    # ------------------------------------------------------------- accounting
    def amortized_update_work(self) -> float:
        """Total charged work divided by the number of updates processed.

        EMPTY padding updates are excluded from both the numerator (they are
        never charged ``update_work``) and the denominator, keeping the
        Table 2 quantity consistent; see the class docstring.
        """
        updates = max(1.0, self.counters.get("dyn_updates"))
        return self.counters.get("update_work") / updates
