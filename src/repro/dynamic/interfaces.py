"""Problem 1 and the dynamic-algorithm protocol.

Problem 1 (Section 7.2) is the interface the reduction of Theorem 7.1 needs:
a fully dynamic graph receives updates in chunks of exactly ``alpha * n``
insertions/deletions (padded with empty updates when necessary); after every
chunk at most ``q`` adaptive vertex-subset queries arrive, each of which must
be answered with the ``Aweak`` guarantee of Definition 6.1.

:class:`Problem1Instance` wires a :class:`~repro.graph.dynamic_graph.DynamicGraph`
to a :class:`~repro.core.oracles.WeakOracle` factory and enforces the chunk /
query discipline, charging query and update work to a counter bag so the
Table 2 benchmarks can report amortized costs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.dynamic_graph import DynamicGraph, Update
from repro.graph.graph import Graph
from repro.matching.matching import Matching
from repro.instrumentation.counters import Counters
from repro.core.oracles import WeakOracle

Edge = Tuple[int, int]


class DynamicMatchingAlgorithm(ABC):
    """Protocol for a fully dynamic (1+eps)-approximate matching algorithm."""

    @abstractmethod
    def update(self, update: Update) -> None:
        """Process one edge update."""

    @abstractmethod
    def current_matching(self) -> Matching:
        """The maintained matching (valid for the current graph)."""

    def charge_update(self, update: Update) -> bool:
        """Shared Table 2 accounting convention for one update.

        EMPTY updates are the padding Problem 1 allows in an update sequence;
        they change nothing, so every maintainer excludes them from *both*
        sides of the amortization (no ``dyn_updates``/``update_work`` charge,
        no processing) and tallies them as ``dyn_empty_updates`` instead.
        Non-empty no-ops are genuine adversarial updates and are charged.

        Returns whether the update should be charged and processed.  Requires
        the maintainer to expose a ``counters`` attribute (they all do).
        """
        if update.kind == Update.EMPTY:
            self.counters.add("dyn_empty_updates")
            return False
        self.counters.add("dyn_updates")
        return True

    def process(self, updates: Iterable[Update], collect_sizes: bool = True):
        """Process a whole sequence or lazy stream of updates.

        With ``collect_sizes`` (the default) returns the matching size after
        each update as a packed int64 NumPy array (a plain Python list when
        NumPy is unavailable) -- 8 bytes per update instead of the ~28-byte
        ``int`` objects the historical ``List[int]`` accumulated.  With
        ``collect_sizes=False`` nothing is accumulated at all and ``None``
        is returned: combined with a lazy
        :class:`~repro.workloads.streams.UpdateStream` input, a
        million-update replay runs in O(1) extra memory.
        """
        if not collect_sizes:
            for upd in updates:
                self.update(upd)
            return None

        def sizes() -> Iterator[int]:
            for upd in updates:
                self.update(upd)
                yield self.current_matching().size

        try:
            import numpy as np
        except ImportError:
            return list(sizes())
        return np.fromiter(sizes(), dtype=np.int64)


class Problem1Instance:
    """An instance of Problem 1 with parameters ``(q, lam, delta, alpha)``.

    Parameters
    ----------
    n:
        Number of vertices (the graph starts empty).
    oracle_factory:
        ``oracle_factory(graph) -> WeakOracle`` producing the query answerer
        bound to the instance's current graph.
    q, lam, delta, alpha:
        The Problem 1 parameters; ``alpha * n`` is the chunk size, ``q`` the
        maximum number of queries per chunk, ``delta``/``lam`` the Definition
        6.1 guarantee of each answer.
    counters:
        Work accounting: ``p1_updates``, ``p1_queries``, ``p1_query_work``.
    """

    def __init__(self, n: int,
                 oracle_factory: Callable[[Graph], WeakOracle],
                 q: int, lam: float, delta: float, alpha: float,
                 counters: Optional[Counters] = None) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        self.n = n
        self.dynamic_graph = DynamicGraph(n)
        self.oracle = oracle_factory(self.dynamic_graph.graph)
        self.q = q
        self.lam = lam
        self.delta = delta
        self.alpha = alpha
        self.chunk_size = max(1, int(round(alpha * n)))
        self.counters = counters if counters is not None else Counters()
        self._queries_this_chunk = 0

    # ----------------------------------------------------------------- updates
    def apply_chunk(self, chunk: Sequence[Update]) -> None:
        """Apply one chunk of exactly ``alpha * n`` updates."""
        if len(chunk) != self.chunk_size:
            raise ValueError(
                f"chunks must contain exactly {self.chunk_size} updates, "
                f"got {len(chunk)} (pad with empty updates)")
        for upd in chunk:
            self.dynamic_graph.apply(upd)
            self.counters.add("p1_updates")
        self._queries_this_chunk = 0

    # ----------------------------------------------------------------- queries
    def query(self, subset: Sequence[int]) -> Optional[List[Edge]]:
        """One adaptive ``Aweak`` query (Definition 6.1) on the current graph."""
        if self._queries_this_chunk >= self.q:
            raise RuntimeError(
                f"Problem 1 allows at most q={self.q} queries per chunk")
        self._queries_this_chunk += 1
        self.counters.add("p1_queries")
        self.counters.add("p1_query_work", len(subset))
        return self.oracle.query(subset, self.delta)

    # -------------------------------------------------------------- convenience
    @property
    def graph(self) -> Graph:
        return self.dynamic_graph.graph

    def chunks_from(self, updates: Sequence[Update]) -> List[List[Update]]:
        """Split a raw update sequence into padded chunks of the right size."""
        return DynamicGraph.chunk_updates(updates, self.chunk_size, pad=True)

    def iter_chunks(self, updates: Iterable[Update]) -> Iterator[List[Update]]:
        """Lazily chunk any update iterable/stream to the Problem 1 discipline.

        Every yielded chunk has exactly ``chunk_size`` updates (the final
        short chunk EMPTY-padded); only one chunk is materialized at a time,
        so driving :meth:`apply_chunk` from an
        :class:`~repro.workloads.streams.UpdateStream` never builds the full
        sequence.  The chunk/padding rules live in one place --
        :meth:`UpdateStream.chunks` -- and are delegated to here.
        """
        # imported lazily: the chunking helper is numpy-free, but keeping
        # the dynamic layer's import surface minimal costs nothing
        from repro.workloads.streams import stream_of

        yield from stream_of(updates, n=self.n).chunks(self.chunk_size,
                                                       pad=True)

    def run_stream(self, updates: Iterable[Update]) -> int:
        """Feed a whole stream through the chunk discipline; returns #chunks."""
        count = 0
        for chunk in self.iter_chunks(updates):
            self.apply_chunk(chunk)
            count += 1
        return count
